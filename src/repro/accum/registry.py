"""Registry of accumulator types, including user-defined ones.

The paper's "Extensible Accumulator Library" lets users implement a C++
combiner interface; the Python analogue is :func:`register_accumulator`
(for full :class:`~repro.accum.base.Accumulator` subclasses) and
:func:`accumulator_from_combiner` (for a plain binary ``⊕`` function).
The GSQL front end resolves declaration type names through this registry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Type

from ..errors import AccumulatorError
from .base import Accumulator
from .collections_ import ArrayAccum, BagAccum, ListAccum, SetAccum
from .groupby import GroupByAccum
from .heap import HeapAccum
from .logical import AndAccum, BitwiseAndAccum, BitwiseOrAccum, OrAccum
from .mapaccum import MapAccum
from .numeric import AvgAccum, MaxAccum, MinAccum, SumAccum

_BUILTINS: Dict[str, Type[Accumulator]] = {
    "SumAccum": SumAccum,
    "MinAccum": MinAccum,
    "MaxAccum": MaxAccum,
    "AvgAccum": AvgAccum,
    "OrAccum": OrAccum,
    "AndAccum": AndAccum,
    "BitwiseOrAccum": BitwiseOrAccum,
    "BitwiseAndAccum": BitwiseAndAccum,
    "SetAccum": SetAccum,
    "BagAccum": BagAccum,
    "ListAccum": ListAccum,
    "ArrayAccum": ArrayAccum,
    "MapAccum": MapAccum,
    "HeapAccum": HeapAccum,
    "GroupByAccum": GroupByAccum,
}

_registry: Dict[str, Type[Accumulator]] = dict(_BUILTINS)


def lookup_accumulator(name: str) -> Type[Accumulator]:
    """Resolve an accumulator type name (case-sensitive, as in GSQL)."""
    cls = _registry.get(name)
    if cls is None:
        raise AccumulatorError(
            f"unknown accumulator type {name!r}; registered types: "
            f"{', '.join(sorted(_registry))}"
        )
    return cls


def register_accumulator(cls: Type[Accumulator], name: Optional[str] = None) -> Type[Accumulator]:
    """Register a user-defined accumulator class (usable as a decorator).

    The class must subclass :class:`Accumulator`.  Re-registering a builtin
    name is rejected to avoid silently changing query semantics.
    """
    if not (isinstance(cls, type) and issubclass(cls, Accumulator)):
        raise AccumulatorError("register_accumulator expects an Accumulator subclass")
    key = name or cls.type_name
    if key in _BUILTINS:
        raise AccumulatorError(f"cannot override builtin accumulator {key!r}")
    _registry[key] = cls
    return cls


def unregister_accumulator(name: str) -> None:
    """Remove a user-defined accumulator (builtins cannot be removed)."""
    if name in _BUILTINS:
        raise AccumulatorError(f"cannot unregister builtin accumulator {name!r}")
    _registry.pop(name, None)


def accumulator_from_combiner(
    name: str,
    combiner: Callable[[Any, Any], Any],
    initial: Any = None,
    order_invariant: bool = True,
    multiplicity_sensitive: bool = True,
) -> Type[Accumulator]:
    """Build and register an accumulator type from a binary ``⊕`` function.

    This is the Python rendering of the paper's extensible-accumulator
    interface: the user supplies only the combiner (and optionally an
    identity value), e.g.::

        GcdAccum = accumulator_from_combiner("GcdAccum", math.gcd, 0)
    """

    class _CombinerAccum(Accumulator):
        type_name = name

        def __init__(self, start: Any = initial):
            self._value = start

        @property
        def value(self) -> Any:
            return self._value

        def assign(self, value: Any) -> None:
            self._value = value

        def combine(self, item: Any) -> None:
            self._value = combiner(self._value, item)

        def merge(self, other: Accumulator) -> None:
            if type(other) is not type(self):
                raise AccumulatorError(
                    f"cannot merge {name} with {other.type_name}"
                )
            if not order_invariant:
                raise AccumulatorError(f"{name} merge is order-dependent")
            self._value = combiner(self._value, other._value)

    _CombinerAccum.order_invariant = order_invariant
    _CombinerAccum.multiplicity_sensitive = multiplicity_sensitive
    _CombinerAccum.__name__ = name
    _CombinerAccum.__qualname__ = name
    register_accumulator(_CombinerAccum, name)
    return _CombinerAccum


__all__ = [
    "lookup_accumulator",
    "register_accumulator",
    "unregister_accumulator",
    "accumulator_from_combiner",
]
