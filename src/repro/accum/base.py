"""Accumulator protocol (Section 3 of the paper).

An accumulator is a data container with an internal value ``V`` that
aggregates inputs ``I`` through a binary combiner ``⊕ : V × I → V``.  Two
assignment operators are exposed: ``a = i`` (:meth:`Accumulator.assign`)
replaces the internal value, ``a += i`` (:meth:`Accumulator.combine`)
folds an input in.

Two properties drive the engine's semantics:

``order_invariant``
    Whether the final value is independent of input order (true when ``⊕``
    is commutative/associative).  Order-invariant accumulators make the
    snapshot Map/Reduce execution deterministic; List/Array/SumAccum<string>
    are the documented exceptions (Section 4.3).

``multiplicity_sensitive``
    Whether inputting a value ``μ`` times differs from inputting it once.
    Min/Max/Set/Or/And are insensitive; Sum/Avg/Bag/List are sensitive.
    The tractable evaluation of Theorem 7.1 exploits this through
    :meth:`Accumulator.combine_weighted`, which applies a ``μ``-fold input
    in O(1) (e.g. SumAccum adds ``μ·i``) instead of materializing the
    ``μ`` duplicate pattern matches.
"""

from __future__ import annotations

import copy as _copy
from abc import ABC, abstractmethod
from typing import Any

from ..errors import AccumulatorError
from ..obs import metrics as _obs


class Accumulator(ABC):
    """Base class for all accumulator types."""

    #: GSQL-facing type name (e.g. "SumAccum"), set by subclasses.
    type_name: str = "Accum"
    #: See module docstring.
    order_invariant: bool = True
    #: See module docstring.
    multiplicity_sensitive: bool = True

    @property
    @abstractmethod
    def value(self) -> Any:
        """The current internal value, as read by queries."""

    @abstractmethod
    def assign(self, value: Any) -> None:
        """The ``=`` operator: replace the internal value."""

    @abstractmethod
    def combine(self, item: Any) -> None:
        """The ``+=`` operator: fold one input into the internal value."""

    def combine_weighted(self, item: Any, multiplicity: int) -> None:
        """Fold ``multiplicity`` identical inputs in.

        The default implementation handles the two generic cases: a single
        combine for multiplicity-insensitive accumulators, and repeated
        combines otherwise.  Subclasses with a closed form (Sum, Avg, Bag)
        override this with an O(1) version — that override is what makes
        the Theorem 7.1 evaluation polynomial.
        """
        if multiplicity < 0:
            raise AccumulatorError(f"negative multiplicity {multiplicity}")
        if multiplicity == 0:
            return
        if not self.multiplicity_sensitive:
            self.combine(item)
            return
        col = _obs._ACTIVE
        if col is not None:
            # O(μ) fallback work: types with a closed form (Sum, Avg,
            # Bag) override this method and never hit the counter —
            # exactly the O(1)-vs-O(μ) split docs/accumulators.md tables.
            col.count("accum.weighted_fallback_combines", multiplicity)
        for _ in range(multiplicity):
            self.combine(item)

    def merge(self, other: "Accumulator") -> None:
        """Fold another accumulator of the same type into this one.

        Used by parallel/partitioned reduction: each worker reduces its
        partition locally and the partials are merged.  The default raises;
        order-invariant types override it.
        """
        raise AccumulatorError(
            f"{self.type_name} does not support parallel merging"
        )

    def copy(self) -> "Accumulator":
        """An independent snapshot (used for primed reads like ``v.@score'``)."""
        return _copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.type_name}({self.value!r})"


def check_numeric(type_name: str, value: Any) -> None:
    """Reject non-numeric inputs to numeric accumulators early, with the
    accumulator's name in the message."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise AccumulatorError(
            f"{type_name} expects a numeric input, got {type(value).__name__} "
            f"({value!r})"
        )


__all__ = ["Accumulator", "check_numeric"]
