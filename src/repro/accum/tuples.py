"""Named tuple values for HeapAccum and GroupByAccum.

GSQL declares tuple types with ``TYPEDEF TUPLE <INT a, STRING b> T`` and
uses them as heap elements and grouping keys.  :class:`TupleType`
represents such a declaration; :class:`TupleValue` is an immutable,
field-addressable instance.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from ..errors import AccumulatorError


class TupleType:
    """A named tuple type: an ordered list of field names.

    Field *types* are kept as informational strings (the engine is
    dynamically typed like the rest of the library); field *names* drive
    positional/keyword construction and sort-key lookup.
    """

    def __init__(self, name: str, fields: Sequence[Tuple[str, str]]):
        if not fields:
            raise AccumulatorError(f"tuple type {name!r} needs at least one field")
        names = [f[0] for f in fields]
        if len(set(names)) != len(names):
            raise AccumulatorError(f"tuple type {name!r} has duplicate fields")
        self.name = name
        self.fields = tuple((fname, ftype.upper()) for fname, ftype in fields)
        self.field_names = tuple(names)
        self._index = {fname: i for i, fname in enumerate(names)}

    def make(self, *args: Any, **kwargs: Any) -> "TupleValue":
        """Construct a value positionally and/or by keyword."""
        values = list(args)
        if len(values) > len(self.field_names):
            raise AccumulatorError(
                f"tuple type {self.name!r} takes {len(self.field_names)} "
                f"fields, got {len(values)}"
            )
        values.extend([None] * (len(self.field_names) - len(values)))
        for key, val in kwargs.items():
            idx = self._index.get(key)
            if idx is None:
                raise AccumulatorError(
                    f"tuple type {self.name!r} has no field {key!r}"
                )
            values[idx] = val
        return TupleValue(self, tuple(values))

    def index_of(self, field: str) -> int:
        idx = self._index.get(field)
        if idx is None:
            raise AccumulatorError(f"tuple type {self.name!r} has no field {field!r}")
        return idx

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{t} {n}" for n, t in self.fields)
        return f"TupleType {self.name}<{body}>"


class TupleValue:
    """An immutable instance of a :class:`TupleType`."""

    __slots__ = ("type", "values")

    def __init__(self, ttype: TupleType, values: Tuple[Any, ...]):
        self.type = ttype
        self.values = values

    def __getattr__(self, field: str) -> Any:
        try:
            return self.values[self.type.index_of(field)]
        except AccumulatorError:
            raise AttributeError(field) from None

    def get(self, field: str) -> Any:
        return self.values[self.type.index_of(field)]

    def as_dict(self) -> Dict[str, Any]:
        return dict(zip(self.type.field_names, self.values))

    def __eq__(self, other: object) -> bool:
        # Structural equality: same type name, same fields, same values.
        # (Two independently parsed queries declaring the same TYPEDEF
        # produce distinct TupleType objects whose values must compare.)
        return (
            isinstance(other, TupleValue)
            and self.type.name == other.type.name
            and self.type.field_names == other.type.field_names
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.type.name, self.values))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{n}={v!r}" for n, v in self.as_dict().items())
        return f"{self.type.name}({body})"


def coerce_tuple(ttype: TupleType, item: Any) -> TupleValue:
    """Accept a TupleValue, mapping, or plain sequence as a tuple input."""
    if isinstance(item, TupleValue):
        if item.type is not ttype and item.type.field_names != ttype.field_names:
            raise AccumulatorError(
                f"expected tuple of type {ttype.name!r}, got {item.type.name!r}"
            )
        return item
    if isinstance(item, dict):
        return ttype.make(**item)
    if isinstance(item, (tuple, list)):
        return ttype.make(*item)
    if len(ttype.field_names) == 1:
        # A single-field tuple accepts a bare scalar input.
        return ttype.make(item)
    raise AccumulatorError(
        f"cannot coerce {item!r} into tuple type {ttype.name!r}"
    )


__all__ = ["TupleType", "TupleValue", "coerce_tuple"]
