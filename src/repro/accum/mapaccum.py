"""MapAccum: a map whose values are themselves accumulators.

``MapAccum<K, V>`` stores a map from keys to values; when ``V`` is an
accumulator type, inputs ``(k, i)`` fold ``i`` into the nested accumulator
at key ``k`` — this is how GSQL expresses per-key aggregation without a
GROUP BY.  Order invariance and multiplicity sensitivity are inherited
recursively from the nested accumulator type (Section 4.3).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..errors import AccumulatorError
from .base import Accumulator
from .numeric import SumAccum


class MapAccum(Accumulator):
    """A map accumulator with nested-accumulator values.

    Parameters
    ----------
    value_factory:
        Zero-argument callable producing the nested accumulator for a new
        key.  Defaults to ``SumAccum(0.0)``, giving the common
        "sum per key" shape.
    """

    type_name = "MapAccum"

    def __init__(self, value_factory: Optional[Callable[[], Accumulator]] = None):
        if value_factory is None:
            value_factory = lambda: SumAccum(0.0)  # noqa: E731 - tiny default
        self._factory = value_factory
        self._entries: Dict[Any, Accumulator] = {}
        probe = value_factory()
        if not isinstance(probe, Accumulator):
            raise AccumulatorError(
                "MapAccum value_factory must produce Accumulator instances"
            )
        self.order_invariant = probe.order_invariant
        self.multiplicity_sensitive = probe.multiplicity_sensitive

    @property
    def value(self) -> Dict[Any, Any]:
        """The map with nested accumulators collapsed to their values."""
        return {key: acc.value for key, acc in self._entries.items()}

    def assign(self, value: Dict[Any, Any]) -> None:
        """Replace the whole map; each value is assigned into a fresh
        nested accumulator."""
        if not isinstance(value, dict):
            raise AccumulatorError("MapAccum assignment expects a dict")
        self._entries = {}
        for key, item in value.items():
            cell = self._factory()
            cell.assign(item)
            self._entries[key] = cell

    def _check_input(self, item: Any) -> Tuple[Any, Any]:
        if not (isinstance(item, tuple) and len(item) == 2):
            raise AccumulatorError("MapAccum input must be a (key, value) pair")
        return item

    def _cell(self, key: Any) -> Accumulator:
        cell = self._entries.get(key)
        if cell is None:
            cell = self._factory()
            self._entries[key] = cell
        return cell

    def combine(self, item: Any) -> None:
        key, payload = self._check_input(item)
        self._cell(key).combine(payload)

    def combine_weighted(self, item: Any, multiplicity: int) -> None:
        if multiplicity < 0:
            raise AccumulatorError(f"negative multiplicity {multiplicity}")
        if multiplicity == 0:
            return  # no inputs: must not materialize an empty entry
        key, payload = self._check_input(item)
        self._cell(key).combine_weighted(payload, multiplicity)

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, MapAccum):
            raise AccumulatorError("cannot merge MapAccum with " + other.type_name)
        for key, cell in other._entries.items():
            mine = self._entries.get(key)
            if mine is None:
                self._entries[key] = cell.copy()
            else:
                mine.merge(cell)

    def get(self, key: Any, default: Any = None) -> Any:
        cell = self._entries.get(key)
        return cell.value if cell is not None else default

    def accumulator_for(self, key: Any) -> Accumulator:
        """Direct access to the nested accumulator (creates it if absent)."""
        return self._cell(key)

    def keys(self) -> Iterator[Any]:
        return iter(self._entries)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return ((k, acc.value) for k, acc in self._entries.items())

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


__all__ = ["MapAccum"]
