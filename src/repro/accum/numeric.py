"""Numeric accumulators: Sum, Min, Max, Avg.

``SumAccum`` doubles as a string concatenator when constructed with
``element_type=str`` (GSQL's ``SumAccum<string>``), in which case it loses
order invariance — one of the three documented exceptions in Section 4.3.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..errors import AccumulatorError
from .base import Accumulator, check_numeric


class SumAccum(Accumulator):
    """Aggregates numeric inputs by addition (or strings by concatenation).

    The weighted combine adds ``μ·i`` in one step — the Appendix A
    simulation of ``μ`` duplicate ACCUM executions.
    """

    type_name = "SumAccum"

    def __init__(self, initial: Union[int, float, str, None] = None, element_type: type = float):
        if element_type not in (int, float, str):
            raise AccumulatorError(
                f"SumAccum supports int, float or string elements, not "
                f"{element_type!r}"
            )
        self.element_type = element_type
        self.order_invariant = element_type is not str
        if initial is None:
            initial = "" if element_type is str else element_type(0)
        self._validate(initial)
        self._value = initial

    def _validate(self, item: Any) -> None:
        if self.element_type is str:
            if not isinstance(item, str):
                raise AccumulatorError(
                    f"SumAccum<string> expects str inputs, got {item!r}"
                )
        else:
            check_numeric("SumAccum", item)

    @property
    def value(self) -> Union[int, float, str]:
        return self._value

    def assign(self, value: Any) -> None:
        self._validate(value)
        self._value = value

    def combine(self, item: Any) -> None:
        self._validate(item)
        self._value = self._value + item

    def combine_weighted(self, item: Any, multiplicity: int) -> None:
        if multiplicity < 0:
            raise AccumulatorError(f"negative multiplicity {multiplicity}")
        if multiplicity == 0:
            return
        self._validate(item)
        if self.element_type is str:
            self._value = self._value + item * multiplicity
        else:
            self._value = self._value + item * multiplicity

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, SumAccum):
            raise AccumulatorError("cannot merge SumAccum with " + other.type_name)
        if self.element_type is str:
            raise AccumulatorError("SumAccum<string> merge is order-dependent")
        self._value = self._value + other._value


class MinAccum(Accumulator):
    """Keeps the minimum input seen (multiplicity-insensitive)."""

    type_name = "MinAccum"
    multiplicity_sensitive = False

    def __init__(self, initial: Any = None):
        self._value = initial

    @property
    def value(self) -> Any:
        return self._value

    def assign(self, value: Any) -> None:
        self._value = value

    def combine(self, item: Any) -> None:
        if self._value is None or item < self._value:
            self._value = item

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, MinAccum):
            raise AccumulatorError("cannot merge MinAccum with " + other.type_name)
        if other._value is not None:
            self.combine(other._value)


class MaxAccum(Accumulator):
    """Keeps the maximum input seen (multiplicity-insensitive)."""

    type_name = "MaxAccum"
    multiplicity_sensitive = False

    def __init__(self, initial: Any = None):
        self._value = initial

    @property
    def value(self) -> Any:
        return self._value

    def assign(self, value: Any) -> None:
        self._value = value

    def combine(self, item: Any) -> None:
        if self._value is None or item > self._value:
            self._value = item

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, MaxAccum):
            raise AccumulatorError("cannot merge MaxAccum with " + other.type_name)
        if other._value is not None:
            self.combine(other._value)


class AvgAccum(Accumulator):
    """Order-invariant running average.

    Implemented, as the paper prescribes, by internally maintaining the
    (sum, count) pair, so input order never matters and weighted combines
    are O(1): ``sum += μ·i; count += μ``.
    """

    type_name = "AvgAccum"

    def __init__(self) -> None:
        self._sum: float = 0.0
        self._count: int = 0

    @property
    def value(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._sum / self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def assign(self, value: Any) -> None:
        """``=`` resets the average to a single observation (GSQL treats
        plain assignment into an AvgAccum as restart-from-value)."""
        check_numeric("AvgAccum", value)
        self._sum = float(value)
        self._count = 1

    def combine(self, item: Any) -> None:
        check_numeric("AvgAccum", item)
        self._sum += item
        self._count += 1

    def combine_weighted(self, item: Any, multiplicity: int) -> None:
        if multiplicity < 0:
            raise AccumulatorError(f"negative multiplicity {multiplicity}")
        if multiplicity == 0:
            return
        check_numeric("AvgAccum", item)
        self._sum += item * multiplicity
        self._count += multiplicity

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, AvgAccum):
            raise AccumulatorError("cannot merge AvgAccum with " + other.type_name)
        self._sum += other._sum
        self._count += other._count


__all__ = ["SumAccum", "MinAccum", "MaxAccum", "AvgAccum"]
