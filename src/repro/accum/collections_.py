"""Collection accumulators: Set, Bag, List, Array.

Set and Bag are order-invariant; List and Array are the documented
order-dependent exceptions (Section 4.3) and are excluded from the
tractable class of Section 7 when fed from Kleene-starred patterns.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import AccumulatorError
from .base import Accumulator


class SetAccum(Accumulator):
    """Inserts inputs into a set (duplicates collapse; order-invariant)."""

    type_name = "SetAccum"
    multiplicity_sensitive = False

    def __init__(self, initial: Optional[Iterable[Any]] = None):
        self._items = set(initial) if initial is not None else set()

    @property
    def value(self) -> FrozenSet[Any]:
        return frozenset(self._items)

    def assign(self, value: Iterable[Any]) -> None:
        self._items = set(value)

    def combine(self, item: Any) -> None:
        self._items.add(item)

    def combine_all(self, items: Iterable[Any]) -> None:
        """GSQL's ``+=`` with a set right-hand side is set union."""
        self._items.update(items)

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, SetAccum):
            raise AccumulatorError("cannot merge SetAccum with " + other.type_name)
        self._items |= other._items

    def __contains__(self, item: Any) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)


class BagAccum(Accumulator):
    """Inserts inputs into a multiset.

    Order-invariant and multiplicity-sensitive; the weighted combine adds
    ``μ`` copies by bumping one counter.
    """

    type_name = "BagAccum"

    def __init__(self, initial: Optional[Iterable[Any]] = None):
        self._items: Counter = Counter(initial) if initial is not None else Counter()

    @property
    def value(self) -> Dict[Any, int]:
        """The bag as an item -> multiplicity mapping."""
        return dict(self._items)

    def assign(self, value: Iterable[Any]) -> None:
        self._items = Counter(value)

    def combine(self, item: Any) -> None:
        self._items[item] += 1

    def combine_weighted(self, item: Any, multiplicity: int) -> None:
        if multiplicity < 0:
            raise AccumulatorError(f"negative multiplicity {multiplicity}")
        if multiplicity:
            self._items[item] += multiplicity

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, BagAccum):
            raise AccumulatorError("cannot merge BagAccum with " + other.type_name)
        self._items.update(other._items)

    def multiplicity(self, item: Any) -> int:
        return self._items.get(item, 0)

    def __contains__(self, item: Any) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return sum(self._items.values())


class ListAccum(Accumulator):
    """Appends inputs to a list.  Order-dependent (Section 4.3) — the
    engine flags it when deterministic results are requested."""

    type_name = "ListAccum"
    order_invariant = False

    def __init__(self, initial: Optional[Iterable[Any]] = None):
        self._items: List[Any] = list(initial) if initial is not None else []

    @property
    def value(self) -> Tuple[Any, ...]:
        return tuple(self._items)

    def assign(self, value: Iterable[Any]) -> None:
        self._items = list(value)

    def combine(self, item: Any) -> None:
        self._items.append(item)

    def combine_weighted(self, item: Any, multiplicity: int) -> None:
        if multiplicity < 0:
            raise AccumulatorError(f"negative multiplicity {multiplicity}")
        self._items.extend([item] * multiplicity)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Any:
        return self._items[index]


class ArrayAccum(Accumulator):
    """A fixed-size array of element accumulators.

    GSQL's ArrayAccum aggregates *positionally*: the input is an
    ``(index, item)`` pair, folded into the element accumulator at that
    index.  The element accumulator type is chosen at construction, e.g.
    ``ArrayAccum(3, lambda: SumAccum(0.0))``.
    """

    type_name = "ArrayAccum"
    order_invariant = False

    def __init__(self, size: int, element_factory=None):
        from .numeric import SumAccum

        if size < 0:
            raise AccumulatorError("ArrayAccum size must be non-negative")
        if element_factory is None:
            element_factory = lambda: SumAccum(0.0)  # noqa: E731 - tiny default
        self._cells: List[Accumulator] = [element_factory() for _ in range(size)]
        # The array is order-invariant iff its cells are.
        self.order_invariant = all(c.order_invariant for c in self._cells)

    @property
    def value(self) -> Tuple[Any, ...]:
        return tuple(cell.value for cell in self._cells)

    def assign(self, value: Iterable[Any]) -> None:
        values = list(value)
        if len(values) != len(self._cells):
            raise AccumulatorError(
                f"ArrayAccum of size {len(self._cells)} assigned "
                f"{len(values)} values"
            )
        for cell, item in zip(self._cells, values):
            cell.assign(item)

    def _check_input(self, item: Any) -> Tuple[int, Any]:
        if not (isinstance(item, tuple) and len(item) == 2):
            raise AccumulatorError(
                "ArrayAccum input must be an (index, value) pair"
            )
        index, payload = item
        if not isinstance(index, int) or not 0 <= index < len(self._cells):
            raise AccumulatorError(
                f"ArrayAccum index {index!r} out of range 0..{len(self._cells) - 1}"
            )
        return index, payload

    def combine(self, item: Any) -> None:
        index, payload = self._check_input(item)
        self._cells[index].combine(payload)

    def combine_weighted(self, item: Any, multiplicity: int) -> None:
        index, payload = self._check_input(item)
        self._cells[index].combine_weighted(payload, multiplicity)

    def __len__(self) -> int:
        return len(self._cells)

    def __getitem__(self, index: int) -> Any:
        return self._cells[index].value


__all__ = ["SetAccum", "BagAccum", "ListAccum", "ArrayAccum"]
