"""GroupByAccum: SQL-style grouped aggregation as an accumulator.

``GroupByAccum<k1, ..., kn, Acc1, ..., Accm>`` groups its inputs by an
n-ary key and folds the payload values into one nested accumulator per
aggregate column.  Inputs use the paper's arrow notation
(Example 12)::

    A += (k1, k2, k3 -> a1, a2, a3)

which in this library is the pair ``((k1, k2, k3), (a1, a2, a3))`` — the
GSQL front end builds exactly that from the arrow syntax.

This single type is what lets accumulators *subsume* conventional GROUP BY
(Section 8): one GroupByAccum per grouping set expresses GROUPING SETS /
CUBE / ROLLUP without computing unwanted aggregates.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import AccumulatorError
from .base import Accumulator


class GroupByAccum(Accumulator):
    """Grouped aggregation: key tuple -> one nested accumulator per column.

    Parameters
    ----------
    key_names:
        Names of the grouping attributes (used in results and for
        readability; arity is enforced on every input).
    accum_factories:
        One zero-argument accumulator factory per aggregate column.
    """

    type_name = "GroupByAccum"

    def __init__(
        self,
        key_names: Sequence[str],
        accum_factories: Sequence[Callable[[], Accumulator]],
    ):
        if not key_names:
            raise AccumulatorError("GroupByAccum needs at least one key")
        if not accum_factories:
            raise AccumulatorError("GroupByAccum needs at least one aggregate")
        self.key_names = tuple(key_names)
        self._factories = tuple(accum_factories)
        self._groups: Dict[Tuple[Any, ...], List[Accumulator]] = {}
        probes = [factory() for factory in self._factories]
        for probe in probes:
            if not isinstance(probe, Accumulator):
                raise AccumulatorError(
                    "GroupByAccum factories must produce Accumulator instances"
                )
        self.order_invariant = all(p.order_invariant for p in probes)
        self.multiplicity_sensitive = any(p.multiplicity_sensitive for p in probes)

    # -- input handling ----------------------------------------------------
    def _check_input(self, item: Any) -> Tuple[Tuple[Any, ...], Tuple[Any, ...]]:
        if not (isinstance(item, tuple) and len(item) == 2):
            raise AccumulatorError(
                "GroupByAccum input must be a (keys, values) pair "
                "(the GSQL arrow form 'k1, k2 -> a1, a2')"
            )
        keys, values = item
        if not isinstance(keys, tuple):
            keys = (keys,)
        if not isinstance(values, tuple):
            values = (values,)
        if len(keys) != len(self.key_names):
            raise AccumulatorError(
                f"GroupByAccum expects {len(self.key_names)} keys, got {len(keys)}"
            )
        if len(values) != len(self._factories):
            raise AccumulatorError(
                f"GroupByAccum expects {len(self._factories)} aggregate values, "
                f"got {len(values)}"
            )
        return keys, values

    def _cells(self, keys: Tuple[Any, ...]) -> List[Accumulator]:
        cells = self._groups.get(keys)
        if cells is None:
            cells = [factory() for factory in self._factories]
            self._groups[keys] = cells
        return cells

    def combine(self, item: Any) -> None:
        keys, values = self._check_input(item)
        for cell, val in zip(self._cells(keys), values):
            cell.combine(val)

    def combine_weighted(self, item: Any, multiplicity: int) -> None:
        if multiplicity < 0:
            raise AccumulatorError(f"negative multiplicity {multiplicity}")
        if multiplicity == 0:
            return  # no inputs: must not materialize an empty group
        keys, values = self._check_input(item)
        for cell, val in zip(self._cells(keys), values):
            cell.combine_weighted(val, multiplicity)

    def assign(self, value: Any) -> None:
        raise AccumulatorError("GroupByAccum does not support plain assignment")

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, GroupByAccum):
            raise AccumulatorError(
                "cannot merge GroupByAccum with " + other.type_name
            )
        for keys, cells in other._groups.items():
            mine = self._groups.get(keys)
            if mine is None:
                self._groups[keys] = [cell.copy() for cell in cells]
            else:
                for my_cell, their_cell in zip(mine, cells):
                    my_cell.merge(their_cell)

    # -- reading -------------------------------------------------------------
    @property
    def value(self) -> Dict[Tuple[Any, ...], Tuple[Any, ...]]:
        """Map from key tuple to the tuple of aggregate values."""
        return {
            keys: tuple(cell.value for cell in cells)
            for keys, cells in self._groups.items()
        }

    def rows(self) -> Iterator[Dict[str, Any]]:
        """Result rows as dicts: key columns by name, aggregates as agg0..n."""
        for keys, cells in self._groups.items():
            row = dict(zip(self.key_names, keys))
            for i, cell in enumerate(cells):
                row[f"agg{i}"] = cell.value
            yield row

    def get(self, *keys: Any) -> Optional[Tuple[Any, ...]]:
        cells = self._groups.get(tuple(keys))
        if cells is None:
            return None
        return tuple(cell.value for cell in cells)

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, keys: Any) -> bool:
        if not isinstance(keys, tuple):
            keys = (keys,)
        return keys in self._groups


__all__ = ["GroupByAccum"]
