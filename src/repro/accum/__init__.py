"""The accumulator library (Section 3 of the paper).

All built-in accumulator types, the tuple machinery used by Heap/GroupBy
accumulators, and the extensibility registry.
"""

from .algebra import TABLE as OP_ALGEBRA_TABLE
from .algebra import OpAlgebra, algebra_for, classify, digest_value
from .base import Accumulator
from .collections_ import ArrayAccum, BagAccum, ListAccum, SetAccum
from .groupby import GroupByAccum
from .heap import ASC, DESC, HeapAccum
from .logical import AndAccum, BitwiseAndAccum, BitwiseOrAccum, OrAccum
from .mapaccum import MapAccum
from .numeric import AvgAccum, MaxAccum, MinAccum, SumAccum
from .registry import (
    accumulator_from_combiner,
    lookup_accumulator,
    register_accumulator,
    unregister_accumulator,
)
from .tuples import TupleType, TupleValue, coerce_tuple

__all__ = [
    "Accumulator",
    "SumAccum",
    "MinAccum",
    "MaxAccum",
    "AvgAccum",
    "OrAccum",
    "AndAccum",
    "BitwiseOrAccum",
    "BitwiseAndAccum",
    "SetAccum",
    "BagAccum",
    "ListAccum",
    "ArrayAccum",
    "MapAccum",
    "HeapAccum",
    "GroupByAccum",
    "ASC",
    "DESC",
    "TupleType",
    "TupleValue",
    "coerce_tuple",
    "lookup_accumulator",
    "register_accumulator",
    "unregister_accumulator",
    "accumulator_from_combiner",
    "OpAlgebra",
    "OP_ALGEBRA_TABLE",
    "algebra_for",
    "classify",
    "digest_value",
]
