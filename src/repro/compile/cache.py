"""The bounded LRU plan cache in front of the lowering pass.

Repeat traffic — the same query text hitting :mod:`repro.server` or the
CLI again — skips parse, analyze and lowering entirely: the cache maps
``(query text, schema version, engine-relevant flags)`` to a ready
:class:`~repro.compile.lowering.CompiledQuery`.

Keying and invalidation rules (also in ``docs/compilation.md``):

* **query text** is the exact source string — no normalization, so two
  spellings of the same query occupy two slots (cheap, and it keeps the
  key computation free);
* **schema version** is ``(schema.name, schema.fingerprint())`` — a
  *content* hash, so two structurally equal schema objects share plans
  while any type/attribute divergence isolates them (same text,
  different schema → different entry);
* **flags** is an opaque sorted tuple of engine-relevant strings the
  caller folds in (the CLI/server pass nothing today; anything that
  changes lowering output belongs here);
* an entry is dropped on lookup when its query's analysis epoch moved —
  ``Query.invalidate_analysis()`` bumps the epoch, so AST mutation
  invalidates every plan compiled from that query (counted as
  ``compile.cache.invalidated``, reported as a miss);
* capacity eviction is LRU (``compile.cache.eviction``).

Lookups are thread-safe (the server's thread-mode worker pool shares one
process-wide cache); compilation itself runs outside the lock, so a slow
compile never blocks unrelated hits.  The worst case is two threads
compiling the same text concurrently — both plans are valid, one wins
the insert.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from ..core.query import Query
from ..obs import metrics as _obs
from .lowering import CompiledQuery, compile_query

#: Default number of cached plans; at ~one lowered statement tree per
#: entry this is a few MB for typical workloads.
DEFAULT_CAPACITY = 128


def _count(name: str, value: int = 1) -> None:
    col = _obs._ACTIVE
    if col is not None:
        col.count(name, value)


class PlanCache:
    """A bounded LRU of compiled query plans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, CompiledQuery]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    @staticmethod
    def schema_token(schema) -> Optional[Tuple[str, str]]:
        """The schema-version component of the cache key (None = schema-free)."""
        if schema is None:
            return None
        return (schema.name, schema.fingerprint())

    def key(self, text: str, schema=None, flags: Tuple[str, ...] = ()) -> Tuple:
        return (text, self.schema_token(schema), tuple(sorted(flags)))

    # ------------------------------------------------------------------
    def lookup(self, text: str, schema=None, flags: Tuple[str, ...] = ()):
        """The cached plan for a key, or None (LRU-touching on hit)."""
        key = self.key(text, schema, flags)
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                _count("compile.cache.miss")
                return None
            if plan.stale:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                _count("compile.cache.invalidated")
                _count("compile.cache.miss")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _count("compile.cache.hit")
            plan.cache_status = "hit"
            return plan

    def insert(
        self, text: str, plan: CompiledQuery, schema=None,
        flags: Tuple[str, ...] = (),
    ) -> None:
        key = self.key(text, schema, flags)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                _count("compile.cache.eviction")

    def get_or_compile(
        self, text: str, schema=None, flags: Tuple[str, ...] = ()
    ) -> CompiledQuery:
        """The front door: parse + lower on miss, cached plan on hit.

        The returned plan's ``cache_status`` is ``"hit"`` or ``"miss"``.
        Parsing and lowering run outside the cache lock.
        """
        plan = self.lookup(text, schema, flags)
        if plan is not None:
            return plan
        from ..gsql import parse_query

        query = parse_query(text)
        plan = compile_query(query, schema=schema, flags=flags)
        plan.cache_status = "miss"
        self.insert(text, plan, schema, flags)
        return plan

    # ------------------------------------------------------------------
    def invalidate(self, text: str, schema=None, flags: Tuple[str, ...] = ()) -> bool:
        """Drop one entry (True if it existed)."""
        key = self.key(text, schema, flags)
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.invalidations += 1
                _count("compile.cache.invalidated")
                return True
        return False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


# ---------------------------------------------------------------------------
# Process-wide singleton (the CLI and server share warm plans).
# ---------------------------------------------------------------------------

_CACHE: Optional[PlanCache] = None
_CACHE_LOCK = threading.Lock()


def plan_cache() -> PlanCache:
    """The process-wide plan cache (created on first use)."""
    global _CACHE
    if _CACHE is None:
        with _CACHE_LOCK:
            if _CACHE is None:
                _CACHE = PlanCache()
    return _CACHE


def reset_plan_cache() -> None:
    """Drop the process-wide cache (forked server workers, tests)."""
    global _CACHE
    with _CACHE_LOCK:
        _CACHE = None


def compile_query_text(
    text: str,
    schema=None,
    flags: Tuple[str, ...] = (),
    cache: Optional[PlanCache] = None,
) -> CompiledQuery:
    """Compile GSQL text through the (default: process-wide) plan cache.

    The convenience entry point::

        from repro import compile_query_text
        plan = compile_query_text(source)
        result = plan.run(graph, srcName="A", tgtName="B")
        plan.cache_status   # "miss" first time, "hit" on repeats
    """
    return (cache or plan_cache()).get_or_compile(text, schema, flags)


__all__ = [
    "DEFAULT_CAPACITY",
    "PlanCache",
    "compile_query_text",
    "plan_cache",
    "reset_plan_cache",
]
