"""Lowering: analyzed queries to specialized executable form.

:func:`compile_query` turns a parsed (and certificate-stamped) ``Query``
into a :class:`CompiledQuery`: a parallel statement tree in which

* every expression is a :class:`~repro.compile.exprc.CompiledExpr`
  closure (constant subtrees folded at compile time);
* every SELECT block is a :class:`CompiledBlock` that precomputes, once,
  what the interpreter recomputes per execution — the filter-pushdown
  split, the primed-snapshot name set, the POST_ACCUM per-statement
  dependency lists, and a **fused ACCUM map kernel**: a two-stage
  closure (``bind(ctx, buffer) -> row_fn(env, μ)``) whose bind stage
  resolves accumulator instances and buffer methods once per block
  execution instead of once per row;
* a conclusive tractability certificate bakes the ``EngineMode.auto()``
  resolution into the plan (the planner's *compiled tier* — see
  :func:`repro.core.planner.compile_time_engine`), leaving only
  UNKNOWN-certificate blocks to the runtime probe.

The lowered form is **behavior-identical** to the interpreter and runs
through the same obs / governor / AccSan / fault-injection checkpoints
in the same order — ``CompiledBlock._execute`` mirrors
``SelectBlock._execute`` span for span and counter for counter (the
only intentional deltas are listed in ``docs/compilation.md``).  The
original ``Query`` object is left untouched and remains the target of
static analysis; the lowered clone never aliases mutable clause lists
with it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import accsan as _accsan
from ..accum.algebra import classify
from ..core.block import OutputColumn, OutputFragment, SelectBlock
from ..core.context import QueryContext
from ..core.exprs import EvalEnv, Expr, primed_accum_names
from ..core.pattern import EngineMode, evaluate_pattern
from ..core.planner import and_all, compile_time_engine, push_down_filters, select_engine
from ..core.query import (
    DeclareAccum,
    Foreach,
    GlobalAccumUpdate,
    If,
    Print,
    PrintItem,
    PrintSetProjection,
    Query,
    Return,
    RunBlock,
    SetAssign,
    Statement,
    While,
)
from ..core.stmts import (
    AccStatement,
    AccumForeach,
    AccumIf,
    AccumTarget,
    AccumUpdate,
    AttributeUpdate,
    InputBuffer,
    LocalAssign,
    _distinct_projections,
    _run_accum_statements,
    _run_post_statement,
    collect_primed_names,
)
from ..errors import QueryRuntimeError
from ..governor import faults as _faults
from ..governor import governor as _gov
from ..graph.elements import Vertex
from ..obs import metrics as _obs
from .exprc import CompileStats, compile_closure, compile_expr


class CompiledInputBuffer(InputBuffer):
    """An :class:`InputBuffer` whose Reduce phase pre-resolves combines.

    The interpreter's flush looks ``combine_weighted`` up on every
    buffered input; here the bound method is fetched once per run of
    consecutive inputs to the same accumulator instance (the dominant
    shape: one global accumulator, or per-vertex inputs grouped by row
    order).  Counters and ordering are identical to the parent.
    """

    def flush(self) -> None:
        col = _obs._ACTIVE
        if col is not None and (self._sets or self._adds):
            col.count("accum.assigns", len(self._sets))
            col.count("accum.combine_weighted", len(self._adds))
        for acc, value in self._sets:
            acc.assign(value)
        last_acc = None
        combine = None
        for acc, value, multiplicity in self._adds:
            if acc is not last_acc:
                combine = acc.combine_weighted
                last_acc = acc
            combine(value, multiplicity)
        self._adds.clear()
        self._sets.clear()


# ----------------------------------------------------------------------
# ACCUM map kernel
# ----------------------------------------------------------------------
# A kernel is built in two stages so per-execution state binds exactly
# once: ``compile_accum_clause`` runs at compile time and returns a
# *binder*; the block calls ``binder(ctx, buffer)`` once per execution,
# which resolves accumulator instances / family factories / buffer
# methods and returns the per-row function ``run(env, μ)``.

_Binder = Callable[[QueryContext, InputBuffer], Callable[[EvalEnv, int], None]]


def compile_accum_clause(
    statements: List[AccStatement],
    decl_types: Dict[str, Any],
    stats: CompileStats,
) -> Optional[_Binder]:
    if not statements:
        return None
    binders = [_compile_acc_statement(s, decl_types, stats) for s in statements]
    stats.kernels += 1

    def bind(ctx: QueryContext, buffer: InputBuffer):
        runs = [b(ctx, buffer) for b in binders]
        if len(runs) == 1:
            single = runs[0]

            def run_all(env: EvalEnv, multiplicity: int) -> None:
                env.locals.clear()
                single(env, multiplicity)

            return run_all

        def run_all(env: EvalEnv, multiplicity: int) -> None:
            env.locals.clear()
            for run in runs:
                run(env, multiplicity)

        return run_all

    return bind


def _compile_acc_statement(
    stmt: AccStatement, decl_types: Dict[str, Any], stats: CompileStats
) -> _Binder:
    if isinstance(stmt, LocalAssign):
        name = stmt.name
        value_fn, _ = compile_closure(stmt.expr, stats)

        def bind_local(ctx, buffer):
            def run(env: EvalEnv, multiplicity: int) -> None:
                env.locals[name] = value_fn(env)

            return run

        return bind_local
    if isinstance(stmt, AccumUpdate):
        return _compile_accum_update(stmt, decl_types, stats)
    if isinstance(stmt, AccumIf):
        cond_fn, _ = compile_closure(stmt.cond, stats)
        then_binders = [
            _compile_acc_statement(s, decl_types, stats) for s in stmt.then
        ]
        else_binders = [
            _compile_acc_statement(s, decl_types, stats) for s in stmt.otherwise
        ]

        def bind_if(ctx, buffer):
            then_runs = [b(ctx, buffer) for b in then_binders]
            else_runs = [b(ctx, buffer) for b in else_binders]

            def run(env: EvalEnv, multiplicity: int) -> None:
                for inner in (then_runs if cond_fn(env) else else_runs):
                    inner(env, multiplicity)

            return run

        return bind_if
    if isinstance(stmt, AccumForeach):
        coll_fn, _ = compile_closure(stmt.collection, stats)
        var = stmt.var
        body_binders = [
            _compile_acc_statement(s, decl_types, stats) for s in stmt.body
        ]

        def bind_foreach(ctx, buffer):
            body_runs = [b(ctx, buffer) for b in body_binders]

            def run(env: EvalEnv, multiplicity: int) -> None:
                value = coll_fn(env)
                if isinstance(value, dict):
                    items = list(value.items())
                else:
                    try:
                        items = list(value)
                    except TypeError:
                        raise QueryRuntimeError(
                            f"FOREACH needs an iterable, got "
                            f"{type(value).__name__}"
                        ) from None
                locals_ = env.locals
                had_prior = var in locals_
                prior = locals_.get(var)
                try:
                    for item in items:
                        locals_[var] = item
                        for inner in body_runs:
                            inner(env, multiplicity)
                finally:
                    if had_prior:
                        locals_[var] = prior
                    else:
                        locals_.pop(var, None)

            return run

        return bind_foreach
    if isinstance(stmt, AttributeUpdate):
        def bind_attr(ctx, buffer):
            def run(env: EvalEnv, multiplicity: int) -> None:
                raise QueryRuntimeError(
                    "attribute assignments are only allowed in POST_ACCUM "
                    "(in ACCUM, acc-executions for the same vertex would race)"
                )

            return run

        return bind_attr

    # Unknown extension statement: interpret it (full parity by
    # construction; nothing to specialize).
    def bind_fallback(ctx, buffer):
        def run(env: EvalEnv, multiplicity: int) -> None:
            _run_accum_statements([stmt], env, buffer, multiplicity)

        return run

    return bind_fallback


def _compile_accum_update(
    stmt: AccumUpdate, decl_types: Dict[str, Any], stats: CompileStats
) -> _Binder:
    """One ``target += expr`` / ``target = expr`` row function.

    The op-algebra row for the target's declared type is looked up once
    here (PR 5's table) — recorded in the kernel catalog and counted as
    a pre-resolved combine; the bind stage then captures the resolved
    accumulator instance (global) or a family resolver closure (vertex)
    plus the buffer method, so the per-row path is closure calls only.
    """
    name = stmt.target.name
    op = stmt.op
    is_add = op == "+="
    value_fn, _ = compile_closure(stmt.expr, stats)
    algebra = classify(decl_types.get(name))
    if algebra is not None:
        stats.combines_preresolved += 1
    target = stmt.target  # kept for AccSan event attribution

    if stmt.target.is_global:
        def bind_global(ctx, buffer):
            add = buffer.add
            set_ = buffer.set

            def run(env: EvalEnv, multiplicity: int, _cell=[]) -> None:
                value = value_fn(env)
                if not _cell:
                    _cell.append(ctx.global_accum(name))
                acc = _cell[0]
                if _accsan._ACTIVE is not None:
                    _accsan._ACTIVE.record("accum", target, acc, op, value)
                if is_add:
                    add(acc, value, multiplicity)
                else:
                    set_(acc, value)

            return run

        return bind_global

    base_fn, _ = compile_closure(stmt.target.base, stats)

    def bind_vertex(ctx, buffer):
        add = buffer.add
        set_ = buffer.set
        resolve = ctx.vertex_accum_resolver(name)

        def run(env: EvalEnv, multiplicity: int) -> None:
            value = value_fn(env)
            vertex = base_fn(env)
            if not isinstance(vertex, Vertex):
                raise QueryRuntimeError(
                    f"accumulator @{name} addressed through non-vertex "
                    f"{type(vertex).__name__}"
                )
            acc = resolve(vertex.vid)
            if _accsan._ACTIVE is not None:
                _accsan._ACTIVE.record("accum", target, acc, op, value)
            if is_add:
                add(acc, value, multiplicity)
            else:
                set_(acc, value)

        return run

    return bind_vertex


# ----------------------------------------------------------------------
# POST_ACCUM / clause cloning
# ----------------------------------------------------------------------

def _clone_acc_statement(stmt: AccStatement, stats: CompileStats) -> AccStatement:
    """A structural clone with compiled expressions (same classes, so the
    interpreter's POST_ACCUM dispatcher keeps working on it)."""
    if isinstance(stmt, LocalAssign):
        return LocalAssign(stmt.name, compile_expr(stmt.expr, stats), stmt.type_name)
    if isinstance(stmt, AccumUpdate):
        base = stmt.target.base
        tgt = AccumTarget(
            stmt.target.name,
            compile_expr(base, stats) if base is not None else None,
        )
        return AccumUpdate(tgt, stmt.op, compile_expr(stmt.expr, stats))
    if isinstance(stmt, AttributeUpdate):
        return AttributeUpdate(
            compile_expr(stmt.base, stats), stmt.attr, compile_expr(stmt.expr, stats)
        )
    if isinstance(stmt, AccumIf):
        return AccumIf(
            compile_expr(stmt.cond, stats),
            [_clone_acc_statement(s, stats) for s in stmt.then],
            [_clone_acc_statement(s, stats) for s in stmt.otherwise],
        )
    if isinstance(stmt, AccumForeach):
        return AccumForeach(
            stmt.var,
            compile_expr(stmt.collection, stats),
            [_clone_acc_statement(s, stats) for s in stmt.body],
        )
    return stmt


# ----------------------------------------------------------------------
# Compiled SELECT block
# ----------------------------------------------------------------------

class CompiledBlock(SelectBlock):
    """A SELECT block specialized by the lowering pass.

    Execution mirrors :meth:`SelectBlock._execute` checkpoint for
    checkpoint — governor tick, AUTO resolution, degradation ladder,
    tractability check, primed capture, pattern span, residual filter,
    acc-execution charge, per-row fault site, Map/Reduce spans, AccSan
    replay, POST_ACCUM, memory check, fragments, vertex-set result —
    with the per-execution planning (pushdown split, primed-name
    collection, POST_ACCUM dependency analysis, AUTO certificate
    reading) hoisted to compile time.
    """

    compiled = True

    def __init__(self, original: SelectBlock, decl_types: Dict[str, Any],
                 stats: CompileStats):
        fragments = [
            OutputFragment(
                [
                    OutputColumn(compile_expr(c.expr, stats), c.alias)
                    for c in fragment.columns
                ],
                fragment.into,
            )
            for fragment in original.fragments
        ]
        order_by = [
            (compile_expr(expr, stats), desc) for expr, desc in original.order_by
        ]
        group_by = [compile_expr(expr, stats) for expr in original.group_by]
        SelectBlock.__init__(
            self,
            original.pattern,
            select_var=original.select_var,
            fragments=fragments,
            distinct=original.distinct,
            where=original.where,
            accum=original.accum,
            post_accum=original.post_accum,
            group_by=group_by,
            having=(
                compile_expr(original.having, stats)
                if original.having is not None
                else None
            ),
            order_by=order_by,
            limit=(
                compile_expr(original.limit, stats)
                if original.limit is not None
                else None
            ),
            semantics=original.semantics,
        )
        self.certificate = original.certificate
        self.effect_certificate = original.effect_certificate
        self.cost_certificate = original.cost_certificate

        pattern_vars = set(original.pattern.variables())
        # Pushdown split, once.  (The planner.pushdown_* counters are
        # charged here, at compile time, instead of per execution.)
        var_filters, residual_conjuncts = push_down_filters(
            original.where, pattern_vars
        )
        self._var_filters = {
            var: [compile_expr(f, stats) for f in filters]
            for var, filters in var_filters.items()
        }
        kept: List[Expr] = []
        for conjunct in residual_conjuncts:
            fn, const = compile_closure(conjunct, stats)
            if const and fn(None) is True:
                # A conjunct folded to constant True filters nothing:
                # drop it from the residual entirely.
                stats.conjuncts_dropped += 1
                continue
            kept.append(compile_expr(conjunct, stats))
        residual = and_all(kept)
        self._residual_fn = residual.eval if residual is not None else None

        # Primed-snapshot names, once (the interpreter re-collects them
        # per execution in _capture_primed).
        names = collect_primed_names(original.accum) | collect_primed_names(
            original.post_accum
        )
        for expr in original._all_output_exprs():
            names.update(primed_accum_names(expr))
        self._primed_names = frozenset(names)

        # The fused Map kernel.
        self._map_bind = compile_accum_clause(original.accum, decl_types, stats)

        # POST_ACCUM: compiled statement clones with their dependency
        # variable lists precomputed (the interpreter sorts them per
        # execution).
        self._post_stmts: List[Tuple[AccStatement, List[str]]] = [
            (
                _clone_acc_statement(stmt, stats),
                sorted(
                    {n for n in stmt.referenced_names() if n in pattern_vars}
                ),
            )
            for stmt in original.post_accum
        ]

        # The compiled tier of EngineMode.auto(): a conclusive
        # certificate resolves the engine now; None keeps the runtime
        # probe.
        self._auto_engine = compile_time_engine(original)
        if self._auto_engine is not None:
            stats.engines_baked += 1

        stats.blocks += 1
        stats.catalog.append({
            "pattern": repr(original.pattern),
            "pushdown_vars": sorted(self._var_filters),
            "residual_conjuncts": len(kept),
            "folded_conjuncts": len(residual_conjuncts) - len(kept),
            "map_kernel": bool(self._map_bind),
            "post_accum_statements": len(self._post_stmts),
            "primed_snapshots": sorted(self._primed_names),
            "auto_engine": self._auto_engine,
        })

    # -- overridden hooks ----------------------------------------------
    def _capture_primed(self, ctx: QueryContext) -> Dict[str, Dict[Any, Any]]:
        snapshots: Dict[str, Dict[Any, Any]] = {}
        for name in self._primed_names:
            if name.startswith("@@"):
                snapshots[name] = {None: ctx.snapshot_global_accum(name[2:])}
            else:
                snapshots[name] = ctx.snapshot_vertex_accum(name)
        return snapshots

    def execute(self, ctx: QueryContext, mode: EngineMode):
        col = _obs._ACTIVE
        if col is None:
            return self._execute(ctx, mode, None)
        span = col.span(
            "select_block",
            label=f"SELECT  FROM {self.pattern!r}",
            compiled=True,
        )
        try:
            return self._execute(ctx, mode, col)
        finally:
            col.close(span)

    def _execute(self, ctx: QueryContext, mode: EngineMode, col):
        gov = _gov._ACTIVE
        if gov is not None:
            gov.tick()
        if self.semantics is not None:
            mode = mode.for_semantics(self.semantics)
        if mode.kind == EngineMode.AUTO:
            baked = self._auto_engine
            if baked is None:
                mode = select_engine(self, ctx, mode)
            else:
                mode = self._baked_mode(baked, mode, col)
            if col is not None:
                col.count(f"block.engine.{mode.kind}")
        if gov is not None:
            mode = self._maybe_downgrade(mode, gov, col)
        self._check_tractability(ctx, mode)
        primed = self._capture_primed(ctx)

        if col is not None:
            pattern_span = col.span("pattern")
        try:
            table = evaluate_pattern(ctx, self.pattern, mode, self._var_filters)
        finally:
            if col is not None:
                col.close(pattern_span)
        rows = table.rows
        if col is not None:
            pattern_span.set(
                rows=len(rows), multiplicity=table.total_multiplicity()
            )
            col.count("block.binding_rows", len(rows))
            col.count("block.binding_multiplicity", table.total_multiplicity())
        residual_fn = self._residual_fn
        if residual_fn is not None:
            before = len(rows)
            rows = [
                row
                for row in rows
                if residual_fn(EvalEnv(ctx, row.bindings, None, primed))
            ]
            if col is not None:
                col.count("block.rows_filtered_residual", before - len(rows))

        if self._map_bind is not None:
            if gov is not None:
                gov.charge_acc_executions(len(rows))
            if col is not None:
                map_span = col.span("accum_map", statements=len(self.accum))
            buffer = CompiledInputBuffer()
            locals_: Dict[str, Any] = {}
            kernel = self._map_bind(ctx, buffer)
            try:
                try:
                    if _faults._PLAN is None:
                        for row in rows:
                            kernel(
                                EvalEnv(ctx, row.bindings, locals_, primed),
                                row.multiplicity,
                            )
                    else:
                        for row in rows:
                            _faults.fire("block.accum_map")
                            kernel(
                                EvalEnv(ctx, row.bindings, locals_, primed),
                                row.multiplicity,
                            )
                finally:
                    if col is not None:
                        map_span.set(acc_executions=len(rows))
                        col.count("block.acc_executions", len(rows))
                        col.close(map_span)
                if col is not None:
                    reduce_span = col.span("accum_reduce", inputs=len(buffer))
                try:
                    if _faults._PLAN is not None:
                        _faults.fire("block.reduce")
                    if _accsan._ACTIVE is not None:
                        _accsan._ACTIVE.check_flush(self, buffer)
                    buffer.flush()
                finally:
                    if col is not None:
                        col.close(reduce_span)
            except BaseException:
                buffer.clear()
                raise

        if self._post_stmts:
            if _faults._PLAN is not None:
                _faults.fire("block.post_accum")
            if col is not None:
                post_span = col.span(
                    "post_accum", statements=len(self.post_accum)
                )
            try:
                self._run_post_accum(ctx, rows, primed, col)
            finally:
                if col is not None:
                    col.close(post_span)

        if gov is not None:
            gov.check_memory(ctx)

        for fragment in self.fragments:
            self._emit_fragment(ctx, fragment, rows, primed)

        if self.select_var is not None:
            return self._vertex_set_result(ctx, rows, primed)
        return None

    def _baked_mode(self, baked: str, mode: EngineMode, col) -> EngineMode:
        """Apply the compile-time AUTO resolution, preserving the
        interpreter path's planner counter surface (with the source
        labelled ``compiled``)."""
        if col is not None:
            effect = self.effect_certificate
            if effect is not None:
                col.count(f"planner.effects.{effect.status.value}")
                if effect.delta_maintainable:
                    col.count("planner.effects.delta_maintainable")
            col.count(f"planner.auto_{baked}")
            col.count("planner.auto_source.compiled")
        if baked == "enumeration":
            return EngineMode.enumeration(
                mode.semantics, budget=mode.budget, max_length=mode.max_length
            )
        return EngineMode.counting(
            max_length=mode.max_length, semantics=mode.semantics
        )

    def _run_post_accum(self, ctx, rows, primed, col) -> None:
        buffer = CompiledInputBuffer()
        for stmt, deps in self._post_stmts:
            executions = _distinct_projections(rows, deps)
            if col is not None:
                col.count("block.post_accum_executions", len(executions))
            locals_: Dict[str, Any] = {}
            for binding in executions:
                env = EvalEnv(ctx, binding, locals_, primed)
                locals_.clear()
                _run_post_statement(stmt, ctx, env, buffer)
        if _accsan._ACTIVE is not None:
            _accsan._ACTIVE.check_flush(None, buffer)
        buffer.flush()


# ----------------------------------------------------------------------
# Statement lowering
# ----------------------------------------------------------------------

def _lower_statement(
    stmt: Statement, decl_types: Dict[str, Any], stats: CompileStats
) -> Statement:
    new: Statement
    if isinstance(stmt, DeclareAccum):
        new = DeclareAccum(
            stmt.name,
            stmt.scope,
            stmt.base_factory,
            initial=(
                compile_expr(stmt.initial, stats)
                if stmt.initial is not None
                else None
            ),
            type_info=stmt.type_info,
        )
    elif isinstance(stmt, SetAssign):
        if isinstance(stmt.source, SelectBlock):
            new = SetAssign(stmt.name, CompiledBlock(stmt.source, decl_types, stats))
        else:
            return stmt
    elif isinstance(stmt, RunBlock):
        new = RunBlock(
            CompiledBlock(stmt.block, decl_types, stats), assign_to=stmt.assign_to
        )
    elif isinstance(stmt, GlobalAccumUpdate):
        new = GlobalAccumUpdate(stmt.name, stmt.op, compile_expr(stmt.expr, stats))
    elif isinstance(stmt, While):
        new = While(
            compile_expr(stmt.cond, stats),
            [_lower_statement(s, decl_types, stats) for s in stmt.body],
            limit=(
                compile_expr(stmt.limit, stats)
                if stmt.limit is not None
                else None
            ),
        )
        new.governed_cap = stmt.governed_cap
    elif isinstance(stmt, Foreach):
        new = Foreach(
            stmt.var,
            compile_expr(stmt.collection, stats),
            [_lower_statement(s, decl_types, stats) for s in stmt.body],
        )
    elif isinstance(stmt, If):
        new = If(
            compile_expr(stmt.cond, stats),
            [_lower_statement(s, decl_types, stats) for s in stmt.then],
            [_lower_statement(s, decl_types, stats) for s in stmt.otherwise],
        )
    elif isinstance(stmt, Print):
        items: List[Any] = []
        for item in stmt.items:
            if isinstance(item, PrintSetProjection):
                items.append(
                    PrintSetProjection(
                        item.set_name,
                        [
                            PrintItem(compile_expr(c.expr, stats), c.alias)
                            for c in item.columns
                        ],
                    )
                )
            else:
                items.append(
                    PrintItem(compile_expr(item.expr, stats), item.alias)
                )
        new = Print(items)
    elif isinstance(stmt, Return):
        new = Return(compile_expr(stmt.expr, stats))
    else:
        # SetOpAssign, Parameter plumbing, extension statements: nothing
        # expression-heavy to specialize — reuse the original.
        return stmt
    span = getattr(stmt, "span", None)
    if span is not None:
        new.span = span
    return new


def _collect_decl_types(statements: List[Statement]) -> Dict[str, Any]:
    """name -> AccumTypeInfo for every DeclareAccum, recursing into
    control flow (feeds the op-algebra lookup of the map kernel)."""
    out: Dict[str, Any] = {}
    for stmt in statements:
        if isinstance(stmt, DeclareAccum):
            out[stmt.name] = stmt.type_info
        elif isinstance(stmt, While):
            out.update(_collect_decl_types(stmt.body))
        elif isinstance(stmt, Foreach):
            out.update(_collect_decl_types(stmt.body))
        elif isinstance(stmt, If):
            out.update(_collect_decl_types(stmt.then))
            out.update(_collect_decl_types(stmt.otherwise))
    return out


# ----------------------------------------------------------------------
# CompiledQuery
# ----------------------------------------------------------------------

class CompiledQuery:
    """A lowered, directly runnable query plus its provenance.

    ``query`` is the original parsed :class:`~repro.core.query.Query`
    (the analysis target — certificates, cached model, diagnostics);
    ``lowered`` is the specialized clone that actually executes.  The
    epoch captured at compile time makes the plan *stale* as soon as
    ``query.invalidate_analysis()`` runs — the plan cache drops stale
    entries on lookup.
    """

    #: Class-level marker so callers holding "a runnable" (Query or
    #: CompiledQuery) can report which execution path they are on.
    compiled = True

    def __init__(
        self,
        query: Query,
        lowered: Query,
        stats: CompileStats,
        flags: Tuple[str, ...] = (),
        schema=None,
    ):
        self.query = query
        self.lowered = lowered
        self.stats = stats
        self.flags = tuple(flags)
        self.schema = schema
        self.source = query.source
        self._epoch = query._analysis_epoch
        #: Error-severity diagnostics from the service's analyze pass,
        #: stashed on first execution so warm cache hits skip analysis
        #: entirely; None = not yet analyzed.
        self.lint_errors: Optional[List[dict]] = None
        #: "hit" / "miss" / "invalidated" from the last cache lookup
        #: that returned this object (informational; set by the cache).
        self.cache_status: Optional[str] = None

    @property
    def name(self) -> str:
        return self.query.name

    @property
    def params(self):
        return self.query.params

    @property
    def cost_certificate(self):
        """The whole-query cost certificate stamped on the source query
        (consumers re-stamp it with graph statistics; the plan reads
        through so warm cache hits see the freshest bounds)."""
        return self.query.cost_certificate

    def cost_for(self, stats=None):
        """The whole-query cost certificate against ``stats``, estimated
        at most once per statistics fingerprint.

        A warm plan-cache hit whose stamped certificate already carries
        ``stats``' fingerprint returns it without touching the analysis
        layer (zero ``cost.*`` counters — the property the warm-hit test
        pins).  A *different* fingerprint — the graph changed — is an
        automatic invalidation: the stale stamp is replaced by a fresh
        estimate against the new snapshot (the per-model memo keyed by
        fingerprint makes re-stamping with a previously seen snapshot
        free as well).
        """
        fingerprint = None if stats is None else stats.fingerprint
        cert = self.query.cost_certificate
        if cert is not None and cert.stats_fingerprint == fingerprint:
            return cert
        from ..core.tractable import attach_cost_certificates

        attach_cost_certificates(self.query, schema=self.schema, stats=stats)
        return self.query.cost_certificate

    @property
    def stale(self) -> bool:
        return self.query._analysis_epoch != self._epoch

    def run(self, graph, mode=None, tables=None, subqueries=None, **params):
        """Execute the lowered form (same signature as ``Query.run``)."""
        return self.lowered.run(
            graph, mode=mode, tables=tables, subqueries=subqueries, **params
        )

    def report(self) -> dict:
        """Lowering statistics (what got specialized)."""
        doc = self.stats.to_dict()
        doc["flags"] = list(self.flags)
        return doc

    def describe(self) -> str:
        """The compiled-plan summary ``repro explain`` appends."""
        s = self.stats
        lines = [
            f"COMPILED {self.query.name}",
            (
                f"  {s.blocks} block(s) lowered, {s.exprs} expression(s) "
                f"closure-compiled, {s.constants_folded} constant(s) folded, "
                f"{s.conjuncts_dropped} WHERE conjunct(s) dropped"
            ),
            (
                f"  {s.kernels} map kernel(s), {s.combines_preresolved} "
                f"combine(s) pre-resolved from the op-algebra table, "
                f"{s.engines_baked} AUTO engine choice(s) baked"
            ),
        ]
        for entry in s.catalog:
            auto = entry["auto_engine"] or "runtime probe"
            lines.append(f"  BLOCK FROM {entry['pattern']}")
            lines.append(
                f"    pushdown -> {entry['pushdown_vars'] or 'none'}; "
                f"residual conjuncts: {entry['residual_conjuncts']}"
                + (
                    f" ({entry['folded_conjuncts']} folded away)"
                    if entry["folded_conjuncts"]
                    else ""
                )
            )
            lines.append(
                f"    map kernel: {'fused' if entry['map_kernel'] else 'none'}; "
                f"post-accum stmts: {entry['post_accum_statements']}; "
                f"auto tier: {auto}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompiledQuery({self.query.name}, {self.stats.blocks} blocks)"


def compile_query(
    query: Query,
    schema=None,
    flags: Tuple[str, ...] = (),
) -> CompiledQuery:
    """Lower an analyzed query into a :class:`CompiledQuery`.

    Builds (or reuses) the PR 3 analysis model first, so a compiled
    plan's warm executions never re-enter the analysis layer — the
    ``analysis.model_builds`` counter is charged here, at compile time.
    """
    col = _obs._ACTIVE
    span = col.span("compile", label=f"COMPILE {query.name}") if col else None
    try:
        try:
            from ..analysis.model import cached_model

            cached_model(query, schema)
        except Exception:
            # Lowering must not fail because the model builder cannot
            # digest an exotic programmatic query; certificates on the
            # blocks (stamped at parse time) are what lowering consumes.
            pass
        stats = CompileStats()
        decl_types = _collect_decl_types(query.statements)
        lowered_statements = [
            _lower_statement(stmt, decl_types, stats) for stmt in query.statements
        ]
        lowered = Query(
            query.name, lowered_statements, query.params, query.graph_name
        )
        lowered.source = query.source
        lowered.compiled = True
        if col is not None:
            col.count("compile.blocks", stats.blocks)
            col.count("compile.exprs", stats.exprs)
            if stats.constants_folded:
                col.count("compile.constants_folded", stats.constants_folded)
            if stats.conjuncts_dropped:
                col.count("compile.conjuncts_dropped", stats.conjuncts_dropped)
            if stats.combines_preresolved:
                col.count(
                    "compile.combines_preresolved", stats.combines_preresolved
                )
            if stats.engines_baked:
                col.count("compile.engines_baked", stats.engines_baked)
        return CompiledQuery(query, lowered, stats, flags=flags, schema=schema)
    finally:
        if span is not None:
            col.close(span)


def compile_block(block: SelectBlock) -> CompiledBlock:
    """Lower a single programmatic SELECT block (test/tooling helper)."""
    return CompiledBlock(block, {}, CompileStats())


__all__ = [
    "CompiledBlock",
    "CompiledInputBuffer",
    "CompiledQuery",
    "compile_accum_clause",
    "compile_block",
    "compile_query",
]
