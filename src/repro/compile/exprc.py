"""Closure compilation of expression trees.

The interpreter walks an :class:`~repro.core.exprs.Expr` tree per
evaluation: every node re-dispatches through ``eval`` virtual calls,
re-resolves operators from the ``_BINARY_OPS`` table and re-lowercases
function names.  This module lowers a tree **once** into a nest of plain
Python closures — one ``fn(env) -> value`` per node, with operator
functions, guard predicates and branch lists resolved at compile time —
and wraps the result in :class:`CompiledExpr`, an ``Expr`` subclass
whose ``eval`` simply invokes the closure.  Everything that consumes
expressions through ``.eval(env)`` (the pattern matcher's pushed-down
filters, ORDER BY keys, PRINT items, control-flow conditions) accepts a
``CompiledExpr`` unchanged.

Two invariants the compiler keeps, pinned by ``tests/test_compile.py``:

* **Semantic equivalence** — every closure reproduces the interpreter's
  behavior exactly, including evaluation order, NULL guards, error
  wrapping (``QueryRuntimeError`` with the same messages) and the
  late-bound function registry (``register_function`` after compilation
  still takes effect, because the registry probe stays per call — only
  the name normalization and argument closures are hoisted).
* **Analyzability** — ``CompiledExpr.walk()`` yields the original
  subtree, so ``referenced_names`` / ``primed_accum_names`` /
  ``contains_aggregate`` keep working on lowered clauses.

Aggregate-bearing expressions are *not* compiled: the SELECT executor
evaluates them structurally (``_eval_in_group`` folds :class:`AggCall`
nodes over group rows), so :func:`compile_expr` returns them unchanged.

Constant folding is conservative: only ``Binary`` / ``Unary`` /
``CaseExpr`` / ``TupleExpr`` nodes whose operands are all compile-time
constants fold, by evaluating the interpreter's own ``eval`` once at
compile time.  A fold that *raises* is abandoned — the unfolded closure
keeps raising at evaluation time, exactly like the interpreter.  Calls
never fold (UDFs are registerable at runtime) and accumulator/name
references are runtime state by definition.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from ..core.exprs import (
    _BINARY_OPS,
    _FUNCTIONS,
    _run_subquery,
    ArrowExpr,
    AttrRef,
    Binary,
    Call,
    CaseExpr,
    EvalEnv,
    Expr,
    GlobalAccumRef,
    Literal,
    Method,
    NameRef,
    TupleExpr,
    Unary,
    VertexAccumRef,
    contains_aggregate,
)
from ..accum.mapaccum import MapAccum
from ..accum.tuples import TupleValue
from ..errors import QueryRuntimeError
from ..graph.elements import Edge, Vertex
from ..core.values import VertexSet

#: Operators that refuse NULL operands (mirrors ``Binary.eval``).
_NUMERIC_OPS = frozenset(("+", "-", "*", "/", "%", "<", "<=", ">", ">="))


class CompileStats:
    """Mutable tally of what one lowering pass specialized."""

    __slots__ = (
        "exprs",
        "constants_folded",
        "conjuncts_dropped",
        "blocks",
        "kernels",
        "combines_preresolved",
        "engines_baked",
        "catalog",
    )

    def __init__(self) -> None:
        self.exprs = 0
        self.constants_folded = 0
        self.conjuncts_dropped = 0
        self.blocks = 0
        self.kernels = 0
        self.combines_preresolved = 0
        self.engines_baked = 0
        #: Per-block kernel descriptions for ``CompiledQuery.describe()``.
        self.catalog: list = []

    def to_dict(self) -> dict:
        return {
            "exprs": self.exprs,
            "constants_folded": self.constants_folded,
            "conjuncts_dropped": self.conjuncts_dropped,
            "blocks": self.blocks,
            "kernels": self.kernels,
            "combines_preresolved": self.combines_preresolved,
            "engines_baked": self.engines_baked,
        }


class CompiledExpr(Expr):
    """An expression specialized to a closure.

    Drop-in for the interpreter's ``Expr`` wherever only ``.eval`` is
    called; ``walk()`` exposes the *original* subtree so the static
    helpers keep seeing the real node structure.
    """

    __slots__ = ("fn", "original")

    def __init__(self, fn: Callable[[EvalEnv], Any], original: Expr):
        self.fn = fn
        self.original = original
        try:
            self.span = original.span
        except AttributeError:
            pass

    def eval(self, env: EvalEnv) -> Any:
        return self.fn(env)

    def children(self):
        return self.original.children()

    def walk(self):
        yield self
        yield from self.original.walk()

    def __repr__(self) -> str:
        return repr(self.original)


def compile_expr(expr: Expr, stats: Optional[CompileStats] = None) -> Expr:
    """Lower one expression tree; aggregate-bearing trees pass through.

    Returns a :class:`CompiledExpr` (or the input unchanged when it
    contains :class:`AggCall` nodes, which the SELECT executor must fold
    structurally, or when it is already compiled).
    """
    if isinstance(expr, CompiledExpr):
        return expr
    if contains_aggregate(expr):
        return expr
    fn, _ = compile_closure(expr, stats)
    if stats is not None:
        stats.exprs += 1
    return CompiledExpr(fn, expr)


def compile_closure(
    expr: Expr, stats: Optional[CompileStats] = None
) -> Tuple[Callable[[EvalEnv], Any], bool]:
    """``expr -> (fn, is_const)``: the raw closure plus a constness flag.

    ``is_const`` marks subtrees whose value cannot depend on the
    environment; such subtrees are evaluated once here and replaced by a
    constant closure (unless the evaluation raises, in which case the
    dynamic closure is kept so the error keeps surfacing at run time).
    """
    fn, const = _compile(expr)
    if const and not isinstance(expr, Literal):
        try:
            value = fn(_EMPTY_ENV)
        except Exception:
            return fn, False
        if stats is not None:
            stats.constants_folded += 1
        return (lambda env, _v=value: _v), True
    return fn, const


#: Environment handed to compile-time constant folds.  Constant subtrees
#: never touch it; anything that does raises and aborts the fold.
_EMPTY_ENV = EvalEnv(None)  # type: ignore[arg-type]


def _compile(expr: Expr) -> Tuple[Callable[[EvalEnv], Any], bool]:
    if isinstance(expr, CompiledExpr):
        return expr.fn, False
    if isinstance(expr, Literal):
        value = expr.value
        return (lambda env: value), True
    if isinstance(expr, NameRef):
        return _compile_name(expr.name), False
    if isinstance(expr, AttrRef):
        return _compile_attr(expr), False
    if isinstance(expr, GlobalAccumRef):
        return _compile_global_accum(expr), False
    if isinstance(expr, VertexAccumRef):
        return _compile_vertex_accum(expr), False
    if isinstance(expr, Binary):
        return _compile_binary(expr)
    if isinstance(expr, Unary):
        return _compile_unary(expr)
    if isinstance(expr, Call):
        return _compile_call(expr), False
    if isinstance(expr, Method):
        return _compile_method(expr), False
    if isinstance(expr, TupleExpr):
        fns = tuple(_compile(item) for item in expr.items)
        item_fns = tuple(fn for fn, _ in fns)
        const = all(c for _, c in fns)
        return (lambda env: tuple(fn(env) for fn in item_fns)), const
    if isinstance(expr, ArrowExpr):
        key_fns = tuple(_compile(k)[0] for k in expr.keys)
        value_fns = tuple(_compile(v)[0] for v in expr.values)
        return (
            lambda env: (
                tuple(fn(env) for fn in key_fns),
                tuple(fn(env) for fn in value_fns),
            ),
            False,
        )
    if isinstance(expr, CaseExpr):
        return _compile_case(expr)
    # AggCall (eval raises by design) and unknown extension nodes fall
    # back to the interpreter's own bound eval — still usable inside a
    # compiled parent, with interpreter-identical behavior.
    return expr.eval, False


def _compile_name(name: str) -> Callable[[EvalEnv], Any]:
    def run(env: EvalEnv) -> Any:
        if name in env.locals:
            return env.locals[name]
        if name in env.row:
            return env.row[name]
        ctx = env.ctx
        if name in ctx.params:
            return ctx.params[name]
        if name in ctx.vertex_sets:
            return ctx.vertex_sets[name]
        if name in ctx.tables:
            return ctx.tables[name]
        raise QueryRuntimeError(f"unknown name {name!r} in expression")

    return run


def _compile_attr(expr: AttrRef) -> Callable[[EvalEnv], Any]:
    base_fn, _ = _compile(expr.base)
    attr = expr.attr

    def run(env: EvalEnv) -> Any:
        base = base_fn(env)
        if isinstance(base, (Vertex, Edge)):
            if attr in base:
                return base[attr]
            raise QueryRuntimeError(f"{base!r} has no attribute {attr!r}")
        if isinstance(base, TupleValue):
            return base.get(attr)
        if isinstance(base, dict):
            try:
                return base[attr]
            except KeyError:
                raise QueryRuntimeError(f"map has no key {attr!r}") from None
        raise QueryRuntimeError(
            f"cannot read attribute {attr!r} of {type(base).__name__}"
        )

    return run


def _compile_global_accum(expr: GlobalAccumRef) -> Callable[[EvalEnv], Any]:
    name = expr.name
    if expr.primed:
        key = "@@" + name

        def run_primed(env: EvalEnv) -> Any:
            snap = env.primed.get(key)
            if snap is None:
                raise QueryRuntimeError(
                    f"no snapshot for @@{name}' (primed reads are only "
                    f"valid inside a query block)"
                )
            return snap.get(None)

        return run_primed

    def run(env: EvalEnv) -> Any:
        return env.ctx.global_accum(name).value

    return run


def _compile_vertex_accum(expr: VertexAccumRef) -> Callable[[EvalEnv], Any]:
    base_fn, _ = _compile(expr.base)
    name = expr.name
    if expr.primed:

        def run_primed(env: EvalEnv) -> Any:
            vertex = base_fn(env)
            if not isinstance(vertex, Vertex):
                raise QueryRuntimeError(
                    f"@{name} must be read through a vertex variable, "
                    f"got {type(vertex).__name__}"
                )
            snap = env.primed.get(name)
            if snap is None:
                raise QueryRuntimeError(
                    f"no snapshot for @{name}' (the block never "
                    f"captured one)"
                )
            if vertex.vid in snap:
                return snap[vertex.vid]
            return env.ctx.declaration(name).factory().value

        return run_primed

    def run(env: EvalEnv) -> Any:
        vertex = base_fn(env)
        if not isinstance(vertex, Vertex):
            raise QueryRuntimeError(
                f"@{name} must be read through a vertex variable, "
                f"got {type(vertex).__name__}"
            )
        return env.ctx.vertex_accum(name, vertex.vid).value

    return run


def _contains(item: Any, container: Any) -> bool:
    if isinstance(container, VertexSet):
        return item in container
    if isinstance(container, MapAccum):
        return item in container
    try:
        return item in container
    except TypeError:
        raise QueryRuntimeError(
            f"right side of IN is not a collection: {container!r}"
        ) from None


def _compile_binary(expr: Binary) -> Tuple[Callable[[EvalEnv], Any], bool]:
    op = expr.op
    left_fn, left_const = _compile(expr.left)
    right_fn, right_const = _compile(expr.right)
    const = left_const and right_const
    if op == "AND":
        return (lambda env: bool(left_fn(env)) and bool(right_fn(env))), const
    if op == "OR":
        return (lambda env: bool(left_fn(env)) or bool(right_fn(env))), const
    if op == "IN":
        return (lambda env: _contains(left_fn(env), right_fn(env))), const
    if op == "NOT IN":
        return (lambda env: not _contains(left_fn(env), right_fn(env))), const
    fn = _BINARY_OPS.get(op)
    if fn is None:
        def run_unknown(env: EvalEnv) -> Any:
            left_fn(env)
            right_fn(env)
            raise QueryRuntimeError(f"unknown operator {op!r}")

        return run_unknown, False
    if op in _NUMERIC_OPS:
        def run_guarded(env: EvalEnv) -> Any:
            left = left_fn(env)
            right = right_fn(env)
            if left is None or right is None:
                raise QueryRuntimeError(
                    f"operator {op!r} applied to NULL operand "
                    f"({left!r} {op} {right!r})"
                )
            try:
                return fn(left, right)
            except ZeroDivisionError:
                raise QueryRuntimeError(
                    f"division by zero: {left!r} {op} {right!r}"
                ) from None
            except TypeError as exc:
                raise QueryRuntimeError(
                    f"type error in {left!r} {op} {right!r}: {exc}"
                ) from None

        return run_guarded, const

    def run(env: EvalEnv) -> Any:
        left = left_fn(env)
        right = right_fn(env)
        try:
            return fn(left, right)
        except ZeroDivisionError:
            raise QueryRuntimeError(
                f"division by zero: {left!r} {op} {right!r}"
            ) from None
        except TypeError as exc:
            raise QueryRuntimeError(
                f"type error in {left!r} {op} {right!r}: {exc}"
            ) from None

    return run, const


def _compile_unary(expr: Unary) -> Tuple[Callable[[EvalEnv], Any], bool]:
    op = expr.op
    operand_fn, const = _compile(expr.operand)
    if op == "NOT":
        return (lambda env: not bool(operand_fn(env))), const
    if op == "-":
        def run_neg(env: EvalEnv) -> Any:
            value = operand_fn(env)
            if value is None:
                raise QueryRuntimeError("unary minus applied to NULL")
            return -value

        return run_neg, const
    if op == "+":
        return operand_fn, const

    def run_unknown(env: EvalEnv) -> Any:
        operand_fn(env)
        raise QueryRuntimeError(f"unknown unary operator {op!r}")

    return run_unknown, False


def _compile_call(expr: Call) -> Callable[[EvalEnv], Any]:
    # The registry probe stays per call on purpose: register_function()
    # may add or replace UDFs after compilation, and names not in the
    # registry resolve through the context's *runtime* subquery table.
    name = expr.name
    lname = name.lower()
    lookup = _FUNCTIONS.get
    arg_fns = tuple(_compile(arg)[0] for arg in expr.args)

    def run(env: EvalEnv) -> Any:
        fn = lookup(lname)
        values = [f(env) for f in arg_fns]
        if fn is None:
            subquery = env.ctx.subqueries.get(name)
            if subquery is None:
                raise QueryRuntimeError(
                    f"unknown function or subquery {name!r}"
                )
            return _run_subquery(env.ctx, subquery, values)
        try:
            return fn(*values)
        except (ValueError, TypeError) as exc:
            raise QueryRuntimeError(
                f"error in {name}({', '.join(map(repr, values))}): {exc}"
            ) from None

    return run


def _compile_method(expr: Method) -> Callable[[EvalEnv], Any]:
    base_fn, _ = _compile(expr.base)
    arg_fns = tuple(_compile(arg)[0] for arg in expr.args)
    raw_name = expr.name
    name = raw_name.lower()

    def run(env: EvalEnv) -> Any:
        base = base_fn(env)
        args = [f(env) for f in arg_fns]
        if isinstance(base, Vertex):
            if name == "outdegree":
                return env.ctx.graph.outdegree(base.vid, *args)
            if name == "indegree":
                return env.ctx.graph.indegree(base.vid, *args)
            if name == "id":
                return base.vid
            if name == "type":
                return base.type
            raise QueryRuntimeError(f"vertices have no method {raw_name!r}")
        if isinstance(base, Edge) and name == "type":
            return base.type
        if name == "size":
            try:
                return len(base)
            except TypeError:
                raise QueryRuntimeError(
                    f".size() on non-collection {base!r}"
                ) from None
        if name == "contains":
            return args[0] in base
        if name == "get":
            if isinstance(base, dict):
                return base.get(*args)
            raise QueryRuntimeError(f".get() on non-map {base!r}")
        if name == "top":
            items = base if isinstance(base, tuple) else tuple(base)
            return items[0] if items else None
        raise QueryRuntimeError(
            f"unknown method {raw_name!r} on {type(base).__name__}"
        )

    return run


def _compile_case(expr: CaseExpr) -> Tuple[Callable[[EvalEnv], Any], bool]:
    whens = tuple(
        (_compile(cond), _compile(result)) for cond, result in expr.whens
    )
    when_fns = tuple((c[0], r[0]) for c, r in whens)
    const = all(c[1] and r[1] for c, r in whens)
    if expr.default is not None:
        default_fn, default_const = _compile(expr.default)
        const = const and default_const
    else:
        default_fn = None

    def run(env: EvalEnv) -> Any:
        for cond_fn, result_fn in when_fns:
            if cond_fn(env):
                return result_fn(env)
        if default_fn is not None:
            return default_fn(env)
        return None

    return run, const


__all__ = ["CompiledExpr", "CompileStats", "compile_expr", "compile_closure"]
