"""Compiled execution: closure-compiled plans behind an LRU plan cache.

The lowering pass (:mod:`repro.compile.lowering`) turns an analyzed
:class:`~repro.core.query.Query` into a :class:`CompiledQuery` of
specialized closures — compiled expressions, fused ACCUM map kernels
with pre-resolved combines, compile-time filter pushdown, and a baked
``EngineMode.auto()`` tier — semantically identical to the interpreter
and instrumented through the same obs/governor/AccSan checkpoints.
The plan cache (:mod:`repro.compile.cache`) makes repeat executions of
the same text skip parse/analyze/lowering entirely.

See ``docs/compilation.md`` for the pipeline, cache keying rules, the
kernel catalog, and the benchmark-enforced speedup contract.
"""

from .cache import (
    DEFAULT_CAPACITY,
    PlanCache,
    compile_query_text,
    plan_cache,
    reset_plan_cache,
)
from .exprc import CompiledExpr, CompileStats, compile_expr
from .lowering import (
    CompiledBlock,
    CompiledInputBuffer,
    CompiledQuery,
    compile_block,
    compile_query,
)

__all__ = [
    "CompileStats",
    "CompiledBlock",
    "CompiledExpr",
    "CompiledInputBuffer",
    "CompiledQuery",
    "DEFAULT_CAPACITY",
    "PlanCache",
    "compile_block",
    "compile_expr",
    "compile_query",
    "compile_query_text",
    "plan_cache",
    "reset_plan_cache",
]
