"""Bounded, deterministic retry with exponential backoff and jitter.

Retries in a query service must satisfy three properties or they make
outages *worse*:

1. **Bounded** — a hard attempt cap, so a persistent failure converts
   into a terminal structured outcome instead of an infinite loop.
2. **Only on idempotent, transient failures** — the retry matrix in
   :mod:`repro.server.protocol` (:func:`~repro.server.protocol.is_retryable`)
   decides; deterministic verdicts (lint errors, budget breaches,
   E040 parallel-safety refusals, sanitizer violations) are never
   retried because a re-run cannot change them.
3. **Desynchronized** — exponential backoff with jitter, so a thundering
   herd of shed clients does not re-arrive in lockstep.

The jitter here is *seeded and deterministic per (seed, request, attempt)*:
the same request retries on the same schedule every run, which is what
makes the chaos suite able to assert exact retry behaviour.  CPython
seeds :class:`random.Random` from ``sha512`` for string seeds, so the
sequence is stable across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .protocol import OutcomeKind, is_retryable


class RetryPolicy:
    """Exponential backoff with seeded deterministic jitter.

    ``max_attempts``
        Hard cap on total attempts (first try included).  ``1`` disables
        retrying entirely.
    ``base_delay`` / ``multiplier`` / ``max_delay``
        Attempt ``k`` (1-based) backs off ``base_delay * multiplier**(k-1)``
        seconds before attempt ``k+1``, clamped to ``max_delay``.
    ``jitter``
        Fractional spread: the delay is scaled by a factor drawn
        uniformly from ``[1-jitter, 1+jitter]``.
    ``seed``
        Root of the deterministic jitter stream.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed

    def delay(self, request_id: str, attempt: int) -> float:
        """Backoff (seconds) after failed ``attempt`` (1-based).

        Deterministic in ``(seed, request_id, attempt)`` and bounded by
        ``max_delay * (1 + jitter)`` — see the bound asserted in
        ``tests/test_server_retry.py``.
        """
        raw = self.base_delay * (self.multiplier ** (attempt - 1))
        raw = min(raw, self.max_delay)
        if not self.jitter:
            return raw
        rng = random.Random(f"{self.seed}:{request_id}:{attempt}")
        return raw * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    def schedule(self, request_id: str) -> List[float]:
        """The full backoff schedule for one request: the delay after
        each failed attempt that still has a retry left."""
        return [
            self.delay(request_id, attempt)
            for attempt in range(1, self.max_attempts)
        ]

    def should_retry(
        self,
        kind: OutcomeKind,
        attempt: int,
        abort_reason: Optional[str] = None,
    ) -> bool:
        """True when ``attempt`` (1-based) may be followed by another:
        the outcome is in the retryable matrix and the cap has room."""
        if attempt >= self.max_attempts:
            return False
        return is_retryable(kind, abort_reason)

    def retry_after_ms(self, request_id: str, attempt: int) -> int:
        """Client-facing backoff hint (for 429/503 ``Retry-After`` and
        the ``retry_after_ms`` response field), in whole milliseconds."""
        return max(1, int(self.delay(request_id, attempt) * 1000))

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base={self.base_delay}, x{self.multiplier}, "
            f"cap={self.max_delay}, jitter={self.jitter}, seed={self.seed})"
        )


__all__ = ["RetryPolicy"]
