"""The worker pool: isolated pipeline workers, crash detection, drain.

Each worker runs the full existing pipeline per job — parse ->
analyze -> govern -> execute — and replies with a structured outcome
plus its obs-counter snapshot.  Two worker transports share one
dispatch protocol:

``process`` (the production default)
    One ``multiprocessing.Process`` per worker with a duplex pipe.
    Module-global engine bindings (collector / governor / sanitizer)
    are per-process, so workers are fully isolated: a crash kills one
    query, never a sibling, and cross-wiring
    (:class:`~repro.errors.ReentrantActivationError`) is impossible by
    construction.  Crash detection is real: a dead process or an EOF on
    its pipe surfaces as :class:`~repro.errors.WorkerCrashed` and the
    pool respawns a replacement.

``thread`` (deterministic in-process mode, used by tests and chaos)
    One daemon thread per worker.  Because the engine's activation
    bindings are process-global, governed extents serialize on a module
    lock — the activation guard then *proves* no cross-wiring instead
    of assuming it.  "Killing" a thread worker poisons it: the pool
    stops routing to it immediately, discards any stale reply, and the
    thread exits after its current job (queries are read-only, so the
    orphaned execution has no side effects — exactly like an orphaned
    process killed mid-query).

Service-layer fault sites (``server.dispatch``, ``server.worker.crash``,
``server.worker.stall`` — see :mod:`repro.governor.faults`) fire in the
*dispatching* process, so chaos tests drive the real crash-detection,
straggler-kill and drain machinery deterministically under both modes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (
    AccSanViolation,
    GSQLSyntaxError,
    InjectedFault,
    ParallelSafetyError,
    QueryAbortedError,
    QueryCompileError,
    QueryRuntimeError,
    ReproError,
    WorkerCrashed,
)
from ..governor import faults as _faults
from ..governor.budget import Budget
from .protocol import Job, OutcomeKind, jsonify

#: Engine modes a job may request, resolved lazily (mirrors the CLI).
def _engine_mode(name: str):
    from ..core.pattern import EngineMode
    from ..paths import PathSemantics

    table = {
        "counting": EngineMode.counting,
        "auto": EngineMode.auto,
        "nre": lambda: EngineMode.enumeration(PathSemantics.NO_REPEATED_EDGE),
        "nrv": lambda: EngineMode.enumeration(PathSemantics.NO_REPEATED_VERTEX),
        "asp-enum": lambda: EngineMode.enumeration(PathSemantics.ALL_SHORTEST),
    }
    try:
        return table[name]()
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; known: {', '.join(sorted(table))}"
        )


#: Serializes governed extents in thread mode: the module-global
#: collector/governor bindings admit one owning thread at a time (see
#: repro/_activation.py), so thread workers take this lock around the
#: parse->govern->execute extent.  Process workers never touch it.
_ENGINE_LOCK = threading.Lock()


def execute_job(job: Job, graphs: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job through the full pipeline; never raises.

    The reply is a plain dict: ``outcome`` (an
    :class:`~repro.server.protocol.OutcomeKind` value string), a
    kind-specific payload, the query's obs counters and elapsed time.
    """
    from ..analysis import analyze
    from ..gsql import parse_query
    from ..obs.metrics import collect

    started = time.perf_counter()

    def reply(kind: OutcomeKind, counters: Dict[str, int], **payload: Any):
        return {
            "outcome": kind.value,
            "request_id": job.request_id,
            "elapsed_ms": round((time.perf_counter() - started) * 1000, 3),
            "counters": counters,
            **payload,
        }

    graph = graphs.get(job.graph)
    if graph is None:
        return reply(
            OutcomeKind.BAD_REQUEST,
            {},
            error={
                "message": f"unknown graph {job.graph!r}; "
                           f"known: {', '.join(sorted(graphs))}"
            },
        )
    from ..graph.mutation import GraphStore

    if isinstance(graph, GraphStore):
        # The service pinned job.graph_epoch at admission: resolve to
        # that exact version so a batch committing mid-query never
        # changes this query's result.  The pin is held until the
        # request's terminal outcome, so the version is retained.
        from ..errors import MutationError

        try:
            graph = graph.view(job.graph_epoch)
        except MutationError as exc:
            return reply(
                OutcomeKind.INTERNAL, {}, error={"message": str(exc)}
            )
    try:
        mode = _engine_mode(job.engine)
    except ValueError as exc:
        return reply(OutcomeKind.BAD_REQUEST, {}, error={"message": str(exc)})

    from ..governor import ExecutionGovernor, govern

    governor = ExecutionGovernor(Budget(**job.budget)) if job.budget else None
    # The collector opens before the parse/analyze/compile stage so the
    # plan-cache counters (compile.cache.hit/miss, compile.*) land in
    # the reply — a warm hit is visible as compile.cache.hit with zero
    # analysis re-entry.
    with collect() as col:
        # parse + static analysis (the "check" stage): error-severity
        # diagnostics reject the query before any execution work.  With
        # compilation on (the default), both stages run through the plan
        # cache: a warm hit skips them entirely, reusing the stashed
        # analysis verdict.
        try:
            if job.compile:
                from ..compile import plan_cache

                runnable = plan_cache().get_or_compile(
                    job.query_text, schema=getattr(graph, "schema", None)
                )
                if runnable.lint_errors is None:
                    diagnostics = analyze(
                        runnable.query, schema=None, source=job.query_text
                    )
                    runnable.lint_errors = [
                        d.to_dict() for d in diagnostics if d.is_error
                    ]
                diag_errors = runnable.lint_errors
            else:
                runnable = parse_query(job.query_text)
                diagnostics = analyze(
                    runnable, schema=None, source=job.query_text
                )
                diag_errors = [d.to_dict() for d in diagnostics if d.is_error]
        except (GSQLSyntaxError, QueryCompileError) as exc:
            return reply(
                OutcomeKind.LINT_ERROR,
                dict(col.counters),
                error={"message": str(exc), "kind": type(exc).__name__},
            )
        if diag_errors:
            return reply(
                OutcomeKind.LINT_ERROR,
                dict(col.counters),
                error={"message": f"{len(diag_errors)} analysis error(s)"},
                diagnostics=diag_errors,
            )
        try:
            with govern(governor):
                result = runnable.run(graph, mode=mode, **job.params)
        except QueryAbortedError as exc:
            reason = getattr(exc.reason, "value", exc.reason)
            return reply(
                OutcomeKind.ABORTED,
                dict(col.counters),
                abort={
                    "reason": reason,
                    "limit": exc.limit_name,
                    "limit_value": exc.limit_value,
                    "observed": jsonify(exc.observed),
                    "elapsed_seconds": round(exc.elapsed_seconds, 4),
                },
            )
        except AccSanViolation as exc:
            return reply(
                OutcomeKind.SANITIZER,
                dict(col.counters),
                error={
                    "message": str(exc),
                    "accumulator": exc.accumulator,
                    "schedule": exc.schedule,
                },
            )
        except ParallelSafetyError as exc:
            return reply(
                OutcomeKind.PARALLEL_SAFETY,
                dict(col.counters),
                error={"message": str(exc), "status": exc.status},
            )
        except InjectedFault as exc:
            return reply(
                OutcomeKind.FAULT,
                dict(col.counters),
                error={"message": str(exc), "site": exc.site, "hit": exc.hit},
            )
        except (ReproError, TypeError, ValueError) as exc:
            # Engine-surfaced runtime failures stay structured; anything
            # else escapes to the worker loop, which reports INTERNAL.
            if isinstance(exc, QueryRuntimeError) and isinstance(
                exc.__cause__, InjectedFault
            ):
                # A parallel-worker wrapper around an injected fault is
                # still a transient fault, not a query bug.
                cause = exc.__cause__
                return reply(
                    OutcomeKind.FAULT,
                    dict(col.counters),
                    error={
                        "message": str(exc),
                        "site": cause.site,
                        "hit": cause.hit,
                    },
                )
            return reply(
                OutcomeKind.RUNTIME_ERROR,
                dict(col.counters),
                error={"message": str(exc), "kind": type(exc).__name__},
            )
        payload: Dict[str, Any] = {
            "printed": jsonify(result.printed),
            "tables": {
                name: jsonify(table) for name, table in result.tables.items()
            },
        }
        if result.returned is not None:
            payload["returned"] = jsonify(result.returned)
        if governor is not None:
            payload["governor"] = {
                "downgrades": governor.downgrades,
                "soft_stops": governor.soft_stops,
            }
        return reply(OutcomeKind.OK, dict(col.counters), result=payload)


def _reset_worker_globals() -> None:
    """Clear inherited activation state in a forked worker process.

    A fork can capture the parent's module-global bindings (and guard
    ownership held by a parent thread ident that does not exist here);
    a worker must start from a clean, inactive engine.
    """
    from .. import accsan as _accsan
    from ..governor import governor as _gov
    from ..obs import metrics as _obs

    for mod, binding in (
        (_obs, "_ACTIVE"),
        (_gov, "_ACTIVE"),
        (_accsan, "_ACTIVE"),
        (_faults, "_PLAN"),
    ):
        setattr(mod, binding, None)
        guard = getattr(mod, "_GUARD", None)
        if guard is not None:
            guard.reset()
    # The parent's plan cache (and its lock, possibly held mid-fork by a
    # dispatcher thread) must not be inherited: start with a fresh one.
    from ..compile import reset_plan_cache

    reset_plan_cache()


def _process_worker_main(conn, graph_paths: Dict[str, str]) -> None:
    """Entry point of one pool worker process."""
    from ..graph.io import load_graph_json

    _reset_worker_globals()
    graphs = {name: load_graph_json(path) for name, path in graph_paths.items()}
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent died
            return
        if job is None:  # orderly shutdown
            return
        try:
            reply = execute_job(job, graphs)
        except BaseException:  # noqa: BLE001 - worker must answer something
            reply = {
                "outcome": OutcomeKind.INTERNAL.value,
                "request_id": job.request_id,
                "counters": {},
                "error": {"message": traceback.format_exc(limit=4)},
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            return


_worker_ids = itertools.count(1)


class _ProcessWorker:
    """One worker process plus its dispatch pipe."""

    mode = "process"

    def __init__(self, graph_paths: Dict[str, str], ctx=None):
        self._ctx = ctx or multiprocessing.get_context("fork")
        self._graph_paths = graph_paths
        self.name = f"worker-{next(_worker_ids)}"
        parent, child = self._ctx.Pipe(duplex=True)
        self._conn = parent
        self._proc = self._ctx.Process(
            target=_process_worker_main,
            args=(child, graph_paths),
            name=self.name,
            daemon=True,
        )
        self._proc.start()
        child.close()

    def send(self, job: Job) -> None:
        if not self._proc.is_alive():
            raise WorkerCrashed(f"{self.name} is dead", worker=self.name)
        try:
            self._conn.send(job)
        except (BrokenPipeError, OSError):
            raise WorkerCrashed(
                f"{self.name} pipe closed at dispatch", worker=self.name
            )

    def recv(self, timeout: float) -> Dict[str, Any]:
        """Wait for the reply; raises ``WorkerCrashed`` on death and
        ``TimeoutError`` when the worker overruns ``timeout``."""
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"{self.name} exceeded {timeout:.3f}s")
            try:
                if self._conn.poll(min(remaining, 0.05)):
                    return self._conn.recv()
            except (EOFError, OSError):
                raise WorkerCrashed(
                    f"{self.name} died mid-query", worker=self.name
                )
            if not self._proc.is_alive():
                # Drain any reply that raced the death notification.
                try:
                    if self._conn.poll(0):
                        return self._conn.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerCrashed(
                    f"{self.name} died mid-query", worker=self.name
                )

    def kill(self) -> None:
        self._proc.kill()

    def shutdown(self, grace: float) -> None:
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=grace)
        if self._proc.is_alive():  # pragma: no cover - stuck worker
            self._proc.kill()
            self._proc.join(timeout=1.0)
        self._conn.close()

    @property
    def alive(self) -> bool:
        return self._proc.is_alive()


class _ThreadWorker:
    """One worker thread with private in/out queues.

    A poisoned worker is never routed to again; its channel (and any
    stale reply sitting in it) is abandoned with the object, which is
    how a killed process's pipe drains too.
    """

    mode = "thread"

    def __init__(self, graphs: Dict[str, Any]):
        self._graphs = graphs
        self.name = f"worker-{next(_worker_ids)}"
        self._inbox: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._outbox: "queue.Queue[Dict[str, Any]]" = queue.Queue()
        self.poisoned = False
        self._thread = threading.Thread(
            target=self._loop, name=self.name, daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            job = self._inbox.get()
            if job is None or self.poisoned:
                return
            try:
                # Serialize the governed extent: the activation guard
                # admits one owning thread at a time per process.
                with _ENGINE_LOCK:
                    reply = execute_job(job, self._graphs)
            except BaseException:  # noqa: BLE001 - worker must answer
                reply = {
                    "outcome": OutcomeKind.INTERNAL.value,
                    "request_id": job.request_id,
                    "counters": {},
                    "error": {"message": traceback.format_exc(limit=4)},
                }
            self._outbox.put(reply)
            if self.poisoned:
                return

    def send(self, job: Job) -> None:
        if self.poisoned:
            raise WorkerCrashed(f"{self.name} is poisoned", worker=self.name)
        self._inbox.put(job)

    def recv(self, timeout: float) -> Dict[str, Any]:
        deadline = time.monotonic() + max(timeout, 0.0)
        while True:
            # A poisoned worker counts as dead *now*: any reply it still
            # produces is stale and dropped with its channel — the same
            # observable as a SIGKILLed process that never replied.
            if self.poisoned:
                raise WorkerCrashed(
                    f"{self.name} died mid-query", worker=self.name
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"{self.name} exceeded {timeout:.3f}s")
            try:
                return self._outbox.get(timeout=min(remaining, 0.02))
            except queue.Empty:
                continue

    def kill(self) -> None:
        self.poisoned = True
        self._inbox.put(None)  # unblock an idle loop

    def shutdown(self, grace: float) -> None:
        self._inbox.put(None)
        self._thread.join(timeout=grace)
        self.poisoned = True

    @property
    def alive(self) -> bool:
        return not self.poisoned and self._thread.is_alive()


class DispatchResult:
    """What one dispatch attempt produced (for the service's retry loop)."""

    __slots__ = ("kind", "reply", "worker")

    def __init__(
        self,
        kind: OutcomeKind,
        reply: Optional[Dict[str, Any]] = None,
        worker: str = "",
    ):
        self.kind = kind
        self.reply = reply
        self.worker = worker


class WorkerPool:
    """Fixed-size pool with crash detection, respawn and straggler kill.

    ``graphs`` (name -> loaded Graph) backs thread workers; process
    workers load their own copies from ``graph_paths`` (name -> JSON
    path).  Pass whichever the mode needs — the CLI passes both.
    """

    def __init__(
        self,
        size: int = 4,
        mode: str = "thread",
        graphs: Optional[Dict[str, Any]] = None,
        graph_paths: Optional[Dict[str, str]] = None,
    ):
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown pool mode {mode!r}")
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if mode == "process" and not graph_paths:
            raise ValueError("process pool needs graph_paths")
        if mode == "thread" and graphs is None:
            raise ValueError("thread pool needs loaded graphs")
        self.size = size
        self.mode = mode
        self._graphs = graphs or {}
        self._graph_paths = graph_paths or {}
        self._idle: "queue.Queue[Any]" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self.crashes = 0
        self.respawns = 0
        self.stragglers = 0
        self._workers: List[Any] = []
        for _ in range(size):
            worker = self._spawn()
            self._workers.append(worker)
            self._idle.put(worker)

    def _spawn(self):
        if self.mode == "process":
            return _ProcessWorker(self._graph_paths)
        return _ThreadWorker(self._graphs)

    def _replace(self, dead) -> None:
        """Respawn a crashed/straggling worker and return the fresh one
        to the idle set; the dead worker's channel drains with it."""
        with self._lock:
            if self._closed:
                return
            try:
                self._workers.remove(dead)
            except ValueError:  # pragma: no cover - already replaced
                pass
            fresh = self._spawn()
            self._workers.append(fresh)
            self.respawns += 1
        self._idle.put(fresh)

    # -- dispatch ------------------------------------------------------
    def dispatch(self, job: Job, queue_wait: float, run_wait: float) -> DispatchResult:
        """Run ``job`` on the next idle worker.

        ``queue_wait`` bounds the wait for an idle worker (the in-queue
        part of the request's deadline); ``run_wait`` bounds the wait
        for the worker's reply.  Never raises: every failure mode maps
        to a :class:`DispatchResult` the service turns into a terminal
        outcome or a retry.
        """
        try:
            worker = self._idle.get(timeout=max(queue_wait, 0.0))
        except queue.Empty:
            return DispatchResult(OutcomeKind.DEADLINE_AT_DISPATCH)
        if self._closed:
            self._idle.put(worker)
            return DispatchResult(OutcomeKind.SHED_DRAINING)
        if not worker.alive:
            # Found a corpse in the idle set (crashed between jobs):
            # replace it and account the crash, then report for retry.
            self.crashes += 1
            self._replace(worker)
            return DispatchResult(
                OutcomeKind.WORKER_CRASHED, worker=worker.name
            )

        # server.dispatch: deadline treated as expired at dispatch time.
        if _faults._PLAN is not None:
            try:
                _faults.fire("server.dispatch")
            except InjectedFault:
                self._idle.put(worker)
                return DispatchResult(OutcomeKind.DEADLINE_AT_DISPATCH)

        try:
            worker.send(job)
        except WorkerCrashed:
            self.crashes += 1
            self._replace(worker)
            return DispatchResult(
                OutcomeKind.WORKER_CRASHED, worker=worker.name
            )

        # server.worker.crash: kill the worker mid-query — the genuine
        # crash-detection path (pipe EOF / dead process) runs next.
        killed = False
        if _faults._PLAN is not None:
            try:
                _faults.fire("server.worker.crash")
            except InjectedFault:
                worker.kill()
                killed = True
            # server.worker.stall: stop waiting for this worker — the
            # straggler path (kill + replace + drain) runs with no
            # actual sleeping, which keeps chaos runs fast.
            try:
                _faults.fire("server.worker.stall")
            except InjectedFault:
                run_wait = 0.0

        try:
            reply = worker.recv(timeout=run_wait)
            if killed:
                # The reply raced the kill out of the pipe; a killed
                # worker's output is stale by definition — drop it so
                # chaos outcomes stay deterministic.
                raise WorkerCrashed(
                    f"{worker.name} killed mid-query", worker=worker.name
                )
        except WorkerCrashed:
            self.crashes += 1
            self._replace(worker)
            return DispatchResult(
                OutcomeKind.WORKER_CRASHED, worker=worker.name
            )
        except TimeoutError:
            self.stragglers += 1
            worker.kill()
            self._replace(worker)
            return DispatchResult(OutcomeKind.STRAGGLER, worker=worker.name)
        self._idle.put(worker)
        return DispatchResult(OutcomeKind.OK, reply=reply, worker=worker.name)

    # -- lifecycle -----------------------------------------------------
    def shutdown(self, grace: float = 5.0) -> None:
        """Stop the pool: drain idle workers, then stop the rest.

        In-flight jobs get ``grace`` seconds to finish; stragglers are
        killed.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        deadline = time.monotonic() + grace
        for worker in workers:
            worker.shutdown(grace=max(deadline - time.monotonic(), 0.1))

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            alive = sum(1 for w in self._workers if w.alive)
        return {
            "size": self.size,
            "mode": self.mode,
            "alive": alive,
            "crashes": self.crashes,
            "respawns": self.respawns,
            "stragglers": self.stragglers,
        }


__all__ = [
    "execute_job",
    "WorkerPool",
    "DispatchResult",
]
