"""The query service: admission -> dispatch -> bounded retry -> outcome.

:class:`QueryService` is the transport-independent core of ``repro
serve``: the asyncio HTTP layer (:mod:`repro.server.app`) is a thin
codec around :meth:`QueryService.submit`, and the test/chaos suites
drive ``submit`` directly — every robustness property is asserted
below the socket.

The service owns a private :class:`~repro.obs.metrics.Collector` that is
**never activated** (no module-global rebinding): service counters are
charged with explicit ``.count()`` calls, and each worker's per-query
counter snapshot is merged in on completion.  That keeps the service
entirely outside the engine's single-owner activation discipline — the
guard from :mod:`repro._activation` protects the workers; the service
needs no guard because it never touches the shared bindings.

Invariant the acceptance smoke pins: **every submitted request reaches
exactly one terminal outcome** — counted in ``server.requests`` and in
exactly one ``server.outcome.<kind>`` counter, so the totals reconcile.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from typing import Any, Dict, Optional, Tuple

from ..errors import InjectedFault, MutationConflictError, MutationError
from ..graph.mutation import GraphStore, MutationBatch
from ..obs.metrics import Collector
from .admission import AdmissionController, BudgetClass, Ticket
from .pool import WorkerPool
from .protocol import IngestRequest, Job, OutcomeKind, QueryRequest, outcome
from .retry import RetryPolicy


class QueryService:
    """Fault-tolerant execution of client queries over a worker pool.

    ``submit`` is thread-safe and blocking: the HTTP layer calls it from
    an executor thread per request.  Construction loads nothing — the
    pool spawns immediately, so build the service once per process.
    """

    def __init__(
        self,
        graphs: Optional[Dict[str, Any]] = None,
        graph_paths: Optional[Dict[str, str]] = None,
        pool_size: int = 4,
        pool_mode: str = "thread",
        classes: Optional[Dict[str, BudgetClass]] = None,
        max_queue_depth: int = 16,
        max_tenant_inflight: int = 8,
        retry: Optional[RetryPolicy] = None,
        clock=time.monotonic,
        sleep=time.sleep,
        compile_enabled: bool = True,
        cost_screen_enabled: bool = True,
        wal_dir: Optional[str] = None,
        wal_fsync: bool = True,
    ):
        self.admission = AdmissionController(
            classes=classes,
            max_queue_depth=max_queue_depth,
            max_tenant_inflight=max_tenant_inflight,
            clock=clock,
        )
        # Every loaded graph is managed through a GraphStore so ingest
        # and snapshot isolation work uniformly: with ``wal_dir`` the
        # store is durable (``<wal_dir>/<name>`` is recovered first and
        # every committed batch hits the log); without it, batches are
        # atomic and isolated but in-memory only.  Thread workers share
        # the stores, so committed epochs become queryable immediately;
        # process workers snapshot their graphs from ``graph_paths`` at
        # spawn and serve that version until restarted.
        self._stores: Dict[str, GraphStore] = {}
        managed: Optional[Dict[str, Any]] = None
        base_graphs = dict(graphs) if graphs else {}
        if wal_dir is not None and not base_graphs and graph_paths:
            from ..graph.io import load_graph_json

            base_graphs = {
                name: load_graph_json(path)
                for name, path in graph_paths.items()
            }
        if base_graphs:
            managed = {}
            for name, graph in base_graphs.items():
                if isinstance(graph, GraphStore):
                    store = graph
                elif wal_dir is not None:
                    store = GraphStore.open(
                        os.path.join(wal_dir, name),
                        base=graph,
                        fsync=wal_fsync,
                    )
                else:
                    store = GraphStore(graph)
                self._stores[name] = store
                managed[name] = store
        self.pool = WorkerPool(
            size=pool_size,
            mode=pool_mode,
            graphs=managed if managed is not None else graphs,
            graph_paths=graph_paths,
        )
        self.retry = retry if retry is not None else RetryPolicy()
        #: Service-wide master switch for the worker-side plan cache +
        #: compiled execution (``repro serve --no-compile`` clears it);
        #: per-request ``"compile": false`` still opts out individually.
        self.compile_enabled = compile_enabled
        #: Static cost screen: before dispatching, predict the query's
        #: cost against its graph's statistics and refuse requests whose
        #: *provable* upper bound already exceeds the class budget
        #: (``repro serve --no-cost-screen`` clears it).
        self.cost_screen_enabled = cost_screen_enabled
        self._graphs: Dict[str, Any] = dict(managed) if managed else {}
        self._graph_paths = dict(graph_paths) if graph_paths else {}
        # Statistics cache keyed by (graph name, epoch): a committed
        # batch bumps the epoch, so the cost screen re-derives stats for
        # the new version instead of screening against stale counts.
        self._stats_cache: Dict[Tuple[str, int], Any] = {}
        self._stats_lock = threading.Lock()
        self._clock = clock
        self._sleep = sleep
        self._draining = False
        self._closed = False
        self._lock = threading.Lock()
        # Private, never-activated collector: explicit .count() only.
        self.collector = Collector()
        self.started_at = clock()

    # -- lifecycle -----------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> None:
        """Stop admitting; running requests finish.  Idempotent."""
        self._draining = True

    def shutdown(self, grace: float = 5.0) -> None:
        """Drain, then stop the pool (bounded by ``grace``)."""
        self.drain()
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.pool.shutdown(grace=grace)
        for store in self._stores.values():
            store.close()

    def healthz(self) -> Dict[str, Any]:
        status = "draining" if self._draining else "ok"
        return {
            "status": status,
            "uptime_seconds": round(self._clock() - self.started_at, 3),
            "workers_alive": self.pool.stats()["alive"],
        }

    # -- the request lifecycle -----------------------------------------
    def submit(self, request: QueryRequest) -> Dict[str, Any]:
        """Run one request to its terminal outcome.  Never raises."""
        if not request.request_id:
            request = request._replace(request_id=uuid.uuid4().hex[:12])
        self.collector.count("server.requests")
        self.collector.count(f"server.class.{request.budget_class}.requests")

        try:
            ticket, shed = self.admission.try_admit(
                request, draining=self._draining
            )
        except KeyError as exc:
            return self._finish(
                request,
                outcome(
                    OutcomeKind.BAD_REQUEST,
                    request_id=request.request_id,
                    error={"message": str(exc.args[0])},
                ),
            )
        if shed is not None:
            self.collector.count("server.shed")
            return self._finish(
                request,
                outcome(
                    shed,
                    request_id=request.request_id,
                    retry_after_ms=self.retry.retry_after_ms(
                        request.request_id, 1
                    ),
                ),
            )
        try:
            return self._finish(request, self._run_admitted(request, ticket))
        except BaseException:  # noqa: BLE001 - submit must not raise
            self.admission.release(ticket, dispatched=True)
            self.collector.count("server.internal_errors")
            import traceback

            return self._finish(
                request,
                outcome(
                    OutcomeKind.INTERNAL,
                    request_id=request.request_id,
                    error={"message": traceback.format_exc(limit=4)},
                ),
            )

    # -- the mutation path ---------------------------------------------
    def ingest(self, request: IngestRequest) -> Dict[str, Any]:
        """Run one mutation batch to its terminal outcome.  Never raises.

        Ingest rides the same admission control, deadline and retry
        machinery as queries: sheds are 429/503 with ``Retry-After``, a
        transient write-path fault (anything before the WAL sync —
        nothing applied, nothing logged) is retried within the deadline,
        and a batch the graph's current state rejects is a terminal,
        non-retryable :data:`~repro.server.protocol.OutcomeKind.CONFLICT`
        (HTTP 409) — resubmitting it unchanged conflicts again.
        """
        if not request.request_id:
            request = request._replace(request_id=uuid.uuid4().hex[:12])
        self.collector.count("server.requests")
        self.collector.count(f"server.class.{request.budget_class}.requests")
        try:
            ticket, shed = self.admission.try_admit(
                request, draining=self._draining
            )
        except KeyError as exc:
            return self._finish(
                request,
                outcome(
                    OutcomeKind.BAD_REQUEST,
                    request_id=request.request_id,
                    error={"message": str(exc.args[0])},
                ),
            )
        if shed is not None:
            self.collector.count("server.shed")
            return self._finish(
                request,
                outcome(
                    shed,
                    request_id=request.request_id,
                    retry_after_ms=self.retry.retry_after_ms(
                        request.request_id, 1
                    ),
                ),
            )
        try:
            return self._finish(request, self._apply_admitted(request, ticket))
        except BaseException:  # noqa: BLE001 - ingest must not raise
            self.admission.release(ticket, dispatched=True)
            self.collector.count("server.internal_errors")
            import traceback

            return self._finish(
                request,
                outcome(
                    OutcomeKind.INTERNAL,
                    request_id=request.request_id,
                    error={"message": traceback.format_exc(limit=4)},
                ),
            )

    def _apply_admitted(
        self, request: IngestRequest, ticket: Ticket
    ) -> Dict[str, Any]:
        """The commit/retry loop for an admitted ingest request."""
        dispatched = False
        attempt = 0
        try:
            store = self._stores.get(request.graph)
            if store is None:
                return outcome(
                    OutcomeKind.BAD_REQUEST,
                    request_id=request.request_id,
                    error={
                        "message": f"unknown or immutable graph "
                                   f"{request.graph!r}; mutable graphs: "
                                   f"{', '.join(sorted(self._stores)) or 'none'}"
                    },
                )
            try:
                batch = MutationBatch.from_ops(request.ops)
            except (ValueError, TypeError) as exc:
                return outcome(
                    OutcomeKind.BAD_REQUEST,
                    request_id=request.request_id,
                    error={"message": str(exc)},
                )
            while True:
                attempt += 1
                remaining = ticket.remaining(self._clock())
                if remaining <= 0:
                    self.collector.count("server.deadline_at_dispatch")
                    return outcome(
                        OutcomeKind.DEADLINE_AT_DISPATCH,
                        request_id=request.request_id,
                        attempts=attempt,
                        deadline_seconds=ticket.deadline_seconds,
                    )
                if not dispatched:
                    self.admission.note_dispatched(ticket)
                    dispatched = True
                try:
                    result = store.apply(batch)
                except MutationConflictError as exc:
                    self.collector.count("server.ingest.conflicts")
                    return outcome(
                        OutcomeKind.CONFLICT,
                        request_id=request.request_id,
                        attempts=attempt,
                        error={
                            "message": str(exc),
                            "op_index": exc.index,
                            "op": exc.op,
                        },
                    )
                except MutationError as exc:
                    # The store is poisoned (a crash landed between WAL
                    # commit and publish): only recovery can help, so
                    # retrying here would be lying to the client.
                    return outcome(
                        OutcomeKind.INTERNAL,
                        request_id=request.request_id,
                        attempts=attempt,
                        error={"message": str(exc)},
                    )
                except InjectedFault as exc:
                    # A fault before the WAL sync is transient: the
                    # batch never happened (log and memory unchanged),
                    # so a retry is safe.  A post-sync fault poisons the
                    # store and the next attempt reports INTERNAL above.
                    last_doc = outcome(
                        OutcomeKind.FAULT,
                        request_id=request.request_id,
                        attempts=attempt,
                        error={
                            "message": str(exc),
                            "site": exc.site,
                            "hit": exc.hit,
                        },
                    )
                    if not self.retry.should_retry(OutcomeKind.FAULT, attempt):
                        return last_doc
                    delay = self.retry.delay(request.request_id, attempt)
                    if delay >= ticket.remaining(self._clock()):
                        return last_doc
                    self.collector.count("server.retries")
                    self._sleep(delay)
                    continue
                self.collector.count("server.ingest.batches")
                self.collector.count("server.ingest.ops", result.ops)
                return outcome(
                    OutcomeKind.OK,
                    request_id=request.request_id,
                    attempts=attempt,
                    ingest={
                        "graph": request.graph,
                        "epoch": result.epoch,
                        "ops": result.ops,
                        "durable": result.durable,
                    },
                )
        finally:
            self.admission.release(ticket, dispatched=dispatched)

    # -- the static cost screen ----------------------------------------
    def _graph_stats(self, name: str):
        """Lazily computed :class:`~repro.graph.stats.GraphStatsSnapshot`
        per ``(graph name, epoch)`` (cached; ``None`` when the graph is
        unknown or statistics cannot be gathered).  A committed mutation
        batch bumps the epoch, which both misses the cache and evicts
        the superseded entry — the screen never reads stale statistics."""
        store = self._stores.get(name)
        graph = store.live if store is not None else self._graphs.get(name)
        epoch = getattr(graph, "epoch", 0) if graph is not None else 0
        key = (name, epoch)
        with self._stats_lock:
            if key in self._stats_cache:
                return self._stats_cache[key]
        stats = None
        try:
            from ..graph.stats import stats_snapshot

            if graph is None and name in self._graph_paths:
                from ..graph.io import load_graph_json

                graph = load_graph_json(self._graph_paths[name])
            if graph is not None:
                stats = stats_snapshot(graph)
        except Exception:  # noqa: BLE001 - screen is best-effort
            stats = None
        with self._stats_lock:
            for stale in [
                k for k in self._stats_cache if k[0] == name and k != key
            ]:
                del self._stats_cache[stale]
            self._stats_cache[key] = stats
        return stats

    def _cost_screen(
        self, request: QueryRequest, ticket: Ticket
    ) -> Optional[Dict[str, Any]]:
        """Refuse a request whose *predicted* cost provably exceeds its
        budget class — before it ever reaches the pool.

        The screen is sound-by-construction and therefore conservative:
        it only rejects when a **finite** certificate upper bound beats a
        configured cap (:func:`~repro.analysis.cost.budget_breaches`).
        Anything that prevents prediction — unknown graph, parse error,
        missing statistics — skips the screen and lets the worker (which
        owns those diagnostics) produce the terminal outcome.
        """
        cls = ticket.budget_class
        if not self.cost_screen_enabled or not cls.budget:
            return None
        stats = self._graph_stats(request.graph)
        if stats is None:
            return None
        try:
            from ..analysis.cost import budget_breaches

            if self.compile_enabled and request.compile:
                # Warm path: the plan cache stashes the certificate per
                # statistics fingerprint, so repeat traffic screens
                # without re-parsing or re-estimating.
                from ..compile import compile_query_text

                cert = compile_query_text(request.query_text).cost_for(stats)
            else:
                from ..core.tractable import attach_cost_certificates
                from ..gsql import parse_query

                query = parse_query(request.query_text)
                attach_cost_certificates(query, stats=stats)
                cert = query.cost_certificate
        except Exception:  # noqa: BLE001 - worker owns parse diagnostics
            return None
        if cert is None:
            return None
        self.collector.count("server.cost.screened")
        breaches = budget_breaches(cert, cls.budget, engine=request.engine)
        if not breaches:
            return None
        self.collector.count("server.cost.rejections")
        return outcome(
            OutcomeKind.PREDICTED_OVER_BUDGET,
            request_id=request.request_id,
            budget_class=cls.name,
            predicted={
                "confidence": cert.confidence.value,
                "breaches": [
                    {"metric": metric, "predicted_max": hi, "cap": cap}
                    for metric, hi, cap in breaches
                ],
            },
            certificate=cert.to_dict(),
        )

    def _run_admitted(
        self, request: QueryRequest, ticket: Ticket
    ) -> Dict[str, Any]:
        """The dispatch/retry loop for an admitted request."""
        cls = ticket.budget_class
        budget = dict(cls.budget)
        budget["deadline_seconds"] = ticket.deadline_seconds
        dispatched = False
        attempt = 0
        # Pin the graph's epoch for the whole request (retries
        # included): every attempt runs against this exact version, so
        # batches committing mid-request never change the result.
        store = self._stores.get(request.graph)
        pin = store.pin() if store is not None else None
        try:
            refused = self._cost_screen(request, ticket)
            if refused is not None:
                return refused
            while True:
                attempt += 1
                remaining = ticket.remaining(self._clock())
                if remaining <= 0:
                    self.collector.count("server.deadline_at_dispatch")
                    return outcome(
                        OutcomeKind.DEADLINE_AT_DISPATCH,
                        request_id=request.request_id,
                        attempts=attempt,
                        deadline_seconds=ticket.deadline_seconds,
                    )
                job = Job(
                    request_id=request.request_id,
                    query_text=request.query_text,
                    graph=request.graph,
                    params=dict(request.params),
                    engine=request.engine,
                    budget=dict(
                        budget, deadline_seconds=max(remaining, 0.001)
                    ),
                    attempt=attempt,
                    compile=request.compile and self.compile_enabled,
                    graph_epoch=pin.epoch if pin is not None else None,
                )
                if not dispatched:
                    self.admission.note_dispatched(ticket)
                    dispatched = True
                result = self.pool.dispatch(
                    job, queue_wait=remaining, run_wait=remaining
                )
                if result.kind is OutcomeKind.OK:
                    return self._from_reply(
                        request, result.reply, attempts=attempt
                    )
                # A dispatch-layer failure: crashed / straggler /
                # deadline-at-dispatch / draining.
                last_doc = outcome(
                    result.kind,
                    request_id=request.request_id,
                    attempts=attempt,
                    worker=result.worker or None,
                )
                if result.kind is OutcomeKind.WORKER_CRASHED:
                    self.collector.count("server.worker_crashes")
                elif result.kind is OutcomeKind.STRAGGLER:
                    self.collector.count("server.stragglers")
                elif result.kind is OutcomeKind.DEADLINE_AT_DISPATCH:
                    self.collector.count("server.deadline_at_dispatch")
                if not self.retry.should_retry(result.kind, attempt):
                    return last_doc
                delay = self.retry.delay(request.request_id, attempt)
                if delay >= ticket.remaining(self._clock()):
                    # No budget left to back off and run again.
                    return last_doc
                self.collector.count("server.retries")
                self._sleep(delay)
        finally:
            if pin is not None:
                pin.release()
            self.admission.release(ticket, dispatched=dispatched)

    def _from_reply(
        self, request: QueryRequest, reply: Dict[str, Any], attempts: int
    ) -> Dict[str, Any]:
        """Convert a worker reply into the terminal outcome document,
        merging the worker's counters into the service collector."""
        for name, value in (reply.get("counters") or {}).items():
            self.collector.count(name, value)
        kind = OutcomeKind(reply["outcome"])
        payload = {
            k: v
            for k, v in reply.items()
            if k not in ("outcome", "request_id", "counters")
        }
        doc = outcome(
            kind,
            request_id=request.request_id,
            attempts=attempts,
            **payload,
        )
        if doc["retryable"] and attempts < self.retry.max_attempts:
            doc["retry_after_ms"] = self.retry.retry_after_ms(
                request.request_id, attempts
            )
        return doc

    def _finish(
        self, request: QueryRequest, doc: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Account the terminal outcome (exactly once per request)."""
        self.collector.count(f"server.outcome.{doc['outcome']}")
        return doc

    # -- metrics -------------------------------------------------------
    def metrics_dict(self) -> Dict[str, Any]:
        """The ``/metrics`` document: merged counters plus gauges."""
        return {
            "counters": dict(sorted(self.collector.counters.items())),
            "admission": self.admission.snapshot(),
            "pool": self.pool.stats(),
            "retry": self.retry.to_dict(),
            "draining": self._draining,
            "graphs": {
                name: {
                    "epoch": store.epoch,
                    "durable": store.durable,
                    "poisoned": store.poisoned is not None,
                }
                for name, store in sorted(self._stores.items())
            },
        }


__all__ = ["QueryService"]
