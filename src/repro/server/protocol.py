"""Request/outcome shapes shared by the query service's layers.

Everything that crosses a boundary — HTTP handler to admission
controller, dispatcher to worker process, service back to client — is
expressed here as plain dict/namedtuple data so the process pool can
pickle it and the HTTP layer can JSON it without translation glue.

The **outcome taxonomy** is the service's abort contract: every request
terminates in exactly one :class:`OutcomeKind`, each kind maps to one
HTTP status (:data:`HTTP_STATUS`) and one retryability verdict
(:func:`is_retryable`).  ``docs/robustness.md`` carries the same table;
``benchmarks/check_server_overhead.py`` pins it against the committed
baseline so it cannot drift silently.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, NamedTuple, Optional

from ..governor.budget import AbortReason


class OutcomeKind(enum.Enum):
    """Every terminal state a service request can reach."""

    # Terminal results after dispatch.
    OK = "ok"
    LINT_ERROR = "lint-error"            # parse/compile/analysis error
    RUNTIME_ERROR = "runtime-error"      # engine QueryRuntimeError
    ABORTED = "aborted"                  # governor budget/deadline abort
    PARALLEL_SAFETY = "parallel-safety"  # E040-class certificate refusal
    SANITIZER = "sanitizer-violation"    # AccSan caught a wrong certificate
    FAULT = "injected-fault"             # engine-site chaos fault surfaced
    WORKER_CRASHED = "worker-crashed"    # worker died; retries exhausted
    STRAGGLER = "straggler-timeout"      # worker exceeded its deadline
    DEADLINE_AT_DISPATCH = "deadline-at-dispatch"  # expired in the queue
    # Admission-control outcomes (never dispatched).
    SHED_QUEUE_FULL = "shed-queue-full"
    SHED_CLASS_LIMIT = "shed-class-limit"
    SHED_TENANT_LIMIT = "shed-tenant-limit"
    SHED_DRAINING = "shed-draining"
    #: Static cost screen: the query's predicted cost (CostCertificate
    #: upper bound) exceeds its budget class's caps.  Not retryable —
    #: resubmitting the same query to the same class predicts the same
    #: breach; the client must pick a roomier class or change the query.
    PREDICTED_OVER_BUDGET = "predicted-over-budget"
    #: Mutation-path rejection (``POST /ingest``): the batch conflicts
    #: with the graph's current state — deleting something that does not
    #: exist, changing a vertex's type, a schema violation.  Not
    #: retryable as-is: the batch was rejected atomically (nothing
    #: applied, nothing logged), and resubmitting it unchanged conflicts
    #: again; the client must correct the batch.
    CONFLICT = "conflict"
    # Protocol-level failures.
    BAD_REQUEST = "bad-request"
    INTERNAL = "internal-error"


#: OutcomeKind -> HTTP status code.
HTTP_STATUS: Dict[OutcomeKind, int] = {
    OutcomeKind.OK: 200,
    OutcomeKind.BAD_REQUEST: 400,
    OutcomeKind.LINT_ERROR: 400,
    OutcomeKind.RUNTIME_ERROR: 422,
    OutcomeKind.ABORTED: 422,            # deadline aborts override to 504
    OutcomeKind.PARALLEL_SAFETY: 422,
    OutcomeKind.SANITIZER: 500,
    OutcomeKind.FAULT: 500,
    OutcomeKind.WORKER_CRASHED: 502,
    OutcomeKind.STRAGGLER: 504,
    OutcomeKind.DEADLINE_AT_DISPATCH: 504,
    OutcomeKind.SHED_QUEUE_FULL: 429,
    OutcomeKind.SHED_CLASS_LIMIT: 429,
    OutcomeKind.SHED_TENANT_LIMIT: 429,
    OutcomeKind.SHED_DRAINING: 503,
    OutcomeKind.PREDICTED_OVER_BUDGET: 422,
    OutcomeKind.CONFLICT: 409,
    OutcomeKind.INTERNAL: 500,
}

#: Outcomes a client (or the dispatcher, for crashes) may retry: the
#: failure is *transient* — caused by load or infrastructure, not by the
#: query — and queries are read-only, so a re-run is idempotent.
RETRYABLE_OUTCOMES = frozenset({
    OutcomeKind.WORKER_CRASHED,
    OutcomeKind.STRAGGLER,
    OutcomeKind.DEADLINE_AT_DISPATCH,
    OutcomeKind.FAULT,
    OutcomeKind.SHED_QUEUE_FULL,
    OutcomeKind.SHED_CLASS_LIMIT,
    OutcomeKind.SHED_TENANT_LIMIT,
    OutcomeKind.SHED_DRAINING,
})

#: Governor abort reasons that are transient (load-induced) rather than
#: deterministic.  A paths/acc-executions/memory breach will recur on
#: every retry with the same budget — never retried; a deadline abort
#: or an injected fault may not.
RETRYABLE_ABORT_REASONS = frozenset({
    AbortReason.DEADLINE.value,
    AbortReason.FAULT.value,
})


def is_retryable(kind: OutcomeKind, abort_reason: Optional[str] = None) -> bool:
    """The retry matrix: may this outcome be retried at all?

    ``abort_reason`` refines ``ABORTED`` outcomes (the
    :class:`~repro.governor.AbortReason` value string).  Analysis
    errors, sanitizer violations and parallel-safety refusals are never
    retryable — rerunning cannot change a static verdict.
    """
    if kind is OutcomeKind.ABORTED:
        return abort_reason in RETRYABLE_ABORT_REASONS
    return kind in RETRYABLE_OUTCOMES


class QueryRequest(NamedTuple):
    """One client request, normalized by the HTTP layer (or a test)."""

    query_text: str
    graph: str = "default"
    params: Dict[str, Any] = {}
    tenant: str = "anonymous"
    budget_class: str = "interactive"
    deadline_seconds: Optional[float] = None
    engine: str = "counting"
    request_id: str = ""
    #: False opts this request out of the worker-side plan cache +
    #: compiled execution (the ``--no-compile`` escape hatch).
    compile: bool = True


class Job(NamedTuple):
    """One unit of work shipped to a pool worker (must pickle)."""

    request_id: str
    query_text: str
    graph: str
    params: Dict[str, Any]
    engine: str
    budget: Dict[str, Any]
    attempt: int = 1
    compile: bool = True
    #: The epoch pinned at admission when the graph lives in a
    #: :class:`~repro.graph.mutation.GraphStore`: the worker runs
    #: against exactly this version, so a batch committing mid-query
    #: never changes the query's result (snapshot isolation).  ``None``
    #: means "the live version" (plain graphs, process workers).
    graph_epoch: Optional[int] = None


class IngestRequest(NamedTuple):
    """One mutation-batch request (``POST /ingest``), normalized by the
    HTTP layer (or a test).  ``ops`` holds the operation documents of a
    :class:`~repro.graph.mutation.MutationBatch`."""

    ops: Any
    graph: str = "default"
    tenant: str = "anonymous"
    budget_class: str = "interactive"
    deadline_seconds: Optional[float] = None
    request_id: str = ""


def outcome(
    kind: OutcomeKind,
    request_id: str = "",
    attempts: int = 1,
    retry_after_ms: Optional[int] = None,
    **payload: Any,
) -> Dict[str, Any]:
    """Build the terminal response document for one request.

    The same dict is the HTTP response body (JSON) and the return value
    of :meth:`repro.server.service.QueryService.submit`, so tests and
    clients read one shape.
    """
    doc: Dict[str, Any] = {
        "outcome": kind.value,
        "request_id": request_id,
        "attempts": attempts,
        "retryable": is_retryable(
            kind, (payload.get("abort") or {}).get("reason")
        ),
        "http_status": http_status(kind, payload.get("abort")),
    }
    if retry_after_ms is not None:
        doc["retry_after_ms"] = retry_after_ms
    doc.update(payload)
    return doc


def http_status(kind: OutcomeKind, abort: Optional[Dict[str, Any]] = None) -> int:
    """HTTP status for an outcome; deadline aborts read as 504."""
    if kind is OutcomeKind.ABORTED and abort is not None:
        if abort.get("reason") == AbortReason.DEADLINE.value:
            return 504
    return HTTP_STATUS[kind]


def jsonify(value: Any) -> Any:
    """Best-effort JSON shaping for engine values.

    Tables become ``{"columns": [...], "rows": [[...]]}``, vertices
    their ``name`` attribute (falling back to the vid), containers
    recurse, everything else unknown falls back to ``str``.
    """
    from ..core.values import Table, VertexSet
    from ..graph.elements import Vertex

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Table):
        return {
            "columns": list(value.columns),
            "rows": [[jsonify(cell) for cell in row] for row in value.rows],
        }
    if isinstance(value, Vertex):
        name = value.get("name")
        return name if name is not None else str(value.vid)
    if isinstance(value, VertexSet):
        return [jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [jsonify(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items.sort(key=repr)
        return items
    return str(value)


def taxonomy() -> Dict[str, Dict[str, Any]]:
    """The full outcome surface (kind -> status/retryable), sorted —
    docs and ``benchmarks/check_server_overhead.py`` pin this."""
    return {
        kind.value: {
            "http_status": HTTP_STATUS[kind],
            "retryable": is_retryable(kind),
        }
        for kind in sorted(OutcomeKind, key=lambda k: k.value)
    }


__all__ = [
    "OutcomeKind",
    "HTTP_STATUS",
    "RETRYABLE_OUTCOMES",
    "RETRYABLE_ABORT_REASONS",
    "is_retryable",
    "QueryRequest",
    "IngestRequest",
    "Job",
    "outcome",
    "http_status",
    "jsonify",
    "taxonomy",
]
