"""Stdlib-only asyncio HTTP front end for :class:`QueryService`.

A deliberately minimal HTTP/1.1 server (``asyncio.start_server`` — no
framework, no dependency) exposing three endpoints:

``POST /query``
    JSON body ``{"query": "...", "graph": "...", "params": {...},
    "tenant": "...", "class": "...", "deadline_seconds": ...,
    "engine": "...", "compile": true}``.  The response body is the
    outcome document from
    :func:`repro.server.protocol.outcome`; the HTTP status is its
    ``http_status`` field, and shed responses carry ``Retry-After``.

``POST /ingest``
    JSON body ``{"ops": [...], "graph": "...", "tenant": "...",
    "class": "...", "deadline_seconds": ...}`` where ``ops`` holds
    :class:`~repro.graph.mutation.MutationBatch` operation documents.
    Rides the same admission/retry machinery as queries; a batch the
    graph's state rejects is a non-retryable ``conflict`` (HTTP 409),
    and a committed batch answers with the published epoch.

``GET /metrics``
    The service's merged counters, admission gauges, pool stats and
    retry policy as JSON.

``GET /healthz``
    ``{"status": "ok"}`` — degrading to ``"draining"`` (HTTP 503) once
    shutdown has begun, so load balancers stop routing before the
    listener closes.

Query execution is blocking (worker dispatch + bounded retry), so each
request runs in a thread via ``loop.run_in_executor`` while the event
loop keeps accepting connections; admission itself is decided inside
that call — it is lock-cheap and never blocks on a worker.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, Optional, Tuple

from .protocol import IngestRequest, OutcomeKind, QueryRequest, outcome
from .service import QueryService

_MAX_BODY = 4 * 1024 * 1024  # 4 MiB: queries are text, not bulk loads.


def parse_request_body(doc: Any) -> QueryRequest:
    """Validate a decoded ``POST /query`` JSON body.

    Raises ``ValueError`` with a client-actionable message on any shape
    problem — the HTTP layer (and tests) map that to a 400.
    """
    if not isinstance(doc, dict):
        raise ValueError("request body must be a JSON object")
    query_text = doc.get("query")
    if not isinstance(query_text, str) or not query_text.strip():
        raise ValueError('"query" must be a non-empty string')
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise ValueError('"params" must be an object')
    deadline = doc.get("deadline_seconds")
    if deadline is not None and not isinstance(deadline, (int, float)):
        raise ValueError('"deadline_seconds" must be a number')
    for key in ("graph", "tenant", "class", "engine", "request_id"):
        if key in doc and not isinstance(doc[key], str):
            raise ValueError(f'"{key}" must be a string')
    compile_flag = doc.get("compile", True)
    if not isinstance(compile_flag, bool):
        raise ValueError('"compile" must be a boolean')
    return QueryRequest(
        query_text=query_text,
        graph=doc.get("graph", "default"),
        params=params,
        tenant=doc.get("tenant", "anonymous"),
        budget_class=doc.get("class", "interactive"),
        deadline_seconds=float(deadline) if deadline is not None else None,
        engine=doc.get("engine", "counting"),
        request_id=doc.get("request_id", ""),
        compile=compile_flag,
    )


def parse_ingest_body(doc: Any) -> IngestRequest:
    """Validate a decoded ``POST /ingest`` JSON body.

    Checks transport shape only (``ops`` is a list, strings are
    strings); per-op structure and semantics are the service's job —
    bad op documents come back 400, state conflicts 409.
    """
    if not isinstance(doc, dict):
        raise ValueError("request body must be a JSON object")
    ops = doc.get("ops")
    if not isinstance(ops, list) or not ops:
        raise ValueError('"ops" must be a non-empty array')
    deadline = doc.get("deadline_seconds")
    if deadline is not None and not isinstance(deadline, (int, float)):
        raise ValueError('"deadline_seconds" must be a number')
    for key in ("graph", "tenant", "class", "request_id"):
        if key in doc and not isinstance(doc[key], str):
            raise ValueError(f'"{key}" must be a string')
    return IngestRequest(
        ops=ops,
        graph=doc.get("graph", "default"),
        tenant=doc.get("tenant", "anonymous"),
        budget_class=doc.get("class", "interactive"),
        deadline_seconds=float(deadline) if deadline is not None else None,
        request_id=doc.get("request_id", ""),
    )


class HttpServer:
    """The asyncio listener wrapping one :class:`QueryService`."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 8080,
        executor_threads: int = 32,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._executor_threads = executor_threads
        self._server: Optional[asyncio.AbstractServer] = None

    # -- HTTP plumbing -------------------------------------------------
    @staticmethod
    def _response(
        status: int, body: Dict[str, Any], extra_headers: Tuple[Tuple[str, str], ...] = ()
    ) -> bytes:
        payload = json.dumps(body).encode("utf-8")
        reasons = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            409: "Conflict",
            413: "Payload Too Large", 422: "Unprocessable Entity",
            429: "Too Many Requests", 500: "Internal Server Error",
            502: "Bad Gateway", 503: "Service Unavailable",
            504: "Gateway Timeout",
        }
        head = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        head.extend(f"{k}: {v}" for k, v in extra_headers)
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + payload

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        header = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=10.0
        )
        request_line, *header_lines = header.decode(
            "latin-1"
        ).split("\r\n")
        parts = request_line.split(" ")
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, path = parts[0].upper(), parts[1]
        length = 0
        for line in header_lines:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip() or 0)
        if length > _MAX_BODY:
            raise ValueError("body too large")
        body = await asyncio.wait_for(
            reader.readexactly(length), timeout=30.0
        ) if length else b""
        return method, path, body

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                ValueError,
            ) as exc:
                writer.write(self._response(400, {"error": str(exc)}))
                return
            writer.write(await self._route(method, path, body))
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            try:
                await writer.drain()
                writer.close()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _route(self, method: str, path: str, body: bytes) -> bytes:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            doc = self.service.healthz()
            status = 200 if doc["status"] == "ok" else 503
            return self._response(status, doc)
        if path == "/metrics" and method == "GET":
            return self._response(200, self.service.metrics_dict())
        if path == "/query":
            if method != "POST":
                return self._response(
                    405, {"error": "POST required"}
                )
            try:
                request = parse_request_body(
                    json.loads(body.decode("utf-8") or "null")
                )
            except (ValueError, UnicodeDecodeError) as exc:
                doc = outcome(
                    OutcomeKind.BAD_REQUEST, error={"message": str(exc)}
                )
                return self._response(400, doc)
            loop = asyncio.get_running_loop()
            doc = await loop.run_in_executor(
                None, self.service.submit, request
            )
            headers = ()
            if doc.get("retry_after_ms") is not None and doc[
                "http_status"
            ] in (429, 503):
                seconds = max(1, -(-doc["retry_after_ms"] // 1000))
                headers = (("Retry-After", str(seconds)),)
            return self._response(doc["http_status"], doc, headers)
        if path == "/ingest":
            if method != "POST":
                return self._response(
                    405, {"error": "POST required"}
                )
            try:
                request = parse_ingest_body(
                    json.loads(body.decode("utf-8") or "null")
                )
            except (ValueError, UnicodeDecodeError) as exc:
                doc = outcome(
                    OutcomeKind.BAD_REQUEST, error={"message": str(exc)}
                )
                return self._response(400, doc)
            loop = asyncio.get_running_loop()
            doc = await loop.run_in_executor(
                None, self.service.ingest, request
            )
            headers = ()
            if doc.get("retry_after_ms") is not None and doc[
                "http_status"
            ] in (429, 503):
                seconds = max(1, -(-doc["retry_after_ms"] // 1000))
                headers = (("Retry-After", str(seconds)),)
            return self._response(doc["http_status"], doc, headers)
        return self._response(404, {"error": f"no route {path}"})

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]  # resolve port 0

    async def stop(self, grace: float = 5.0) -> None:
        """Drain (healthz flips to 503), close the listener, stop the
        pool."""
        self.service.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.service.shutdown(grace=grace)
        )

    async def serve_forever(self) -> None:
        """Run until SIGINT/SIGTERM, then drain and exit cleanly."""
        await self.start()
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop_event.wait()
        finally:
            await self.stop()


def serve(
    service: QueryService, host: str = "127.0.0.1", port: int = 8080
) -> None:
    """Blocking entry point used by ``repro serve``."""
    server = HttpServer(service, host=host, port=port)

    async def _main() -> None:
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - second ^C
        pass


__all__ = ["HttpServer", "serve", "parse_request_body", "parse_ingest_body"]
