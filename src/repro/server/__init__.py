"""repro.server: a fault-tolerant query service over the engine.

The service stack, bottom-up:

* :mod:`repro.server.protocol` — request/outcome shapes, the outcome
  taxonomy with its HTTP-status and retryability mappings;
* :mod:`repro.server.retry` — bounded exponential backoff with seeded
  deterministic jitter;
* :mod:`repro.server.admission` — per-tenant admission control: budget
  classes, concurrency ceilings, bounded queue, load shedding;
* :mod:`repro.server.pool` — the worker pool (process or thread
  transport) with crash detection, respawn and straggler kill;
* :mod:`repro.server.service` — :class:`QueryService`, the
  admission -> dispatch -> retry -> outcome request lifecycle;
* :mod:`repro.server.app` — the stdlib asyncio HTTP front end behind
  ``repro serve``.

See ``docs/robustness.md`` ("Service layer") for the admission model,
the shed/abort taxonomy and the retry matrix.
"""

from .admission import AdmissionController, BudgetClass, Ticket, default_classes
from .pool import WorkerPool, execute_job
from .protocol import (
    HTTP_STATUS,
    IngestRequest,
    Job,
    OutcomeKind,
    QueryRequest,
    RETRYABLE_ABORT_REASONS,
    RETRYABLE_OUTCOMES,
    is_retryable,
    outcome,
    taxonomy,
)
from .retry import RetryPolicy
from .service import QueryService

__all__ = [
    "AdmissionController",
    "BudgetClass",
    "Ticket",
    "default_classes",
    "WorkerPool",
    "execute_job",
    "HTTP_STATUS",
    "IngestRequest",
    "Job",
    "OutcomeKind",
    "QueryRequest",
    "RETRYABLE_ABORT_REASONS",
    "RETRYABLE_OUTCOMES",
    "is_retryable",
    "outcome",
    "taxonomy",
    "RetryPolicy",
    "QueryService",
]
