"""Per-tenant admission control: budget classes, limits, load shedding.

Admission is the service's first robustness layer: *refuse early,
cheaply and with a structured answer* instead of queuing without bound.
Every request is checked against three ceilings before it may wait for
a worker:

* **tenant inflight** — one tenant cannot monopolize the service;
* **class concurrency** — each :class:`BudgetClass` caps how many of
  its requests may be admitted (queued + running) at once;
* **global queue depth** — admitted-but-not-yet-running requests are
  bounded; beyond the bound the service sheds with 429, never queues.

A shed is an :class:`~repro.server.protocol.OutcomeKind` (queue-full /
class-limit / tenant-limit / draining), which the HTTP layer maps to
429 or 503 with a ``Retry-After`` hint — the client-visible half of the
retry policy.

The budget class also fixes the request's *execution* resources: a
:class:`~repro.governor.Budget` template the worker instantiates, and a
default deadline applied when the client sends none.  This is the PR 4
governor promoted to multi-tenant policy: same limits, now assigned by
class instead of per-CLI-flag.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, NamedTuple, Optional, Tuple, Union

from ..governor import faults as _faults
from .protocol import OutcomeKind, QueryRequest


class BudgetClass(NamedTuple):
    """One admission/budget tier.

    ``budget`` holds :class:`~repro.governor.Budget` keyword arguments
    (without ``deadline_seconds`` — the deadline is computed per request
    from ``default_deadline`` and the client's ask, capped at
    ``max_deadline``).
    """

    name: str
    default_deadline: float = 5.0
    max_deadline: float = 60.0
    max_concurrent: int = 8
    budget: Dict[str, Any] = {}

    def effective_deadline(self, requested: Optional[float]) -> float:
        """The deadline this class grants a request asking for
        ``requested`` seconds (None -> the class default)."""
        if requested is None or requested <= 0:
            return self.default_deadline
        return min(requested, self.max_deadline)


def default_classes() -> Dict[str, BudgetClass]:
    """The stock three-tier class table (override via ``classes=``)."""
    return {
        "interactive": BudgetClass(
            "interactive",
            default_deadline=5.0,
            max_deadline=30.0,
            max_concurrent=8,
            budget={"max_product_states": 2_000_000, "max_paths": 1_000_000},
        ),
        "batch": BudgetClass(
            "batch",
            default_deadline=60.0,
            max_deadline=600.0,
            max_concurrent=2,
            budget={},
        ),
        "bounded": BudgetClass(
            "bounded",
            default_deadline=2.0,
            max_deadline=5.0,
            max_concurrent=4,
            budget={
                "max_acc_executions": 200_000,
                "max_product_states": 200_000,
                "max_paths": 50_000,
                "max_accum_bytes": 64 * 1024 * 1024,
            },
        ),
    }


class Ticket(NamedTuple):
    """Proof of admission; carried until the terminal outcome."""

    request_id: str
    tenant: str
    budget_class: BudgetClass
    deadline_seconds: float
    admitted_at: float

    def remaining(self, now: float) -> float:
        """Deadline seconds left at time ``now`` (monotonic clock)."""
        return self.deadline_seconds - (now - self.admitted_at)


class AdmissionController:
    """Thread-safe counters enforcing the three admission ceilings.

    States a request moves through: *admitted* (counted queued) ->
    *dispatched* (counted running) -> *released*.  ``queue_depth`` is
    the live gauge the ``/metrics`` endpoint exports.
    """

    def __init__(
        self,
        classes: Optional[Dict[str, BudgetClass]] = None,
        max_queue_depth: int = 16,
        max_tenant_inflight: int = 8,
        clock=time.monotonic,
    ):
        self.classes = classes if classes is not None else default_classes()
        if not self.classes:
            raise ValueError("admission needs at least one budget class")
        self.max_queue_depth = max_queue_depth
        self.max_tenant_inflight = max_tenant_inflight
        self._clock = clock
        self._lock = threading.Lock()
        self._queued = 0
        self._running = 0
        self._class_inflight: Dict[str, int] = {}
        self._tenant_inflight: Dict[str, int] = {}
        self.peak_queue_depth = 0

    # -- gauges --------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._queued

    @property
    def running(self) -> int:
        return self._running

    @property
    def inflight(self) -> int:
        return self._queued + self._running

    # -- admission -----------------------------------------------------
    def try_admit(
        self, request: QueryRequest, draining: bool = False
    ) -> Tuple[Optional[Ticket], Optional[OutcomeKind]]:
        """Admit ``request`` or shed it with a structured outcome.

        Returns ``(ticket, None)`` on admission or ``(None, kind)``
        where ``kind`` is one of the four shed outcomes.  The
        ``server.admission`` fault site fires here: armed, the decision
        is forced to queue-full regardless of the real counters.
        """
        cls = self.classes.get(request.budget_class)
        if cls is None:
            # Unknown class is a client error, not a shed: report the
            # known classes so the 400 is actionable.
            raise KeyError(
                f"unknown budget class {request.budget_class!r}; "
                f"known: {', '.join(sorted(self.classes))}"
            )
        if draining:
            return None, OutcomeKind.SHED_DRAINING
        forced_shed = False
        if _faults._PLAN is not None:
            try:
                _faults.fire("server.admission")
            except Exception:
                forced_shed = True
        with self._lock:
            if forced_shed or self._queued >= self.max_queue_depth:
                return None, OutcomeKind.SHED_QUEUE_FULL
            if self._class_inflight.get(cls.name, 0) >= cls.max_concurrent:
                return None, OutcomeKind.SHED_CLASS_LIMIT
            if (
                self._tenant_inflight.get(request.tenant, 0)
                >= self.max_tenant_inflight
            ):
                return None, OutcomeKind.SHED_TENANT_LIMIT
            self._queued += 1
            self.peak_queue_depth = max(self.peak_queue_depth, self._queued)
            self._class_inflight[cls.name] = (
                self._class_inflight.get(cls.name, 0) + 1
            )
            self._tenant_inflight[request.tenant] = (
                self._tenant_inflight.get(request.tenant, 0) + 1
            )
        ticket = Ticket(
            request_id=request.request_id,
            tenant=request.tenant,
            budget_class=cls,
            deadline_seconds=cls.effective_deadline(request.deadline_seconds),
            admitted_at=self._clock(),
        )
        return ticket, None

    def note_dispatched(self, ticket: Ticket) -> None:
        """The request left the queue for a worker."""
        with self._lock:
            self._queued = max(0, self._queued - 1)
            self._running += 1

    def release(self, ticket: Ticket, dispatched: bool) -> None:
        """The request reached a terminal outcome; free its slots."""
        with self._lock:
            if dispatched:
                self._running = max(0, self._running - 1)
            else:
                self._queued = max(0, self._queued - 1)
            name = ticket.budget_class.name
            self._class_inflight[name] = max(
                0, self._class_inflight.get(name, 0) - 1
            )
            self._tenant_inflight[ticket.tenant] = max(
                0, self._tenant_inflight.get(ticket.tenant, 0) - 1
            )

    def snapshot(self) -> Dict[str, Any]:
        """Live admission gauges for ``/metrics``."""
        with self._lock:
            return {
                "queue_depth": self._queued,
                "running": self._running,
                "peak_queue_depth": self.peak_queue_depth,
                "class_inflight": {
                    k: v for k, v in sorted(self._class_inflight.items()) if v
                },
                "tenant_inflight": {
                    k: v for k, v in sorted(self._tenant_inflight.items()) if v
                },
                "limits": {
                    "max_queue_depth": self.max_queue_depth,
                    "max_tenant_inflight": self.max_tenant_inflight,
                    "classes": {
                        name: cls.max_concurrent
                        for name, cls in sorted(self.classes.items())
                    },
                },
            }


ClassSpec = Union[BudgetClass, Dict[str, Any]]

__all__ = [
    "BudgetClass",
    "default_classes",
    "Ticket",
    "AdmissionController",
]
