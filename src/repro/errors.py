"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle all library failures.  Sub-hierarchies
mirror the package layout: schema/graph errors, DARPE parse errors, query
compilation/execution errors and accumulator errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ReentrantActivationError(ReproError):
    """Raised when a module-global engine binding (the :mod:`repro.obs`
    collector, the :mod:`repro.governor` governor, the
    :mod:`repro.accsan` sanitizer or the :mod:`repro.governor.faults`
    plan) is activated from one thread while another thread's
    activation is still live.

    Those bindings are process-wide by design (the zero-cost fast path
    is a single module-global load), so a cross-thread re-activation
    would silently attribute one query's charges, counters or sanitizer
    events to another — the exact cross-wiring bug this error makes
    loud.  Same-thread nesting still stacks cleanly (inner shadows
    outer, outer restored on exit).

    ``subsystem``
        Which binding was contended (``"obs.collector"``,
        ``"governor"``, ``"accsan"``, ``"governor.faults"``).
    ``owner_thread`` / ``thread``
        The ``threading.get_ident()`` of the thread holding the
        activation and of the thread that attempted to re-activate.
    """

    def __init__(self, subsystem: str, owner_thread: int, thread: int):
        self.subsystem = subsystem
        self.owner_thread = owner_thread
        self.thread = thread
        super().__init__(
            f"{subsystem} is already active on thread {owner_thread}; "
            f"thread {thread} must not re-activate it (run the query in "
            "its own worker process, or serialize governed extents)"
        )


class SchemaError(ReproError):
    """Raised for violations of a graph schema.

    Examples: adding a vertex of an undeclared type, adding an edge whose
    endpoint types are not allowed by the edge type, or redefining a type.
    """


class GraphError(ReproError):
    """Raised for structural graph errors (unknown vertex ids, etc.)."""


class MutationError(GraphError):
    """Raised by the mutation subsystem (:mod:`repro.graph.mutation`)
    for failures that are *not* per-operation conflicts: applying to a
    store poisoned by a crash between WAL commit and publish (it needs
    :func:`~repro.graph.mutation.recover_graph` first), or a committed
    WAL record that no longer replays against its base graph.
    """


class MutationConflictError(MutationError):
    """Raised when a :class:`~repro.graph.mutation.MutationBatch` is
    rejected by validation — deleting a vertex or edge that does not
    exist, an edge upsert whose endpoint is missing, a type or
    directedness change, or a schema violation.

    The whole batch is rejected atomically (nothing was applied and
    nothing was logged), so the batch can be corrected and resubmitted.
    ``index`` is the 0-based offending operation's position in the
    batch and ``op`` its normalized document (``None`` for batch-level
    conflicts).
    """

    def __init__(self, message: str, index: int = -1, op: object = None):
        self.index = index
        self.op = op
        super().__init__(message)


class WalCorruptionError(ReproError):
    """Raised when a write-ahead log cannot be read back consistently:
    a checksum mismatch, torn record or undecodable payload *before*
    the final segment's tail.  A torn tail (the expected shape of a
    crash mid-append) is not an error — recovery truncates it; anything
    earlier means lost committed records, which must be loud.

    ``segment`` names the damaged segment file and ``offset`` the byte
    offset of the first unreadable record.
    """

    def __init__(self, message: str, segment: str = "", offset: int = -1):
        self.segment = segment
        self.offset = offset
        super().__init__(message)


class DarpeSyntaxError(ReproError):
    """Raised when a DARPE string cannot be parsed.

    Carries the offending ``text`` and the ``position`` of the first
    character that could not be consumed.
    """

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if text and position >= 0:
            pointer = " " * position + "^"
            message = f"{message}\n  {text}\n  {pointer}"
        super().__init__(message)


class GSQLSyntaxError(ReproError):
    """Raised when GSQL query text cannot be parsed."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        self.line = line
        self.column = column
        if line >= 0:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class QueryCompileError(ReproError):
    """Raised when a syntactically valid query cannot be compiled.

    Examples: reference to an undeclared accumulator, unknown vertex type,
    an edge variable attached to a multi-edge DARPE, or a pattern variable
    used in an incompatible position.
    """


class QueryRuntimeError(ReproError):
    """Raised when query execution fails (type errors, missing attributes,
    division by zero inside an expression, exceeding iteration limits...).

    ``counters`` snapshots the active observability collector at raise
    time, so a failed query carries the same telemetry as a successful
    one (empty dict when no collector is installed).
    """

    def __init__(self, *args: object):
        super().__init__(*args)
        self.counters: dict = _snapshot_counters()


def _snapshot_counters() -> dict:
    """Copy of the active obs collector's counters (at raise time)."""
    from .obs import metrics as _obs  # lazy: errors loads before obs

    col = _obs._ACTIVE
    return dict(col.counters) if col is not None else {}


class QueryAbortedError(QueryRuntimeError):
    """Raised by the execution governor when a query exceeds its
    :class:`~repro.governor.Budget` or its cancel token is triggered.

    Structured so callers can react programmatically:

    ``reason``
        An :class:`~repro.governor.AbortReason` member (deadline,
        cancelled, acc-executions, product-states, paths,
        accumulator-memory, injected-fault).
    ``limit_name`` / ``limit_value``
        Which budget limit was breached and its configured value.
    ``observed``
        The tally that breached the limit.
    ``elapsed_seconds``
        Wall-clock time since the governor started.
    ``counters``
        Partial obs counters at abort time (inherited behaviour).
    """

    def __init__(
        self,
        message: str,
        reason: object = None,
        limit_name: str = "",
        limit_value: object = None,
        observed: object = None,
        elapsed_seconds: float = 0.0,
    ):
        super().__init__(message)
        self.reason = reason
        self.limit_name = limit_name
        self.limit_value = limit_value
        self.observed = observed
        self.elapsed_seconds = elapsed_seconds


class ParallelSafetyError(QueryRuntimeError):
    """Raised by :func:`repro.core.parallel.parallel_accum` when asked to
    partition an ACCUM clause whose effect certificate does not prove the
    updates commutative.

    Running anyway would be *silently* nondeterministic — different
    thread interleavings fold inputs in different orders — so the engine
    refuses with the analysis verdict attached:

    ``status``
        The :class:`~repro.core.tractable.DeterminismStatus` value
        (``"order-dependent"`` or ``"unknown"``).
    ``witnesses``
        The per-accumulator algebra facts the verdict rests on.
    """

    def __init__(self, message: str, status: str = "", witnesses: tuple = ()):
        super().__init__(message)
        self.status = status
        self.witnesses = tuple(witnesses)


class AccSanViolation(QueryRuntimeError):
    """Raised by the accumulator sanitizer (:mod:`repro.accsan`) when a
    block certified COMMUTATIVE produces schedule-dependent results.

    This means the static effect analysis stamped a wrong certificate (or
    a user-registered accumulator lied about order invariance) — the
    exact bug class AccSan exists to catch.  Structured for test
    harnesses and bug reports:

    ``block_label``
        Human-readable identity of the SELECT block being replayed.
    ``accumulator``
        The ``@name``/``@@name`` whose replay diverged.
    ``schedule``
        The 0-based index of the permuted schedule that diverged.
    ``expected_digest`` / ``observed_digest``
        Canonical value digests under the original and permuted order.
    """

    def __init__(
        self,
        message: str,
        block_label: str = "",
        accumulator: str = "",
        schedule: int = -1,
        expected_digest: str = "",
        observed_digest: str = "",
    ):
        super().__init__(message)
        self.block_label = block_label
        self.accumulator = accumulator
        self.schedule = schedule
        self.expected_digest = expected_digest
        self.observed_digest = observed_digest


class AccumulatorError(ReproError):
    """Raised for invalid accumulator usage.

    Examples: inputting a value of the wrong type, conflicting plain
    assignments during one reduce phase, or constructing a HeapAccum with
    an unknown sort field.
    """


class TractabilityError(ReproError):
    """Raised when a query falls outside the tractable class of Section 7
    and the engine was configured to reject such queries.

    The tractable class disallows path variables, variables bound inside a
    Kleene star, and order-sensitive accumulators (List/Array/string-Sum)
    fed from patterns with unbounded repetition.
    """


class EvaluationBudgetExceeded(ReproError):
    """Raised by enumeration-based engines when a configured budget
    (maximum number of enumerated paths or expanded search nodes) is
    exhausted.

    The enumeration baselines are intentionally exponential; the budget
    turns a would-be multi-hour run into a clean, reportable failure,
    mirroring the timeouts in the paper's Table 1.
    """

    def __init__(self, message: str, expanded: int = 0):
        self.expanded = expanded
        super().__init__(message)


class WorkerCrashed(ReproError):
    """Raised inside the query service (:mod:`repro.server.pool`) when a
    pool worker dies mid-query — the process was killed, its pipe hit
    EOF, or (thread mode) a crash fault poisoned it.

    The dispatcher converts this into a structured ``worker-crashed``
    outcome (HTTP 502) after exhausting the bounded retry policy;
    sibling workers are unaffected and the crashed worker is respawned.
    """

    def __init__(self, message: str, worker: str = ""):
        self.worker = worker
        super().__init__(message)


class InjectedFault(ReproError):
    """Raised by the deterministic fault-injection harness
    (:mod:`repro.governor.faults`) when an armed injection site fires.

    Carries the ``site`` name and the 0-based ``hit`` index at which the
    injection fired, so chaos tests can assert exactly where execution
    was cut down.
    """

    def __init__(self, message: str, site: str = "", hit: int = -1):
        self.site = site
        self.hit = hit
        super().__init__(message)


# ----------------------------------------------------------------------
# Process exit-code taxonomy
# ----------------------------------------------------------------------
# One table shared by every CLI entry point (run / profile / lint /
# check / validate / serve) and by the service job runner, so a shell
# script, a CI job and an HTTP client all read the same contract.  The
# doc-drift test (tests/test_errors.py) parses the tables in README.md
# and docs/robustness.md and asserts they match this catalog, the same
# way ``repro.analysis.rules.catalog_codes`` pins the diagnostic codes.

#: Successful completion.
EXIT_OK = 0
#: Usage, I/O, parse or lint/analysis error (bad flags, unreadable
#: file, GSQL syntax error, error-severity diagnostics).
EXIT_USAGE = 1
#: The execution governor aborted the query (budget breach, deadline,
#: cancellation) — a structured :class:`QueryAbortedError`.
EXIT_ABORT = 2
#: The accumulator sanitizer found a certificate violation
#: (:class:`AccSanViolation`).
EXIT_ACCSAN = 3

#: code -> (name, meaning).  Insertion order is display order.
EXIT_CODES = {
    EXIT_OK: ("ok", "query/command completed"),
    EXIT_USAGE: ("usage-or-lint", "usage, I/O, parse or lint/analysis error"),
    EXIT_ABORT: ("governor-abort", "execution governor aborted the query"),
    EXIT_ACCSAN: ("accsan-violation", "sanitizer caught a certificate violation"),
}


def exit_code_catalog():
    """The ``(code, name, meaning)`` rows of the exit-code taxonomy,
    sorted by code — docs and the drift test consume this."""
    return [(code, name, meaning) for code, (name, meaning) in sorted(EXIT_CODES.items())]
