"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle all library failures.  Sub-hierarchies
mirror the package layout: schema/graph errors, DARPE parse errors, query
compilation/execution errors and accumulator errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """Raised for violations of a graph schema.

    Examples: adding a vertex of an undeclared type, adding an edge whose
    endpoint types are not allowed by the edge type, or redefining a type.
    """


class GraphError(ReproError):
    """Raised for structural graph errors (unknown vertex ids, etc.)."""


class DarpeSyntaxError(ReproError):
    """Raised when a DARPE string cannot be parsed.

    Carries the offending ``text`` and the ``position`` of the first
    character that could not be consumed.
    """

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if text and position >= 0:
            pointer = " " * position + "^"
            message = f"{message}\n  {text}\n  {pointer}"
        super().__init__(message)


class GSQLSyntaxError(ReproError):
    """Raised when GSQL query text cannot be parsed."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        self.line = line
        self.column = column
        if line >= 0:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class QueryCompileError(ReproError):
    """Raised when a syntactically valid query cannot be compiled.

    Examples: reference to an undeclared accumulator, unknown vertex type,
    an edge variable attached to a multi-edge DARPE, or a pattern variable
    used in an incompatible position.
    """


class QueryRuntimeError(ReproError):
    """Raised when query execution fails (type errors, missing attributes,
    division by zero inside an expression, exceeding iteration limits...)."""


class AccumulatorError(ReproError):
    """Raised for invalid accumulator usage.

    Examples: inputting a value of the wrong type, conflicting plain
    assignments during one reduce phase, or constructing a HeapAccum with
    an unknown sort field.
    """


class TractabilityError(ReproError):
    """Raised when a query falls outside the tractable class of Section 7
    and the engine was configured to reject such queries.

    The tractable class disallows path variables, variables bound inside a
    Kleene star, and order-sensitive accumulators (List/Array/string-Sum)
    fed from patterns with unbounded repetition.
    """


class EvaluationBudgetExceeded(ReproError):
    """Raised by enumeration-based engines when a configured budget
    (maximum number of enumerated paths or expanded search nodes) is
    exhausted.

    The enumeration baselines are intentionally exponential; the budget
    turns a would-be multi-hour run into a clean, reportable failure,
    mirroring the timeouts in the paper's Table 1.
    """

    def __init__(self, message: str, expanded: int = 0):
        self.expanded = expanded
        super().__init__(message)
