"""Benchmark harness utilities shared by benchmarks/ suites and scripts."""

from .harness import (
    Measurement,
    TimeoutBudget,
    doubling_ratios,
    fit_exponent,
    fit_power,
    format_seconds,
    profile_call,
    render_table,
    sweep,
    time_call,
)

__all__ = [
    "Measurement",
    "TimeoutBudget",
    "doubling_ratios",
    "fit_exponent",
    "fit_power",
    "format_seconds",
    "profile_call",
    "render_table",
    "sweep",
    "time_call",
]
