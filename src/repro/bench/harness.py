"""Benchmark harness: timing, series collection, growth-rate analysis.

Used by both the pytest-benchmark suites and the standalone ``run_*.py``
harness scripts in ``benchmarks/`` that print the paper's tables.
"""

from __future__ import annotations

import math
import statistics
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import EvaluationBudgetExceeded


class Measurement:
    """One benchmark point: a label, a parameter value, and timings."""

    def __init__(self, label: str, param: Any, seconds: List[float], extra: Any = None):
        self.label = label
        self.param = param
        self.seconds = seconds
        self.extra = extra

    @property
    def median(self) -> float:
        return statistics.median(self.seconds)

    @property
    def best(self) -> float:
        return min(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Measurement({self.label}, {self.param}: {self.median * 1000:.2f}ms)"


def time_call(
    fn: Callable[[], Any],
    repeat: int = 3,
    warmup: int = 1,
) -> Tuple[List[float], Any]:
    """Run ``fn`` ``warmup + repeat`` times; return (timings, last result).

    Warm-cache timing, as the paper reports ("the warm-cache running times
    observed after the initial loading").
    """
    result = None
    for _ in range(warmup):
        result = fn()
    timings = []
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - start)
    return timings, result


def profile_call(fn: Callable[[], Any]) -> Tuple[Any, Any]:
    """Run ``fn`` once under a fresh :mod:`repro.obs` collector.

    Returns ``(result, collector)`` — the collector's counters let the
    harness scripts report engine work (acc-executions, product states)
    alongside wall-clock columns.
    """
    from ..obs import Collector, collect

    collector = Collector()
    with collect(collector):
        result = fn()
    return result, collector


class TimeoutBudget:
    """Per-point wall-clock cutoff for sweeps over exponential baselines.

    Once a point exceeds ``limit_seconds``, subsequent points are skipped
    and reported as timeouts — the role of the paper's 10-minute timeout
    ("For n >= 25, the queries timed out").
    """

    def __init__(self, limit_seconds: float):
        self.limit_seconds = limit_seconds
        self.tripped = False

    def run(self, fn: Callable[[], Any]) -> Optional[Tuple[float, Any]]:
        """Execute once; None signals a (possibly inherited) timeout."""
        if self.tripped:
            return None
        start = time.perf_counter()
        try:
            result = fn()
        except EvaluationBudgetExceeded:
            self.tripped = True
            return None
        elapsed = time.perf_counter() - start
        if elapsed > self.limit_seconds:
            self.tripped = True
        return elapsed, result


def sweep(
    label: str,
    params: Sequence[Any],
    make_fn: Callable[[Any], Callable[[], Any]],
    repeat: int = 3,
    timeout_seconds: Optional[float] = None,
) -> List[Measurement]:
    """Measure ``make_fn(param)()`` for each parameter value.

    With a timeout, a point that exceeds it stops the sweep (entries for
    remaining params are omitted), mirroring the paper's dash entries.
    """
    budget = TimeoutBudget(timeout_seconds) if timeout_seconds else None
    out: List[Measurement] = []
    for param in params:
        fn = make_fn(param)
        if budget is not None:
            shot = budget.run(fn)
            if shot is None:
                break
            elapsed, result = shot
            out.append(Measurement(label, param, [elapsed], extra=result))
            if budget.tripped:
                break
        else:
            timings, result = time_call(fn, repeat=repeat)
            out.append(Measurement(label, param, timings, extra=result))
    return out


# ----------------------------------------------------------------------
# Growth-rate analysis
# ----------------------------------------------------------------------

def doubling_ratios(series: Sequence[Tuple[Any, float]]) -> List[float]:
    """Successive time ratios t[i+1]/t[i] — an exponential-in-n algorithm
    shows ratios near its base (2 for the diamond chain), a polynomial one
    shows ratios tending to 1."""
    ratios = []
    for (_, a), (_, b) in zip(series, series[1:]):
        if a > 0:
            ratios.append(b / a)
    return ratios


def fit_exponent(series: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope of log(time) against the parameter.

    For times ~ C * 2**n the slope is ~ log(2) = 0.693; for polynomial
    times the slope tends to 0 as n grows.
    """
    points = [(x, math.log(t)) for x, t in series if t > 0]
    if len(points) < 2:
        return 0.0
    n = len(points)
    sx = sum(x for x, _ in points)
    sy = sum(y for _, y in points)
    sxx = sum(x * x for x, _ in points)
    sxy = sum(x * y for x, y in points)
    denom = n * sxx - sx * sx
    if denom == 0:
        return 0.0
    return (n * sxy - sx * sy) / denom


def fit_power(series: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope of log(time) against log(parameter): the
    polynomial degree for times ~ C * n**d."""
    return fit_exponent([(math.log(x), t) for x, t in series if x > 0])


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------

def format_seconds(seconds: Optional[float]) -> str:
    """Paper-style duration formatting: ms / s / XmYs / '-' for timeout."""
    if seconds is None:
        return "-"
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes = int(seconds // 60)
    return f"{minutes}m{seconds - 60 * minutes:.0f}s"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """A plain fixed-width text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


__all__ = [
    "Measurement",
    "time_call",
    "profile_call",
    "TimeoutBudget",
    "sweep",
    "doubling_ratios",
    "fit_exponent",
    "fit_power",
    "format_seconds",
    "render_table",
]
