"""Runtime value containers for query execution: tables and vertex sets."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import QueryRuntimeError
from ..graph.elements import Vertex
from ..graph.graph import Graph


class Table:
    """A named, ordered result table produced by ``SELECT ... INTO``.

    Columns are named; rows are tuples.  Tables are append-only during
    query execution and read-only afterwards.
    """

    def __init__(self, name: str, columns: Sequence[str]):
        self.name = name
        self.columns = tuple(columns)
        self._rows: List[Tuple[Any, ...]] = []

    def append(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise QueryRuntimeError(
                f"table {self.name!r} expects {len(self.columns)} columns, "
                f"got {len(row)}"
            )
        self._rows.append(tuple(row))

    @property
    def rows(self) -> List[Tuple[Any, ...]]:
        return list(self._rows)

    def dicts(self) -> Iterator[Dict[str, Any]]:
        for row in self._rows:
            yield dict(zip(self.columns, row))

    def column(self, name: str) -> List[Any]:
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise QueryRuntimeError(
                f"table {self.name!r} has no column {name!r}"
            ) from None
        return [row[idx] for row in self._rows]

    def sort(self, key, reverse: bool = False) -> None:
        self._rows.sort(key=key, reverse=reverse)

    def truncate(self, limit: int) -> None:
        del self._rows[limit:]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name}: {self.columns}, {len(self)} rows)"


class VertexSet:
    """An ordered, duplicate-free set of vertices (a GSQL vertex-set
    variable, e.g. the result of ``S = SELECT v FROM ...``)."""

    def __init__(self, graph: Graph, vertices: Iterable[Vertex] = ()):
        self.graph = graph
        self._order: List[Vertex] = []
        self._ids = set()
        for v in vertices:
            self.add(v)

    def add(self, vertex: Vertex) -> None:
        if vertex.vid not in self._ids:
            self._ids.add(vertex.vid)
            self._order.append(vertex)

    def ids(self) -> List[Any]:
        return [v.vid for v in self._order]

    def __contains__(self, item: Any) -> bool:
        if isinstance(item, Vertex):
            return item.vid in self._ids
        return item in self._ids

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    @classmethod
    def all_of_type(cls, graph: Graph, vtype: Optional[str]) -> "VertexSet":
        """``{Type.*}`` — every vertex of a type (or every vertex when
        ``vtype`` is None, GSQL's ``{ANY}``)."""
        return cls(graph, graph.vertices(vtype))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VertexSet({len(self)} vertices)"


__all__ = ["Table", "VertexSet"]
