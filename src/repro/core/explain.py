"""EXPLAIN: a human-readable account of how a query will be evaluated.

Reports, per SELECT block: the pattern chains with each hop's kind
(adjacency expansion vs. path-engine) and DARPE analysis (fixed length?
Kleene?), the pushed-down filters, the accumulator inputs with their
multiplicity handling, and the tractability classification — the pieces
of Section 7's argument, made inspectable.
"""

from __future__ import annotations

from typing import List

from ..darpe.ast import contains_kleene, fixed_unique_length, length_range
from .block import SelectBlock
from .planner import push_down_filters
from .query import (
    DeclareAccum,
    GlobalAccumUpdate,
    If,
    Print,
    Query,
    Return,
    RunBlock,
    SetAssign,
    Statement,
    While,
)
from .stmts import AccumUpdate, LocalAssign
from .tractable import analyze_query


def explain_query(query: Query) -> str:
    """A multi-line EXPLAIN report for a compiled query."""
    lines: List[str] = [f"QUERY {query.name}"]
    if query.params:
        params = ", ".join(f"{p.type_name} {p.name}" for p in query.params)
        lines.append(f"  parameters: {params}")
    violations = analyze_query(query)
    if violations:
        lines.append("  tractability: OUTSIDE the Section 7 class")
        for v in violations:
            lines.append(f"    - {v.kind}: {v.detail}")
    else:
        lines.append("  tractability: tractable (polynomial counting evaluation)")
    _explain_statements(query.statements, lines, indent=1)
    return "\n".join(lines)


def _explain_statements(statements: List[Statement], lines: List[str], indent: int) -> None:
    pad = "  " * indent
    for stmt in statements:
        if isinstance(stmt, DeclareAccum):
            probe = stmt.base_factory() if not getattr(
                stmt.base_factory, "takes_context", False
            ) else None
            type_name = probe.type_name if probe is not None else "HeapAccum"
            scope = "@@" if stmt.scope == "global" else "@"
            flags = []
            if probe is not None:
                if not probe.order_invariant:
                    flags.append("order-dependent")
                if not probe.multiplicity_sensitive:
                    flags.append("multiplicity-insensitive")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            lines.append(f"{pad}DECLARE {scope}{stmt.name}: {type_name}{suffix}")
        elif isinstance(stmt, SetAssign):
            if isinstance(stmt.source, SelectBlock):
                lines.append(f"{pad}{stmt.name} = SELECT ...")
                _explain_block(stmt.source, lines, indent + 1)
            else:
                lines.append(f"{pad}{stmt.name} = {stmt.source}")
        elif isinstance(stmt, RunBlock):
            head = f"{stmt.assign_to} = SELECT" if stmt.assign_to else "SELECT"
            lines.append(f"{pad}{head} ...")
            _explain_block(stmt.block, lines, indent + 1)
        elif isinstance(stmt, GlobalAccumUpdate):
            lines.append(f"{pad}@@{stmt.name} {stmt.op} {stmt.expr!r}")
        elif isinstance(stmt, While):
            limit = f" LIMIT {stmt.limit!r}" if stmt.limit is not None else ""
            lines.append(f"{pad}WHILE {stmt.cond!r}{limit}")
            _explain_statements(stmt.body, lines, indent + 1)
        elif isinstance(stmt, If):
            lines.append(f"{pad}IF {stmt.cond!r}")
            _explain_statements(stmt.then, lines, indent + 1)
            if stmt.otherwise:
                lines.append(f"{pad}ELSE")
                _explain_statements(stmt.otherwise, lines, indent + 1)
        elif isinstance(stmt, Print):
            lines.append(f"{pad}PRINT ({len(stmt.items)} items)")
        elif isinstance(stmt, Return):
            lines.append(f"{pad}RETURN {stmt.expr!r}")
        else:
            # statement groups and extension statements
            inner = getattr(stmt, "statements", None)
            if inner is not None:
                _explain_statements(inner, lines, indent)
            else:
                lines.append(f"{pad}{type(stmt).__name__}")


def _explain_block(block: SelectBlock, lines: List[str], indent: int) -> None:
    pad = "  " * indent
    cert = getattr(block, "certificate", None)
    if cert is not None:
        lines.append(f"{pad}CERTIFICATE {cert.status.value}")
        for witness in cert.witnesses:
            lines.append(f"{pad}  * {witness}")
    effect = getattr(block, "effect_certificate", None)
    if effect is not None:
        delta = " delta-maintainable" if effect.delta_maintainable else ""
        lines.append(f"{pad}EFFECTS {effect.status.value}{delta}")
        for witness in effect.witnesses:
            lines.append(f"{pad}  * {witness}")
    var_filters, residual = push_down_filters(
        block.where, set(block.pattern.variables())
    )
    for chain in block.pattern.chains:
        hops = getattr(chain, "hops", [])
        source = getattr(chain, "source", chain)
        lines.append(f"{pad}FROM {source!r}")
        for hop in hops:
            lines.append(f"{pad}  {_describe_hop(hop)}")
    for var, filters in sorted(var_filters.items()):
        for f in filters:
            lines.append(f"{pad}PUSHDOWN [{var}] {f!r}")
    for conjunct in residual:
        lines.append(f"{pad}WHERE {conjunct!r}")
    for stmt in block.accum:
        lines.append(f"{pad}ACCUM {_describe_acc(stmt)}")
    for stmt in block.post_accum:
        lines.append(f"{pad}POST_ACCUM {_describe_acc(stmt)}")
    if block.group_by:
        keys = ", ".join(repr(k) for k in block.group_by)
        lines.append(f"{pad}GROUP BY {keys}")
    if block.order_by:
        keys = ", ".join(
            f"{expr!r} {'DESC' if desc else 'ASC'}" for expr, desc in block.order_by
        )
        lines.append(f"{pad}ORDER BY {keys}")
    if block.limit is not None:
        lines.append(f"{pad}LIMIT {block.limit!r}")
    for fragment in block.fragments:
        lines.append(f"{pad}INTO {fragment.into} ({len(fragment.columns)} columns)")
    if block.select_var:
        lines.append(f"{pad}=> vertex set of {block.select_var!r}")


def _describe_hop(hop) -> str:
    ast = hop.darpe.ast
    lo, hi = length_range(ast)
    if hop.is_single_symbol:
        plan = "adjacency expansion"
    elif contains_kleene(ast):
        plan = "path engine (Kleene: SDMC counting / enumeration)"
    else:
        plan = "path engine (bounded)"
    fixed = fixed_unique_length(ast)
    shape = (
        f"fixed-unique-length {fixed}"
        if fixed is not None
        else f"length {lo}..{'∞' if hi is None else hi}"
    )
    edge = f" AS {hop.edge_var}" if hop.edge_var else ""
    return f"-({hop.darpe.text}{edge})- {hop.target!r}   [{plan}; {shape}]"


def _describe_acc(stmt) -> str:
    if isinstance(stmt, LocalAssign):
        return f"{stmt.name} = {stmt.expr!r}  [local]"
    if isinstance(stmt, AccumUpdate):
        return f"{stmt.target!r} {stmt.op} {stmt.expr!r}"
    return repr(stmt)


__all__ = ["explain_query"]
