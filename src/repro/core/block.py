"""The SELECT query block: FROM / WHERE / ACCUM / POST_ACCUM / outputs.

Execution follows the declarative semantics of Section 4 exactly:

1. capture block-entry snapshots for accumulators read with a prime;
2. evaluate the FROM pattern to the compressed binding table;
3. filter rows with WHERE (reads of accumulators see current values);
4. Map phase: one acc-execution per row generates accumulator inputs
   (weighted by the row's multiplicity per Appendix A);
5. Reduce phase: fold the inputs into the accumulators;
6. POST_ACCUM (per distinct vertex);
7. produce the outputs: a vertex-set result and/or the multi-output
   ``INTO`` tables, with DISTINCT / GROUP BY / HAVING / ORDER BY / LIMIT.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import accsan as _accsan
from ..errors import QueryRuntimeError, TractabilityError
from ..governor import faults as _faults
from ..governor import governor as _gov
from ..graph.elements import Vertex
from ..obs import metrics as _obs
from ..paths.semantics import PathSemantics
from .context import QueryContext
from .exprs import (
    AggCall,
    Binary,
    Call,
    CaseExpr,
    EvalEnv,
    Expr,
    Literal,
    TupleExpr,
    Unary,
    contains_aggregate,
    primed_accum_names,
)
from .pattern import BindingRow, EngineMode, Pattern, evaluate_pattern
from .stmts import (
    AccStatement,
    InputBuffer,
    collect_primed_names,
    run_map_phase,
    run_post_accum,
)
from .values import Table, VertexSet


class OutputColumn:
    """One projected column of an INTO fragment: expression plus alias."""

    def __init__(self, expr: Expr, alias: Optional[str] = None):
        self.expr = expr
        self.alias = alias or self._derive_alias(expr)

    @staticmethod
    def _derive_alias(expr: Expr) -> str:
        text = repr(expr)
        return text.replace(" ", "")

    def __repr__(self) -> str:
        return f"{self.expr!r} AS {self.alias}"


class OutputFragment:
    """One semicolon-separated output of a multi-output SELECT clause
    (Example 5): a column list materialized INTO a named table."""

    def __init__(self, columns: Sequence[OutputColumn], into: str):
        if not columns:
            raise QueryRuntimeError("an output fragment needs at least one column")
        self.columns = list(columns)
        self.into = into

    def has_aggregates(self) -> bool:
        return any(contains_aggregate(col.expr) for col in self.columns)

    def __repr__(self) -> str:
        cols = ", ".join(repr(c) for c in self.columns)
        return f"{cols} INTO {self.into}"


class SelectBlock:
    """A full GSQL SELECT block (Figure 2/3/4 shape)."""

    def __init__(
        self,
        pattern: Pattern,
        select_var: Optional[str] = None,
        fragments: Optional[List[OutputFragment]] = None,
        distinct: bool = False,
        where: Optional[Expr] = None,
        accum: Optional[List[AccStatement]] = None,
        post_accum: Optional[List[AccStatement]] = None,
        group_by: Optional[List[Expr]] = None,
        having: Optional[Expr] = None,
        order_by: Optional[List[Tuple[Expr, bool]]] = None,
        limit: Optional[Expr] = None,
        semantics: Optional["PathSemantics"] = None,
    ):
        self.pattern = pattern
        self.select_var = select_var
        self.fragments = fragments or []
        self.distinct = distinct
        self.where = where
        self.accum = accum or []
        self.post_accum = post_accum or []
        self.group_by = group_by or []
        self.having = having
        self.order_by = order_by or []
        self.limit = limit
        #: Per-block matching-semantics override (the "syntactic sugar for
        #: specifying semantic alternatives" Section 6.1 plans; GSQL text:
        #: ``USING SEMANTICS 'no-repeated-edge'`` after the FROM pattern).
        self.semantics = semantics
        #: Static :class:`~repro.core.tractable.TractabilityCertificate`
        #: stamped by the parser (None for programmatically built blocks).
        #: A conclusive certificate lets ``EngineMode.auto()`` pick the
        #: engine and ``_check_tractability`` skip the runtime probe.
        self.certificate = None
        #: Static :class:`~repro.core.tractable.DeterminismCertificate`
        #: from the effect analysis (None for programmatic blocks).  A
        #: COMMUTATIVE stamp licenses ``parallel_accum`` to partition the
        #: ACCUM clause; AccSan replays the block under permuted
        #: schedules to validate the stamp dynamically.
        self.effect_certificate = None
        #: Static :class:`~repro.core.tractable.CostCertificate` from the
        #: cost analysis (None for programmatic blocks): predicted
        #: cardinality intervals the planner tie-breaks on and the
        #: governor/server derive budgets from.
        self.cost_certificate = None

    # ------------------------------------------------------------------
    def execute(self, ctx: QueryContext, mode: EngineMode) -> Optional[VertexSet]:
        col = _obs._ACTIVE
        if col is None:
            return self._execute(ctx, mode, None)
        span = col.span(
            "select_block", label=f"SELECT  FROM {self.pattern!r}"
        )
        try:
            return self._execute(ctx, mode, col)
        finally:
            col.close(span)

    def _execute(
        self, ctx: QueryContext, mode: EngineMode, col
    ) -> Optional[VertexSet]:
        from .planner import and_all, push_down_filters, select_engine

        gov = _gov._ACTIVE
        if gov is not None:
            gov.tick()  # cancellation/deadline checkpoint per block
        if self.semantics is not None:
            mode = mode.for_semantics(self.semantics)
        if mode.kind == EngineMode.AUTO:
            mode = select_engine(self, ctx, mode)
            if col is not None:
                col.count(f"block.engine.{mode.kind}")
        if gov is not None:
            mode = self._maybe_downgrade(mode, gov, col)
        self._check_tractability(ctx, mode)
        primed = self._capture_primed(ctx)

        # Filter pushdown: single-variable WHERE conjuncts apply while the
        # pattern binds (restricting seeds/targets); the rest stays here.
        var_filters, residual_conjuncts = push_down_filters(
            self.where, set(self.pattern.variables())
        )
        residual = and_all(residual_conjuncts)
        if col is not None:
            pattern_span = col.span("pattern")
        try:
            table = evaluate_pattern(ctx, self.pattern, mode, var_filters)
        finally:
            if col is not None:
                col.close(pattern_span)
        rows = table.rows
        if col is not None:
            # Appendix A in two numbers: compressed size vs. the
            # conceptual (path-weighted) size it stands in for.
            pattern_span.set(
                rows=len(rows), multiplicity=table.total_multiplicity()
            )
            col.count("block.binding_rows", len(rows))
            col.count("block.binding_multiplicity", table.total_multiplicity())
        if residual is not None:
            before = len(rows)
            rows = [
                row
                for row in rows
                if residual.eval(EvalEnv(ctx, row.bindings, None, primed))
            ]
            if col is not None:
                col.count("block.rows_filtered_residual", before - len(rows))

        if self.accum:
            if gov is not None:
                # One acc-execution per compressed row — charged up front
                # so a breached cap aborts before any Map work runs.
                gov.charge_acc_executions(len(rows))
            if col is not None:
                map_span = col.span("accum_map", statements=len(self.accum))
            buffer = InputBuffer()
            locals_: Dict[str, Any] = {}
            try:
                try:
                    for row in rows:
                        if _faults._PLAN is not None:
                            _faults.fire("block.accum_map")
                        env = EvalEnv(ctx, row.bindings, locals_, primed)
                        run_map_phase(self.accum, env, buffer, row.multiplicity)
                finally:
                    if col is not None:
                        # One acc-execution per *compressed* row — the count
                        # that stays flat while path multiplicities explode.
                        map_span.set(acc_executions=len(rows))
                        col.count("block.acc_executions", len(rows))
                        col.close(map_span)
                if col is not None:
                    reduce_span = col.span("accum_reduce", inputs=len(buffer))
                try:
                    if _faults._PLAN is not None:
                        _faults.fire("block.reduce")
                    if _accsan._ACTIVE is not None:
                        # Replay the buffered inputs under permuted
                        # schedules *before* the real flush mutates the
                        # live accumulators.
                        _accsan._ACTIVE.check_flush(self, buffer)
                    buffer.flush()
                finally:
                    if col is not None:
                        col.close(reduce_span)
            except BaseException:
                # Any failure between Map start and Reduce end releases
                # the scratch partials: snapshot semantics means the live
                # accumulators were untouched until flush() completed.
                buffer.clear()
                raise

        if self.post_accum:
            if _faults._PLAN is not None:
                _faults.fire("block.post_accum")
            pattern_vars = set(self.pattern.variables())
            if col is not None:
                post_span = col.span(
                    "post_accum", statements=len(self.post_accum)
                )
            try:
                run_post_accum(self.post_accum, ctx, rows, pattern_vars, primed)
            finally:
                if col is not None:
                    col.close(post_span)

        if gov is not None:
            gov.check_memory(ctx)

        for fragment in self.fragments:
            self._emit_fragment(ctx, fragment, rows, primed)

        if self.select_var is not None:
            return self._vertex_set_result(ctx, rows, primed)
        return None

    # ------------------------------------------------------------------
    def _maybe_downgrade(self, mode: EngineMode, gov, col) -> EngineMode:
        """Degradation ladder, first rung: enumeration → counting.

        When the active governor caps materialized paths and this block
        carries a conclusive TRACTABLE certificate, enumeration under a
        counting-compatible semantics is *provably* replaceable by the
        polynomial engine (Theorems 6.1/7.1): same aggregate answer, no
        path materialization.  The governor downgrades pre-emptively —
        before the first path is materialized — instead of letting the
        query burn its budget and die.  Uncertified blocks are left to
        enumerate (and abort on breach): without the certificate the
        engines are not guaranteed to agree.
        """
        if (
            mode.kind != EngineMode.ENUMERATION
            or gov.budget.max_paths is None
            or mode.semantics
            not in (PathSemantics.ALL_SHORTEST, PathSemantics.EXISTENCE)
        ):
            return mode
        cert = self.certificate
        if cert is None:
            return mode
        from .tractable import TractabilityStatus

        if cert.status is not TractabilityStatus.TRACTABLE:
            return mode
        gov.note_downgrade(
            f"SELECT FROM {self.pattern!r}: enumeration downgraded to "
            f"counting (certified tractable, max_paths="
            f"{gov.budget.max_paths})"
        )
        if col is not None:
            col.count("planner.governor_downgrade")
        return EngineMode.counting(
            max_length=mode.max_length, semantics=mode.semantics
        )

    def _check_tractability(self, ctx: QueryContext, mode: EngineMode) -> None:
        """Reject order-dependent accumulation from Kleene patterns.

        Such queries fall outside the tractable class of Section 7: a
        binding with multiplicity μ would have to deposit μ list entries,
        re-creating the exponential blow-up the compressed binding table
        avoids.  (The enumeration engine materializes paths anyway, so the
        combination is permitted there.)
        """
        if mode.kind != EngineMode.COUNTING or not self.pattern.has_kleene():
            return
        cert = self.certificate
        if cert is not None:
            from .tractable import TractabilityStatus

            if cert.status is TractabilityStatus.TRACTABLE:
                return  # statically proven: skip the declaration probe
            if cert.status is TractabilityStatus.ENUMERATION_REQUIRED:
                raise TractabilityError(
                    "this SELECT block is outside the tractable class "
                    "(Section 7): " + "; ".join(cert.witnesses) +
                    " — evaluate it with the enumeration engine "
                    "(or EngineMode.auto() / --engine auto)"
                )
            # UNKNOWN: fall through to the runtime probe below.
        for stmt in self.accum:
            target = getattr(stmt, "target", None)
            if target is None:
                continue
            if not ctx.has_accum(target.name):
                continue
            decl = ctx.declaration(target.name)
            if not decl.order_invariant:
                raise TractabilityError(
                    f"accumulator @{target.name} ({type(decl.factory()).type_name}) "
                    f"is order-dependent and the FROM pattern contains a Kleene "
                    f"star: this query is outside the tractable class "
                    f"(Section 7); evaluate it with the enumeration engine "
                    f"or drop the order-dependent accumulator"
                )

    def _capture_primed(self, ctx: QueryContext) -> Dict[str, Dict[Any, Any]]:
        names = collect_primed_names(self.accum) | collect_primed_names(
            self.post_accum
        )
        for expr in self._all_output_exprs():
            names.update(primed_accum_names(expr))
        snapshots: Dict[str, Dict[Any, Any]] = {}
        for name in names:
            if name.startswith("@@"):
                snapshots[name] = {None: ctx.snapshot_global_accum(name[2:])}
            else:
                snapshots[name] = ctx.snapshot_vertex_accum(name)
        return snapshots

    def _all_output_exprs(self):
        if self.where is not None:
            yield self.where
        for fragment in self.fragments:
            for col in fragment.columns:
                yield col.expr
        for expr, _ in self.order_by:
            yield expr
        if self.having is not None:
            yield self.having
        yield from self.group_by

    # ------------------------------------------------------------------
    # Vertex-set result
    # ------------------------------------------------------------------
    def _vertex_set_result(
        self,
        ctx: QueryContext,
        rows: List[BindingRow],
        primed: Dict[str, Dict[Any, Any]],
    ) -> VertexSet:
        seen = set()
        vertices: List[Vertex] = []
        for row in rows:
            vertex = row.bindings.get(self.select_var)
            if vertex is None:
                raise QueryRuntimeError(
                    f"SELECT variable {self.select_var!r} is not bound by "
                    f"the FROM pattern"
                )
            if not isinstance(vertex, Vertex):
                raise QueryRuntimeError(
                    f"SELECT variable {self.select_var!r} binds to a "
                    f"non-vertex; vertex-set results need a vertex variable"
                )
            if vertex.vid not in seen:
                seen.add(vertex.vid)
                vertices.append(vertex)
        if self.order_by:
            def sort_key(v: Vertex):
                env = EvalEnv(ctx, {self.select_var: v}, None, primed)
                return tuple(
                    _OrderKey(expr.eval(env), desc) for expr, desc in self.order_by
                )

            vertices.sort(key=sort_key)
        if self.limit is not None:
            env = EvalEnv(ctx, {}, None, primed)
            vertices = vertices[: int(self.limit.eval(env))]
        return VertexSet(ctx.graph, vertices)

    # ------------------------------------------------------------------
    # INTO fragments
    # ------------------------------------------------------------------
    def _emit_fragment(
        self,
        ctx: QueryContext,
        fragment: OutputFragment,
        rows: List[BindingRow],
        primed: Dict[str, Dict[Any, Any]],
    ) -> None:
        out = Table(fragment.into, [col.alias for col in fragment.columns])
        if fragment.has_aggregates() or self.group_by:
            keyed_rows = self._aggregate_rows(ctx, fragment, rows, primed)
        else:
            keyed_rows = self._plain_rows(ctx, fragment, rows, primed)
        if self.order_by:
            keyed_rows.sort(key=lambda pair: pair[0])
        for _, row in keyed_rows:
            out.append(row)
        if self.limit is not None:
            env = EvalEnv(ctx, {}, None, primed)
            out.truncate(int(self.limit.eval(env)))
        ctx.tables[fragment.into] = out

    def _plain_rows(self, ctx, fragment, rows, primed):
        """Project per binding row, collapsing duplicate output tuples.

        GSQL SELECT fragments materialize each distinct projected tuple
        once: duplicates would only reflect path multiplicities, which the
        accumulators already aggregate.
        """
        seen = set()
        out = []
        for row in rows:
            env = EvalEnv(ctx, row.bindings, None, primed)
            projected = tuple(col.expr.eval(env) for col in fragment.columns)
            try:
                key = projected
                dup = key in seen
            except TypeError:
                dup = False  # unhashable values are kept as-is
                key = None
            if dup:
                continue
            if key is not None:
                seen.add(key)
            sort_key = tuple(
                _OrderKey(expr.eval(env), desc) for expr, desc in self.order_by
            )
            out.append((sort_key, projected))
        return out

    def _aggregate_rows(self, ctx, fragment, rows, primed):
        """SQL-style grouped aggregation over the (weighted) binding table."""
        groups: Dict[Tuple, List[BindingRow]] = {}
        order: List[Tuple] = []
        for row in rows:
            env = EvalEnv(ctx, row.bindings, None, primed)
            key = tuple(expr.eval(env) for expr in self.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        out = []
        for key in order:
            group = groups[key]
            rep_env = EvalEnv(ctx, group[0].bindings, None, primed)
            if self.having is not None and not _eval_in_group(
                self.having, ctx, group, rep_env, primed
            ):
                continue
            projected = tuple(
                _eval_in_group(col.expr, ctx, group, rep_env, primed)
                for col in fragment.columns
            )
            sort_key = tuple(
                _OrderKey(_eval_in_group(expr, ctx, group, rep_env, primed), desc)
                for expr, desc in self.order_by
            )
            out.append((sort_key, projected))
        return out


class _OrderKey:
    """Sort key wrapper handling DESC and None-last ordering."""

    __slots__ = ("value", "desc")

    def __init__(self, value: Any, desc: bool):
        self.value = value
        self.desc = desc

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if a is None:
            return False
        if b is None:
            return True
        if self.desc:
            return b < a
        return a < b

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self.value == other.value


def _eval_in_group(
    expr: Expr,
    ctx: QueryContext,
    group: List[BindingRow],
    rep_env: EvalEnv,
    primed: Dict[str, Dict[Any, Any]],
) -> Any:
    """Evaluate an expression in a GROUP BY group.

    Aggregate calls fold over the group's rows with their multiplicities
    (SQL bag semantics over the conceptual uncompressed table); everything
    else evaluates against a representative row — well-defined for group
    keys, which are constant within a group.
    """
    if not contains_aggregate(expr):
        return expr.eval(rep_env)
    if isinstance(expr, AggCall):
        weighted: List[Tuple[Any, int]] = []
        for row in group:
            env = EvalEnv(ctx, row.bindings, None, primed)
            value = expr.arg.eval(env) if expr.arg is not None else 1
            weighted.append((value, row.multiplicity))
        return expr.apply(weighted)
    if isinstance(expr, Binary):
        left = _eval_in_group(expr.left, ctx, group, rep_env, primed)
        right = _eval_in_group(expr.right, ctx, group, rep_env, primed)
        return Binary(expr.op, Literal(left), Literal(right)).eval(rep_env)
    if isinstance(expr, Unary):
        inner = _eval_in_group(expr.operand, ctx, group, rep_env, primed)
        return Unary(expr.op, Literal(inner)).eval(rep_env)
    if isinstance(expr, Call):
        args = [
            Literal(_eval_in_group(a, ctx, group, rep_env, primed))
            for a in expr.args
        ]
        return Call(expr.name, args).eval(rep_env)
    if isinstance(expr, TupleExpr):
        return tuple(
            _eval_in_group(item, ctx, group, rep_env, primed) for item in expr.items
        )
    if isinstance(expr, CaseExpr):
        for cond, result in expr.whens:
            if _eval_in_group(cond, ctx, group, rep_env, primed):
                return _eval_in_group(result, ctx, group, rep_env, primed)
        if expr.default is not None:
            return _eval_in_group(expr.default, ctx, group, rep_env, primed)
        return None
    raise QueryRuntimeError(
        f"aggregates may not appear under {type(expr).__name__} expressions"
    )


__all__ = ["OutputColumn", "OutputFragment", "SelectBlock"]
