"""Light query planning: filter pushdown and hop-direction choice.

Two rewrites every real engine performs, both essential for the paper's
experiments to be *runnable* (not just asymptotically honest):

1. **Filter pushdown.**  WHERE conjuncts that reference a single pattern
   variable (``s.name == srcName``) are applied the moment that variable
   is bound — restricting the chain's seed set or a hop's targets —
   instead of after the full cartesian expansion.  The Qn query of
   Section 7.1 seeds from one vertex instead of all 91.

2. **Hop reversal.**  When a hop's *target* is pinned down to at most as
   many vertices as its sources, the hop is evaluated from the target
   side over the reversed DARPE.  For an enumeration engine this is the
   difference between exploring the whole graph and exploring the
   ``2^n`` paths the paper's Table 1 actually measures (Neo4j's observed
   times scale with the target index n, i.e. it effectively expands from
   the bound endpoint with the smaller frontier).

The pushdown is conservative: only conjuncts of a top-level AND chain
whose free pattern variables form a singleton move; accumulator reads are
safe to evaluate early because WHERE already reads the block-entry
snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..darpe.ast import (
    Alt,
    Concat,
    DarpeNode,
    Epsilon,
    Repeat,
    Star,
    Symbol,
)
from ..graph.elements import FORWARD, REVERSE
from ..obs import metrics as _obs
from .exprs import Binary, Expr, primed_accum_names, referenced_names
from .pattern import EngineMode
from .tractable import TractabilityStatus


def split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten a top-level AND chain into its conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def push_down_filters(
    where: Optional[Expr], pattern_vars: Set[str]
) -> Tuple[Dict[str, List[Expr]], List[Expr]]:
    """Split WHERE into per-variable filters and a residual conjunct list.

    A conjunct moves to variable ``v`` when ``v`` is the only pattern
    variable it references (names that are not pattern variables resolve
    to parameters/sets and are bind-time constants).
    """
    per_var: Dict[str, List[Expr]] = {}
    residual: List[Expr] = []
    for conjunct in split_conjuncts(where):
        free = {
            name for name in referenced_names(conjunct) if name in pattern_vars
        }
        # Primed reads need the block's snapshot environment; keep them in
        # the residual where that environment is available.
        if len(free) == 1 and not any(primed_accum_names(conjunct)):
            per_var.setdefault(next(iter(free)), []).append(conjunct)
        else:
            residual.append(conjunct)
    col = _obs._ACTIVE
    if col is not None and (per_var or residual):
        col.count(
            "planner.pushdown_conjuncts", sum(len(f) for f in per_var.values())
        )
        col.count("planner.residual_conjuncts", len(residual))
    return per_var, residual


def and_all(conjuncts: List[Expr]) -> Optional[Expr]:
    """Re-assemble a conjunct list into one expression (None if empty)."""
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for part in conjuncts[1:]:
        expr = Binary("AND", expr, part)
    return expr


def _runtime_status(block, ctx) -> TractabilityStatus:
    """Classify a block by probing live declarations (no certificate).

    The same decision the static analysis makes, taken from the runtime
    context instead: programmatically built queries never pass through
    the parser, so they carry no certificate.
    """
    if not block.pattern.has_kleene():
        return TractabilityStatus.TRACTABLE
    for stmt in block.accum:
        target = getattr(stmt, "target", None)
        if target is None:
            continue
        if not ctx.has_accum(target.name):
            continue
        decl = ctx.declaration(target.name)
        if decl is not None and not decl.order_invariant:
            return TractabilityStatus.ENUMERATION_REQUIRED
    return TractabilityStatus.TRACTABLE


def select_engine(block, ctx, mode: EngineMode) -> EngineMode:
    """Resolve an ``EngineMode.auto()`` to a concrete engine per block.

    A static :class:`~repro.core.tractable.TractabilityCertificate`
    (attached by the parser) decides when it is conclusive; UNKNOWN or
    missing certificates fall back to probing the live declarations.
    Intractable blocks run the enumeration engine under the same
    all-shortest-paths semantics, which is result-equivalent, just
    exponential instead of polynomial in path count.
    """
    if mode.kind != EngineMode.AUTO:
        return mode
    cert = getattr(block, "certificate", None)
    status = cert.status if cert is not None else None
    source = "certificate"
    if status is None or status is TractabilityStatus.UNKNOWN:
        status = _runtime_status(block, ctx)
        source = "runtime-probe"
    col = _obs._ACTIVE
    effect = getattr(block, "effect_certificate", None)
    if col is not None and effect is not None:
        # Not an engine choice today, but the planner records what the
        # effect analysis proved: commutative blocks are the candidates
        # for a parallel Map phase, delta-maintainable ones for
        # incremental re-evaluation (ROADMAP 4a).
        col.count(f"planner.effects.{effect.status.value}")
        if effect.delta_maintainable:
            col.count("planner.effects.delta_maintainable")
    if status is TractabilityStatus.ENUMERATION_REQUIRED:
        if col is not None:
            col.count("planner.auto_enumeration")
            col.count(f"planner.auto_source.{source}")
        return EngineMode.enumeration(
            mode.semantics, budget=mode.budget, max_length=mode.max_length
        )
    # A TRACTABLE verdict is a tie: both engines are result-equivalent.
    # When a statistics-aware cost certificate predicts strictly fewer
    # materialized paths than SDMC product states, enumeration is the
    # cheaper engine — break the tie on the prediction.  (Parse-time
    # structural certificates leave paths unbounded, so this only fires
    # after a consumer re-stamped with a GraphStatsSnapshot.)
    if status is TractabilityStatus.TRACTABLE:
        cost = getattr(block, "cost_certificate", None)
        if (
            cost is not None
            and cost.stats_fingerprint is not None
            and cost.paths.hi is not None
            and (
                cost.product_states.hi is None
                or cost.paths.hi < cost.product_states.hi
            )
        ):
            if col is not None:
                col.count("planner.auto_enumeration")
                col.count("planner.auto_cost_tiebreak")
                col.count(f"planner.auto_source.{source}")
            return EngineMode.enumeration(
                mode.semantics, budget=mode.budget, max_length=mode.max_length
            )
    if col is not None:
        col.count("planner.auto_counting")
        col.count(f"planner.auto_source.{source}")
    return EngineMode.counting(
        max_length=mode.max_length, semantics=mode.semantics
    )


def compile_time_engine(block) -> Optional[str]:
    """The *compiled tier* of ``EngineMode.auto()``.

    When a block carries a conclusive tractability certificate, the AUTO
    resolution is a pure function of the certificate — so the lowering
    pass (:mod:`repro.compile`) bakes the choice into the plan and the
    per-execution path skips :func:`select_engine` entirely.  Returns
    ``"counting"`` / ``"enumeration"``, or None when the certificate is
    missing or UNKNOWN (the compiled block then falls back to the same
    runtime declaration probe the interpreter uses).
    """
    cert = getattr(block, "certificate", None)
    if cert is None:
        return None
    if cert.status is TractabilityStatus.ENUMERATION_REQUIRED:
        return "enumeration"
    if cert.status is TractabilityStatus.TRACTABLE:
        return "counting"
    return None


def reverse_darpe(node: DarpeNode) -> DarpeNode:
    """The DARPE matching exactly the reversals of the original's paths.

    Concatenations flip order; directed symbols flip orientation;
    undirected symbols and repetition structure are preserved.
    """
    if isinstance(node, Symbol):
        if node.direction == FORWARD:
            return Symbol(node.edge_type, REVERSE)
        if node.direction == REVERSE:
            return Symbol(node.edge_type, FORWARD)
        return node
    if isinstance(node, Epsilon):
        return node
    if isinstance(node, Concat):
        return Concat(tuple(reverse_darpe(p) for p in reversed(node.parts)))
    if isinstance(node, Alt):
        return Alt(tuple(reverse_darpe(p) for p in node.parts))
    if isinstance(node, Star):
        return Star(reverse_darpe(node.inner))
    if isinstance(node, Repeat):
        return Repeat(reverse_darpe(node.inner), node.min_count, node.max_count)
    raise TypeError(f"unknown DARPE node {node!r}")


__all__ = [
    "split_conjuncts",
    "push_down_filters",
    "and_all",
    "reverse_darpe",
    "select_engine",
    "compile_time_engine",
]
