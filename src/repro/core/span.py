"""Source spans: where an AST node came from in the query text.

The GSQL lexer stamps every token with line/column/offset information;
the parser threads those positions onto the AST nodes it builds so that
diagnostics (``repro.analysis``) can point at the exact source range and
render caret-underlined excerpts.  Programmatically built queries carry
no spans — every consumer treats a missing span as "location unknown".
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional


class Span(NamedTuple):
    """A half-open source range ``[start, end)`` with 1-based line/column
    coordinates for both endpoints (``end_column`` is the column just
    past the last character)."""

    line: int
    column: int
    end_line: int
    end_column: int
    start: int
    end: int

    @classmethod
    def from_token(cls, token: Any) -> "Span":
        """The span of one lexer token."""
        width = max(token.end - token.start, 1)
        return cls(
            token.line,
            token.column,
            token.line,
            token.column + width,
            token.start,
            token.end,
        )

    @classmethod
    def between(cls, first: Any, last: Any) -> "Span":
        """The span from the start of ``first`` to the end of ``last``
        (both lexer tokens)."""
        last_width = max(last.end - last.start, 1)
        return cls(
            first.line,
            first.column,
            last.line,
            last.column + last_width,
            first.start,
            last.end,
        )

    @classmethod
    def at(cls, line: int, column: int, width: int = 1) -> "Span":
        """A synthetic span for positions known only by line/column
        (e.g. re-wrapped syntax errors)."""
        return cls(line, column, line, column + width, -1, -1)

    def merge(self, other: Optional["Span"]) -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        if other is None:
            return self
        lo, hi = (self, other) if self.start <= other.start else (other, self)
        return Span(lo.line, lo.column, hi.end_line, hi.end_column, lo.start, hi.end)

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


def span_of(node: Any) -> Optional[Span]:
    """The node's source span, or None for programmatically built nodes."""
    return getattr(node, "span", None)


__all__ = ["Span", "span_of"]
