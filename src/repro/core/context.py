"""Query execution context: parameters, accumulators, vertex sets.

The context owns the accumulator state a query manipulates:

* one instance per declared *global* accumulator (``@@name``);
* a lazily-populated family of instances per declared *vertex*
  accumulator (``@name``), keyed by vertex id — "each vertex storing its
  own local accumulator instance" (Section 3).

Lazy instantiation matters: queries over large graphs typically touch a
small working set of vertices, and GSQL vertex accumulators behave as if
every vertex had one from the start (reads of untouched instances yield
the type's default), which is exactly what on-demand creation gives.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..accum.base import Accumulator
from ..errors import QueryCompileError, QueryRuntimeError
from ..graph.graph import Graph
from .values import Table, VertexSet

#: Accumulator scopes.
GLOBAL = "global"
VERTEX = "vertex"


class AccumDecl:
    """A declared accumulator: name, scope and instance factory.

    ``factory`` is a zero-argument callable returning a fresh
    :class:`~repro.accum.base.Accumulator`; for vertex scope it is invoked
    once per touched vertex.
    """

    def __init__(self, name: str, scope: str, factory: Callable[[], Accumulator]):
        if scope not in (GLOBAL, VERTEX):
            raise QueryCompileError(f"unknown accumulator scope {scope!r}")
        if name.startswith("@"):
            raise QueryCompileError(
                "declare accumulators with bare names; the @/@@ prefix is "
                "implied by the scope"
            )
        self.name = name
        self.scope = scope
        self.factory = factory
        probe = factory()
        if not isinstance(probe, Accumulator):
            raise QueryCompileError(
                f"accumulator {name!r}: factory must produce Accumulator "
                f"instances, got {type(probe).__name__}"
            )
        self.order_invariant = probe.order_invariant

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        prefix = "@@" if self.scope == GLOBAL else "@"
        return f"AccumDecl({prefix}{self.name})"


class QueryContext:
    """All mutable state of one query execution."""

    def __init__(self, graph: Graph, params: Optional[Dict[str, Any]] = None):
        self.graph = graph
        self.params: Dict[str, Any] = dict(params) if params else {}
        self._decls: Dict[str, AccumDecl] = {}
        self._globals: Dict[str, Accumulator] = {}
        self._vertex_accums: Dict[str, Dict[Any, Accumulator]] = {}
        self.vertex_sets: Dict[str, VertexSet] = {}
        self.tables: Dict[str, Table] = {}
        #: Queries callable from expressions (GSQL subquery composition).
        self.subqueries: Dict[str, Any] = {}
        self.printed: list = []
        self.returned: Any = None

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def declare(self, decl: AccumDecl) -> None:
        if decl.name in self._decls:
            raise QueryCompileError(f"accumulator {decl.name!r} already declared")
        self._decls[decl.name] = decl
        if decl.scope == GLOBAL:
            self._globals[decl.name] = decl.factory()
        else:
            self._vertex_accums[decl.name] = {}

    def declaration(self, name: str) -> AccumDecl:
        decl = self._decls.get(name)
        if decl is None:
            raise QueryRuntimeError(f"accumulator {name!r} was never declared")
        return decl

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def global_accum(self, name: str) -> Accumulator:
        acc = self._globals.get(name)
        if acc is None:
            decl = self._decls.get(name)
            if decl is not None and decl.scope == VERTEX:
                raise QueryRuntimeError(
                    f"@{name} is a vertex accumulator; use v.@{name}"
                )
            raise QueryRuntimeError(f"unknown global accumulator @@{name}")
        return acc

    def vertex_accum(self, name: str, vid: Any) -> Accumulator:
        family = self._vertex_accums.get(name)
        if family is None:
            decl = self._decls.get(name)
            if decl is not None and decl.scope == GLOBAL:
                raise QueryRuntimeError(
                    f"@@{name} is a global accumulator; do not qualify it "
                    f"with a vertex"
                )
            raise QueryRuntimeError(f"unknown vertex accumulator @{name}")
        acc = family.get(vid)
        if acc is None:
            acc = self._decls[name].factory()
            family[vid] = acc
        return acc

    def vertex_accum_resolver(self, name: str) -> Callable[[Any], Accumulator]:
        """A ``vid -> instance`` closure with the family lookup hoisted.

        The compiled Map kernel resolves instances once per row; this
        pre-binds the per-name dict and factory so the per-row path is
        one dict probe.  Undeclared or wrongly-scoped names return a
        delegating closure instead of raising here, so a zero-row block
        errors (or not) exactly like the interpreter.
        """
        family = self._vertex_accums.get(name)
        if family is None:
            return lambda vid: self.vertex_accum(name, vid)
        factory = self._decls[name].factory
        get = family.get

        def resolve(vid: Any) -> Accumulator:
            acc = get(vid)
            if acc is None:
                acc = factory()
                family[vid] = acc
            return acc

        return resolve

    def vertex_accum_values(self, name: str) -> Iterator[Tuple[Any, Any]]:
        """(vertex id, value) pairs for every *materialized* instance."""
        family = self._vertex_accums.get(name)
        if family is None:
            raise QueryRuntimeError(f"unknown vertex accumulator @{name}")
        return ((vid, acc.value) for vid, acc in family.items())

    def has_accum(self, name: str) -> bool:
        return name in self._decls

    def global_accum_names(self) -> Tuple[str, ...]:
        return tuple(self._globals)

    def vertex_accum_names(self) -> Tuple[str, ...]:
        return tuple(self._vertex_accums)

    # ------------------------------------------------------------------
    # Snapshots (primed reads: v.@acc')
    # ------------------------------------------------------------------
    def snapshot_vertex_accum(self, name: str) -> Dict[Any, Any]:
        """Copy the current values of a vertex accumulator family.

        Taken at block entry for accumulators the block reads with the
        prime suffix (``v.@score'`` in the PageRank of Figure 4), so the
        previous iteration's values stay readable after this block's
        Reduce phase overwrites the live instances.
        """
        family = self._vertex_accums.get(name)
        if family is None:
            raise QueryRuntimeError(f"unknown vertex accumulator @{name}")
        return {vid: acc.value for vid, acc in family.items()}

    def snapshot_global_accum(self, name: str) -> Any:
        return self.global_accum(name).value

    # ------------------------------------------------------------------
    # Vertex sets and tables
    # ------------------------------------------------------------------
    def set_vertex_set(self, name: str, vset: VertexSet) -> None:
        self.vertex_sets[name] = vset

    def vertex_set(self, name: str) -> VertexSet:
        vset = self.vertex_sets.get(name)
        if vset is None:
            raise QueryRuntimeError(f"unknown vertex set {name!r}")
        return vset

    def table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise QueryRuntimeError(f"unknown table {name!r}")
        return table

    def param(self, name: str) -> Any:
        if name not in self.params:
            raise QueryRuntimeError(f"unknown parameter {name!r}")
        return self.params[name]


__all__ = ["AccumDecl", "QueryContext", "GLOBAL", "VERTEX"]
