"""Expression AST and evaluator for the query engine.

Expressions appear in WHERE/HAVING conditions, ACCUM/POST_ACCUM statement
right-hand sides, SELECT output lists, ORDER BY keys and control-flow
conditions.  The same AST is produced by the GSQL parser and by the
programmatic query-builder API.

Name resolution is dynamic and follows GSQL's scoping: ACCUM-local
variables shadow pattern variables, which shadow query parameters, which
shadow vertex-set variables.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..accum.mapaccum import MapAccum
from ..accum.tuples import TupleValue
from ..errors import QueryRuntimeError
from ..graph.elements import Edge, Vertex
from .context import QueryContext
from .values import VertexSet


class EvalEnv:
    """One expression-evaluation environment.

    ``row`` holds the pattern-variable bindings of the current binding-table
    row; ``locals`` the ACCUM-local variables; ``primed`` the block-entry
    snapshots backing ``v.@acc'`` reads.
    """

    __slots__ = ("ctx", "row", "locals", "primed")

    def __init__(
        self,
        ctx: QueryContext,
        row: Optional[Dict[str, Any]] = None,
        locals_: Optional[Dict[str, Any]] = None,
        primed: Optional[Dict[str, Dict[Any, Any]]] = None,
    ):
        self.ctx = ctx
        self.row = row or {}
        self.locals = locals_ if locals_ is not None else {}
        self.primed = primed or {}

    def child_with_locals(self) -> "EvalEnv":
        return EvalEnv(self.ctx, self.row, dict(self.locals), self.primed)


class Expr:
    """Base expression node.

    ``span`` (a :class:`repro.core.span.Span`) is set by the GSQL parser
    on nodes built from query text; programmatically built expressions
    leave it unset and ``getattr(expr, "span", None)`` reads None.
    """

    __slots__ = ("span",)

    def eval(self, env: EvalEnv) -> Any:
        raise NotImplementedError

    def children(self) -> Iterator["Expr"]:
        return iter(())

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()


class Literal(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def eval(self, env: EvalEnv) -> Any:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


class NameRef(Expr):
    """A bare identifier: local var, pattern var, parameter or vertex set."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def eval(self, env: EvalEnv) -> Any:
        if self.name in env.locals:
            return env.locals[self.name]
        if self.name in env.row:
            return env.row[self.name]
        if self.name in env.ctx.params:
            return env.ctx.params[self.name]
        if self.name in env.ctx.vertex_sets:
            return env.ctx.vertex_sets[self.name]
        if self.name in env.ctx.tables:
            return env.ctx.tables[self.name]
        raise QueryRuntimeError(f"unknown name {self.name!r} in expression")

    def __repr__(self) -> str:
        return self.name


class AttrRef(Expr):
    """Attribute access ``base.attr`` on vertices, edges, tuples, dicts."""

    __slots__ = ("base", "attr")

    def __init__(self, base: Expr, attr: str):
        self.base = base
        self.attr = attr

    def children(self) -> Iterator[Expr]:
        yield self.base

    def eval(self, env: EvalEnv) -> Any:
        base = self.base.eval(env)
        if isinstance(base, (Vertex, Edge)):
            if self.attr in base:
                return base[self.attr]
            raise QueryRuntimeError(
                f"{base!r} has no attribute {self.attr!r}"
            )
        if isinstance(base, TupleValue):
            return base.get(self.attr)
        if isinstance(base, dict):
            try:
                return base[self.attr]
            except KeyError:
                raise QueryRuntimeError(
                    f"map has no key {self.attr!r}"
                ) from None
        raise QueryRuntimeError(
            f"cannot read attribute {self.attr!r} of {type(base).__name__}"
        )

    def __repr__(self) -> str:
        return f"{self.base!r}.{self.attr}"


class GlobalAccumRef(Expr):
    """``@@name`` — the value of a global accumulator.

    SQL-borrowed clauses interpret it "as a constant equal to the internal
    value" (Section 4.2), which is exactly what evaluation yields.
    """

    __slots__ = ("name", "primed")

    def __init__(self, name: str, primed: bool = False):
        self.name = name
        self.primed = primed

    def eval(self, env: EvalEnv) -> Any:
        if self.primed:
            snap = env.primed.get("@@" + self.name)
            if snap is None:
                raise QueryRuntimeError(
                    f"no snapshot for @@{self.name}' (primed reads are only "
                    f"valid inside a query block)"
                )
            return snap.get(None)
        return env.ctx.global_accum(self.name).value

    def __repr__(self) -> str:
        return f"@@{self.name}" + ("'" if self.primed else "")


class VertexAccumRef(Expr):
    """``v.@name`` — the value of a vertex accumulator instance; with
    ``primed=True``, the block-entry snapshot value ``v.@name'``."""

    __slots__ = ("base", "name", "primed")

    def __init__(self, base: Expr, name: str, primed: bool = False):
        self.base = base
        self.name = name
        self.primed = primed

    def children(self) -> Iterator[Expr]:
        yield self.base

    def eval(self, env: EvalEnv) -> Any:
        vertex = self.base.eval(env)
        if not isinstance(vertex, Vertex):
            raise QueryRuntimeError(
                f"@{self.name} must be read through a vertex variable, "
                f"got {type(vertex).__name__}"
            )
        if self.primed:
            snap = env.primed.get(self.name)
            if snap is None:
                raise QueryRuntimeError(
                    f"no snapshot for @{self.name}' (the block never "
                    f"captured one)"
                )
            # A vertex whose accumulator was never materialized reads the
            # declared default.
            if vertex.vid in snap:
                return snap[vertex.vid]
            return env.ctx.declaration(self.name).factory().value
        return env.ctx.vertex_accum(self.name, vertex.vid).value

    def __repr__(self) -> str:
        return f"{self.base!r}.@{self.name}" + ("'" if self.primed else "")


def _numeric_guard(op: str, left: Any, right: Any) -> None:
    if left is None or right is None:
        raise QueryRuntimeError(
            f"operator {op!r} applied to NULL operand "
            f"({left!r} {op} {right!r})"
        )


_BINARY_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Binary(Expr):
    """Binary operator.  ``AND``/``OR`` short-circuit; ``IN`` tests
    membership in sets/lists/vertex sets."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op.upper() if op.upper() in ("AND", "OR", "IN", "NOT IN") else op
        if self.op == "<>":
            self.op = "!="
        self.left = left
        self.right = right

    def children(self) -> Iterator[Expr]:
        yield self.left
        yield self.right

    def eval(self, env: EvalEnv) -> Any:
        if self.op == "AND":
            return bool(self.left.eval(env)) and bool(self.right.eval(env))
        if self.op == "OR":
            return bool(self.left.eval(env)) or bool(self.right.eval(env))
        left = self.left.eval(env)
        right = self.right.eval(env)
        if self.op in ("IN", "NOT IN"):
            contained = self._contains(left, right)
            return contained if self.op == "IN" else not contained
        fn = _BINARY_OPS.get(self.op)
        if fn is None:
            raise QueryRuntimeError(f"unknown operator {self.op!r}")
        if self.op in ("+", "-", "*", "/", "%", "<", "<=", ">", ">="):
            _numeric_guard(self.op, left, right)
        try:
            return fn(left, right)
        except ZeroDivisionError:
            raise QueryRuntimeError(
                f"division by zero: {left!r} {self.op} {right!r}"
            ) from None
        except TypeError as exc:
            raise QueryRuntimeError(
                f"type error in {left!r} {self.op} {right!r}: {exc}"
            ) from None

    @staticmethod
    def _contains(item: Any, container: Any) -> bool:
        if isinstance(container, VertexSet):
            return item in container
        if isinstance(container, MapAccum):
            return item in container
        try:
            return item in container
        except TypeError:
            raise QueryRuntimeError(
                f"right side of IN is not a collection: {container!r}"
            ) from None

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        self.op = op.upper() if op.upper() == "NOT" else op
        self.operand = operand

    def children(self) -> Iterator[Expr]:
        yield self.operand

    def eval(self, env: EvalEnv) -> Any:
        value = self.operand.eval(env)
        if self.op == "NOT":
            return not bool(value)
        if self.op == "-":
            if value is None:
                raise QueryRuntimeError("unary minus applied to NULL")
            return -value
        if self.op == "+":
            return value
        raise QueryRuntimeError(f"unknown unary operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"


def _fn_year(x: Any) -> int:
    """Year of a yyyymmdd-encoded date (the encoding used by the LDBC
    substrate)."""
    return int(x) // 10000


def _fn_month(x: Any) -> int:
    return int(x) // 100 % 100


def _fn_day(x: Any) -> int:
    return int(x) % 100


_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": abs,
    "log": math.log,
    "log2": math.log2,
    "log10": math.log10,
    "exp": math.exp,
    "sqrt": math.sqrt,
    "pow": pow,
    "floor": math.floor,
    "ceil": math.ceil,
    "round": round,
    "min": min,
    "max": max,
    "float": float,
    "int": int,
    "str": str,
    "to_string": str,
    "lower": lambda s: s.lower(),
    "upper": lambda s: s.upper(),
    "trim": lambda s: s.strip(),
    "ltrim": lambda s: s.lstrip(),
    "rtrim": lambda s: s.rstrip(),
    "substr": lambda s, start, count=None: (
        s[start:] if count is None else s[start : start + count]
    ),
    "find": lambda s, sub: s.find(sub),
    "replace": lambda s, old, new: s.replace(old, new),
    "contains": lambda s, sub: sub in s,
    "starts_with": lambda s, prefix: s.startswith(prefix),
    "ends_with": lambda s, suffix: s.endswith(suffix),
    "split": lambda s, sep: tuple(s.split(sep)),
    "concat": lambda *parts: "".join(str(p) for p in parts),
    "length": len,
    "size": len,
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
    "year": _fn_year,
    "month": _fn_month,
    "day": _fn_day,
}


class Call(Expr):
    """Function call: a builtin (``log(1 + o.@inCommon)``) or a
    registered subquery (GSQL's query-calling-query composition —
    resolved through the context's subquery registry, invoked with
    positional arguments, evaluating to its RETURN value)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr]):
        self.name = name
        self.args = tuple(args)

    def children(self) -> Iterator[Expr]:
        yield from self.args

    def eval(self, env: EvalEnv) -> Any:
        fn = _FUNCTIONS.get(self.name.lower())
        values = [arg.eval(env) for arg in self.args]
        if fn is None:
            subquery = env.ctx.subqueries.get(self.name)
            if subquery is None:
                raise QueryRuntimeError(
                    f"unknown function or subquery {self.name!r}"
                )
            return _run_subquery(env.ctx, subquery, values)
        try:
            return fn(*values)
        except (ValueError, TypeError) as exc:
            raise QueryRuntimeError(
                f"error in {self.name}({', '.join(map(repr, values))}): {exc}"
            ) from None

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


class Method(Expr):
    """Method call ``base.method(args)``.

    On vertices: ``outdegree([edge_type])``, ``indegree([edge_type])``,
    ``id()``, ``type()``.  On collection values: ``size()``,
    ``contains(x)``, ``get(key[, default])``; on heap values ``top()``.
    """

    __slots__ = ("base", "name", "args")

    def __init__(self, base: Expr, name: str, args: Sequence[Expr]):
        self.base = base
        self.name = name
        self.args = tuple(args)

    def children(self) -> Iterator[Expr]:
        yield self.base
        yield from self.args

    def eval(self, env: EvalEnv) -> Any:
        base = self.base.eval(env)
        args = [arg.eval(env) for arg in self.args]
        name = self.name.lower()
        if isinstance(base, Vertex):
            if name == "outdegree":
                return env.ctx.graph.outdegree(base.vid, *args)
            if name == "indegree":
                return env.ctx.graph.indegree(base.vid, *args)
            if name == "id":
                return base.vid
            if name == "type":
                return base.type
            raise QueryRuntimeError(f"vertices have no method {self.name!r}")
        if isinstance(base, Edge) and name == "type":
            return base.type
        if name == "size":
            try:
                return len(base)
            except TypeError:
                raise QueryRuntimeError(
                    f".size() on non-collection {base!r}"
                ) from None
        if name == "contains":
            return args[0] in base
        if name == "get":
            if isinstance(base, dict):
                return base.get(*args)
            raise QueryRuntimeError(f".get() on non-map {base!r}")
        if name == "top":
            items = base if isinstance(base, tuple) else tuple(base)
            return items[0] if items else None
        raise QueryRuntimeError(
            f"unknown method {self.name!r} on {type(base).__name__}"
        )

    def __repr__(self) -> str:
        return f"{self.base!r}.{self.name}({', '.join(map(repr, self.args))})"


class TupleExpr(Expr):
    """A plain tuple literal ``(a, b, c)`` (heap inputs, composite keys)."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]):
        self.items = tuple(items)

    def children(self) -> Iterator[Expr]:
        yield from self.items

    def eval(self, env: EvalEnv) -> Tuple[Any, ...]:
        return tuple(item.eval(env) for item in self.items)

    def __repr__(self) -> str:
        return f"({', '.join(map(repr, self.items))})"


class ArrowExpr(Expr):
    """The GroupByAccum input form ``(k1, k2 -> a1, a2)`` (Example 12)."""

    __slots__ = ("keys", "values")

    def __init__(self, keys: Sequence[Expr], values: Sequence[Expr]):
        self.keys = tuple(keys)
        self.values = tuple(values)

    def children(self) -> Iterator[Expr]:
        yield from self.keys
        yield from self.values

    def eval(self, env: EvalEnv) -> Tuple[Tuple[Any, ...], Tuple[Any, ...]]:
        return (
            tuple(k.eval(env) for k in self.keys),
            tuple(v.eval(env) for v in self.values),
        )

    def __repr__(self) -> str:
        keys = ", ".join(map(repr, self.keys))
        values = ", ".join(map(repr, self.values))
        return f"({keys} -> {values})"


class CaseExpr(Expr):
    """``CASE WHEN c1 THEN e1 ... ELSE e END``."""

    __slots__ = ("whens", "default")

    def __init__(self, whens: Sequence[Tuple[Expr, Expr]], default: Optional[Expr]):
        self.whens = tuple(whens)
        self.default = default

    def children(self) -> Iterator[Expr]:
        for cond, result in self.whens:
            yield cond
            yield result
        if self.default is not None:
            yield self.default

    def eval(self, env: EvalEnv) -> Any:
        for cond, result in self.whens:
            if cond.eval(env):
                return result.eval(env)
        if self.default is not None:
            return self.default.eval(env)
        return None

    def __repr__(self) -> str:
        body = " ".join(f"WHEN {c!r} THEN {r!r}" for c, r in self.whens)
        tail = f" ELSE {self.default!r}" if self.default is not None else ""
        return f"CASE {body}{tail} END"


class AggCall(Expr):
    """A SQL aggregate (count/sum/min/max/avg) inside a SELECT output.

    Never evaluated directly — the SELECT executor groups rows and feeds
    them through :meth:`apply`.  ``arg`` is None for ``count(*)``.
    """

    FUNCS = ("count", "sum", "min", "max", "avg")

    __slots__ = ("func", "arg", "distinct")

    def __init__(self, func: str, arg: Optional[Expr], distinct: bool = False):
        func = func.lower()
        if func not in self.FUNCS:
            raise QueryRuntimeError(f"unknown aggregate function {func!r}")
        self.func = func
        self.arg = arg
        self.distinct = distinct

    def children(self) -> Iterator[Expr]:
        if self.arg is not None:
            yield self.arg

    def eval(self, env: EvalEnv) -> Any:
        raise QueryRuntimeError(
            f"aggregate {self.func}() used outside a SELECT output clause"
        )

    def apply(self, weighted_values: List[Tuple[Any, int]]) -> Any:
        """Fold ``(value, multiplicity)`` pairs per SQL bag semantics."""
        if self.distinct:
            seen = {}
            for value, _ in weighted_values:
                seen.setdefault(value, 1)
            weighted_values = [(v, 1) for v in seen]
        if self.func == "count":
            return sum(mult for _, mult in weighted_values)
        values = [(v, m) for v, m in weighted_values if v is not None]
        if not values:
            return None
        if self.func == "sum":
            return sum(v * m for v, m in values)
        if self.func == "min":
            return min(v for v, _ in values)
        if self.func == "max":
            return max(v for v, _ in values)
        total = sum(v * m for v, m in values)
        count = sum(m for _, m in values)
        return total / count

    def __repr__(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func}({prefix}{inner})"


# ----------------------------------------------------------------------
# Static analysis helpers
# ----------------------------------------------------------------------

def referenced_names(expr: Expr) -> Iterator[str]:
    """Every bare identifier referenced by an expression."""
    for node in expr.walk():
        if isinstance(node, NameRef):
            yield node.name


def referenced_vertex_vars(expr: Expr, pattern_vars: set) -> set:
    """Pattern variables an expression depends on (drives POST_ACCUM's
    once-per-distinct-vertex execution)."""
    return {name for name in referenced_names(expr) if name in pattern_vars}


def primed_accum_names(expr: Expr) -> Iterator[str]:
    """Names of accumulators read with the prime suffix."""
    for node in expr.walk():
        if isinstance(node, VertexAccumRef) and node.primed:
            yield node.name
        elif isinstance(node, GlobalAccumRef) and node.primed:
            yield "@@" + node.name


def contains_aggregate(expr: Expr) -> bool:
    return any(isinstance(node, AggCall) for node in expr.walk())


def _run_subquery(ctx: QueryContext, subquery: Any, values: List[Any]) -> Any:
    """Invoke a registered subquery with positional arguments.

    The subquery runs against the caller's graph (fresh accumulator
    state, same registered tables and subqueries) and yields its RETURN
    value.
    """
    params = subquery.params
    if len(values) != len(params):
        raise QueryRuntimeError(
            f"subquery {subquery.name!r} takes {len(params)} arguments, "
            f"got {len(values)}"
        )
    kwargs = {param.name: value for param, value in zip(params, values)}
    result = subquery.run(
        ctx.graph,
        tables={
            name: table
            for name, table in ctx.tables.items()
        },
        subqueries=ctx.subqueries,
        **kwargs,
    )
    return result.returned


def register_function(name: str, fn: Callable[..., Any]) -> None:
    """Register a scalar function usable from query expressions (the
    Python analogue of a GSQL scalar UDF)."""
    _FUNCTIONS[name.lower()] = fn


__all__ = [
    "EvalEnv",
    "Expr",
    "Literal",
    "NameRef",
    "AttrRef",
    "GlobalAccumRef",
    "VertexAccumRef",
    "Binary",
    "Unary",
    "Call",
    "Method",
    "TupleExpr",
    "ArrowExpr",
    "CaseExpr",
    "AggCall",
    "referenced_names",
    "referenced_vertex_vars",
    "primed_accum_names",
    "contains_aggregate",
    "register_function",
]
