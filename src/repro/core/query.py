"""Queries: parameters, statement sequences and control flow.

A :class:`Query` is a named sequence of statements — accumulator
declarations, vertex-set assignments, SELECT blocks, global-accumulator
updates, WHILE/IF control flow, PRINT and RETURN — mirroring a GSQL
``CREATE QUERY`` body (Figures 1-4 of the paper).
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..accum.base import Accumulator
from ..errors import QueryCompileError, QueryRuntimeError
from ..governor import faults as _faults
from ..governor import governor as _gov
from ..graph.elements import Vertex
from ..graph.graph import Graph
from ..obs import metrics as _obs
from .block import SelectBlock
from .context import AccumDecl, QueryContext
from .exprs import EvalEnv, Expr
from .pattern import EngineMode
from .values import Table, VertexSet

#: Iteration ceiling for WHILE loops without an explicit LIMIT, so a
#: mis-specified convergence condition fails loudly instead of spinning.
DEFAULT_WHILE_CEILING = 10_000

#: Mandatory soft iteration cap for WHILE loops the dataflow pass flagged
#: as possibly non-terminating (E033): instead of rejecting the query,
#: the governor runs the loop up to this many iterations and soft-stops
#: with a warning.  An explicit ``Budget.max_while_iterations`` overrides
#: it.  See docs/robustness.md and docs/static_analysis.md.
GOVERNED_WHILE_CAP = 1_000


class Statement:
    """Base class for query-body statements.

    ``span`` carries the statement's source range when the statement was
    parsed from GSQL text (None for programmatically built queries).
    """

    span = None

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        raise NotImplementedError


class DeclareAccum(Statement):
    """Declare an accumulator, optionally with an initial value.

    ``SumAccum<float> @score = 1`` declares a vertex accumulator whose
    fresh instances start at 1 — the factory wraps the initialization, so
    every lazily-created per-vertex instance starts there too.
    """

    def __init__(
        self,
        name: str,
        scope: str,
        factory: Callable[[], Accumulator],
        initial: Optional[Expr] = None,
        type_info: Any = None,
    ):
        self.name = name
        self.scope = scope
        self.base_factory = factory
        self.initial = initial
        #: Declared-type descriptor (:class:`repro.core.acctypes.AccumTypeInfo`)
        #: preserved by the GSQL parser for the static analyzer; None for
        #: programmatically built declarations.
        self.type_info = type_info

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        factory = self.base_factory
        if getattr(factory, "takes_context", False):
            # Factories whose construction depends on runtime parameters
            # (e.g. HeapAccum<T>(k, ...) with k a query parameter).
            factory = factory(ctx)
        if self.initial is not None:
            init_value = self.initial.eval(EvalEnv(ctx))
            base = factory

            def factory() -> Accumulator:
                acc = base()
                acc.assign(init_value)
                return acc

        ctx.declare(AccumDecl(self.name, self.scope, factory))


class SetAssign(Statement):
    """Vertex-set assignment: ``AllV = {Page.*}``, ``S = {param}``,
    ``S = OtherSet`` or ``S = SELECT v FROM ...``."""

    def __init__(self, name: str, source: Union[str, Sequence[str], SelectBlock]):
        self.name = name
        self.source = source

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        if isinstance(self.source, SelectBlock):
            result = self.source.execute(ctx, mode)
            if result is None:
                raise QueryCompileError(
                    f"the SELECT assigned to {self.name!r} must select a "
                    f"vertex variable"
                )
            ctx.set_vertex_set(self.name, result)
            return
        names = [self.source] if isinstance(self.source, str) else list(self.source)
        vset = VertexSet(ctx.graph)
        for name in names:
            base, star = (name[:-2], True) if name.endswith(".*") else (name, False)
            if star:
                for v in ctx.graph.vertices(None if base in ("_", "ANY") else base):
                    vset.add(v)
            elif base in ctx.vertex_sets:
                for v in ctx.vertex_sets[base]:
                    vset.add(v)
            elif base in ctx.params and isinstance(ctx.params[base], Vertex):
                vset.add(ctx.params[base])
            else:
                raise QueryRuntimeError(
                    f"cannot build a vertex set from {name!r}: not a "
                    f"'Type.*' pattern, vertex set, or vertex parameter"
                )
        ctx.set_vertex_set(self.name, vset)


class SetOpAssign(Statement):
    """Vertex-set algebra: ``S = A UNION B``, ``INTERSECT``, ``MINUS``.

    GSQL's set operators compose multi-block pipelines (frontier
    management, excluded-set subtraction) without leaving the language.
    """

    OPS = ("UNION", "INTERSECT", "MINUS")

    def __init__(self, name: str, left: str, op: str, right: str):
        op = op.upper()
        if op not in self.OPS:
            raise QueryCompileError(f"unknown set operator {op!r}")
        self.name = name
        self.left = left
        self.op = op
        self.right = right

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        left = ctx.vertex_set(self.left)
        right = ctx.vertex_set(self.right)
        result = VertexSet(ctx.graph)
        if self.op == "UNION":
            for v in left:
                result.add(v)
            for v in right:
                result.add(v)
        elif self.op == "INTERSECT":
            for v in left:
                if v in right:
                    result.add(v)
        else:  # MINUS
            for v in left:
                if v not in right:
                    result.add(v)
        ctx.set_vertex_set(self.name, result)


class RunBlock(Statement):
    """Execute a SELECT block, optionally assigning its vertex-set result."""

    def __init__(self, block: SelectBlock, assign_to: Optional[str] = None):
        self.block = block
        self.assign_to = assign_to

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        result = self.block.execute(ctx, mode)
        if self.assign_to is not None:
            if result is None:
                raise QueryCompileError(
                    f"block assigned to {self.assign_to!r} has no vertex-set "
                    f"result"
                )
            ctx.set_vertex_set(self.assign_to, result)


class GlobalAccumUpdate(Statement):
    """Statement-level ``@@acc = expr`` / ``@@acc += expr`` (immediate —
    outside query blocks there is no Map/Reduce phase to defer to)."""

    def __init__(self, name: str, op: str, expr: Expr):
        if op not in ("=", "+="):
            raise QueryCompileError("global accumulator updates use = or +=")
        self.name = name
        self.op = op
        self.expr = expr

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        value = self.expr.eval(EvalEnv(ctx))
        acc = ctx.global_accum(self.name)
        if self.op == "=":
            acc.assign(value)
        else:
            acc.combine(value)


class While(Statement):
    """``WHILE cond LIMIT n DO ... END`` (Figure 4's iteration primitive)."""

    #: Set by :func:`repro.core.tractable.attach_governor_caps` when the
    #: dataflow pass flags this loop as possibly non-terminating (E033).
    #: Flagged loops run under a mandatory soft iteration cap
    #: (:data:`GOVERNED_WHILE_CAP`) when execution is governed or the
    #: engine mode is AUTO, instead of being rejected outright.
    governed_cap = False

    def __init__(self, cond: Expr, body: List[Statement], limit: Optional[Expr] = None):
        self.cond = cond
        self.body = body
        self.limit = limit

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        gov = _gov._ACTIVE
        if self.limit is not None:
            ceiling = int(self.limit.eval(EvalEnv(ctx)))
        else:
            ceiling = DEFAULT_WHILE_CEILING
        # Degradation ladder, second rung: a soft iteration cap stops the
        # loop with a warning instead of aborting the query.  Active when
        # the budget sets max_while_iterations, or when the dataflow pass
        # flagged this loop (E033) and execution is governed / AUTO.
        soft_cap: Optional[int] = None
        if gov is not None and gov.budget.max_while_iterations is not None:
            soft_cap = gov.budget.max_while_iterations
        elif self.governed_cap and (
            gov is not None or mode.kind == EngineMode.AUTO
        ):
            soft_cap = GOVERNED_WHILE_CAP
        iterations = 0
        while bool(self.cond.eval(EvalEnv(ctx))):
            if soft_cap is not None and iterations >= soft_cap:
                self._soft_stop(gov, soft_cap)
                break
            if iterations >= ceiling:
                if self.limit is not None:
                    break
                raise QueryRuntimeError(
                    f"WHILE loop exceeded {DEFAULT_WHILE_CEILING} iterations "
                    f"without a LIMIT clause; assuming runaway condition"
                )
            if gov is not None:
                gov.note_while_iteration()
            if _faults._PLAN is not None:
                _faults.fire("while.iteration")
            for stmt in self.body:
                stmt.execute(ctx, mode)
            iterations += 1

    @staticmethod
    def _soft_stop(gov, soft_cap: int) -> None:
        warnings.warn(
            f"WHILE loop soft-stopped by the execution governor after "
            f"{soft_cap} iterations (possibly non-terminating loop); "
            f"results reflect the iterations completed so far",
            RuntimeWarning,
            stacklevel=3,
        )
        col = _obs._ACTIVE
        if col is not None:
            col.count("governor.while_soft_stops")
        if gov is not None:
            gov.note_soft_stop()


class Foreach(Statement):
    """``FOREACH x IN collection DO ... END``.

    The collection expression may yield a vertex set, an accumulator's
    collection value (Set/Bag/List), or any tuple.  The loop variable is
    exposed to the body through the parameter namespace (shadowing any
    same-named parameter for the loop's duration).
    """

    def __init__(self, var: str, collection: Expr, body: List[Statement]):
        self.var = var
        self.collection = collection
        self.body = body

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        value = self.collection.eval(EvalEnv(ctx))
        if isinstance(value, dict):
            items = list(value.items())
        else:
            try:
                items = list(value)
            except TypeError:
                raise QueryRuntimeError(
                    f"FOREACH needs an iterable, got {type(value).__name__}"
                ) from None
        had_prior = self.var in ctx.params
        prior = ctx.params.get(self.var)
        gov = _gov._ACTIVE
        try:
            for item in items:
                if gov is not None:
                    gov.tick()  # cancellation/deadline check per iteration
                ctx.params[self.var] = item
                for stmt in self.body:
                    stmt.execute(ctx, mode)
        finally:
            if had_prior:
                ctx.params[self.var] = prior
            else:
                ctx.params.pop(self.var, None)


class If(Statement):
    """``IF cond THEN ... ELSE ... END``."""

    def __init__(
        self,
        cond: Expr,
        then: List[Statement],
        otherwise: Optional[List[Statement]] = None,
    ):
        self.cond = cond
        self.then = then
        self.otherwise = otherwise or []

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        branch = self.then if bool(self.cond.eval(EvalEnv(ctx))) else self.otherwise
        for stmt in branch:
            stmt.execute(ctx, mode)


class PrintItem:
    """One item of a PRINT statement: an expression with an alias."""

    def __init__(self, expr: Expr, alias: Optional[str] = None):
        self.expr = expr
        self.alias = alias or repr(expr)


class PrintSetProjection:
    """``PRINT R[R.name, R.@acc]`` — project a vertex set into rows, the
    set name doubling as the per-vertex row variable (the Qn query of
    Section 7.1)."""

    def __init__(self, set_name: str, columns: List[PrintItem]):
        self.set_name = set_name
        self.columns = columns


class Print(Statement):
    def __init__(self, items: List[Union[PrintItem, PrintSetProjection]]):
        self.items = items

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        record: Dict[str, Any] = {}
        for item in self.items:
            if isinstance(item, PrintSetProjection):
                vset = ctx.vertex_set(item.set_name)
                rows = []
                for vertex in vset:
                    env = EvalEnv(ctx, {item.set_name: vertex})
                    rows.append(
                        {col.alias: col.expr.eval(env) for col in item.columns}
                    )
                record[item.set_name] = rows
            else:
                record[item.alias] = item.expr.eval(EvalEnv(ctx))
        ctx.printed.append(record)


class Return(Statement):
    """``RETURN expr`` — the query's return value (tables, sets, scalars)."""

    def __init__(self, expr: Expr):
        self.expr = expr

    def execute(self, ctx: QueryContext, mode: EngineMode) -> None:
        ctx.returned = self.expr.eval(EvalEnv(ctx))


class Parameter:
    """A query parameter: name, GSQL type name, optional default.

    ``vertex`` / ``vertex<Type>`` parameters accept a vertex id (resolved
    and type-checked against the graph at call time) or a Vertex.
    """

    def __init__(self, name: str, type_name: str = "ANY", default: Any = None):
        self.name = name
        self.type_name = type_name
        self.default = default

    @property
    def vertex_type(self) -> Optional[str]:
        t = self.type_name.lower()
        if t == "vertex":
            return "_"
        if t.startswith("vertex<") and t.endswith(">"):
            return self.type_name[7:-1]
        return None

    def resolve(self, graph: Graph, value: Any) -> Any:
        vtype = self.vertex_type
        if vtype is None:
            return value
        if isinstance(value, Vertex):
            vertex = value
        else:
            vertex = graph.vertex(value)
        if vtype != "_" and vertex.type != vtype:
            raise QueryRuntimeError(
                f"parameter {self.name!r} expects a {vtype} vertex, got "
                f"{vertex.type}:{vertex.vid}"
            )
        return vertex


class QueryResult:
    """Everything a query execution produced."""

    def __init__(self, ctx: QueryContext):
        self._ctx = ctx
        self.tables: Dict[str, Table] = dict(ctx.tables)
        self.printed: List[Dict[str, Any]] = list(ctx.printed)
        self.returned: Any = ctx.returned
        self.vertex_sets: Dict[str, VertexSet] = dict(ctx.vertex_sets)

    def table(self, name: str) -> Table:
        return self._ctx.table(name)

    def global_accum(self, name: str) -> Any:
        return self._ctx.global_accum(name).value

    def vertex_accum(self, name: str) -> Dict[Any, Any]:
        """Materialized per-vertex values of one vertex accumulator."""
        return dict(self._ctx.vertex_accum_values(name))

    @property
    def context(self) -> QueryContext:
        return self._ctx


class Query:
    """A parsed query, runnable against any compatible graph."""

    #: True on the lowered clone produced by :func:`repro.compile.
    #: compile_query` — execution traces carry it so profiles are
    #: attributable to the compiled or interpreted path.
    compiled = False

    def __init__(
        self,
        name: str,
        statements: List[Statement],
        params: Optional[List[Parameter]] = None,
        graph_name: Optional[str] = None,
    ):
        self.name = name
        self.statements = statements
        self.params = params or []
        self.graph_name = graph_name
        #: Original GSQL text when the query came from the parser; lets
        #: diagnostics render caret-underlined source excerpts.
        self.source: Optional[str] = None
        #: (schema, QueryModel) memo filled by
        #: :func:`repro.analysis.model.cached_model` — one model build
        #: shared by validate/tractable/lint instead of three.
        self._analysis_cache: Optional[tuple] = None
        #: Whole-query :class:`~repro.core.tractable.CostCertificate`
        #: stamped by :func:`~repro.core.tractable.
        #: attach_cost_certificates` (None until stamped).
        self.cost_certificate = None
        #: Bumped by :meth:`invalidate_analysis`; compiled plans capture
        #: the epoch at lowering time, so a bump makes every plan built
        #: from this query *stale* and the plan cache drops it on lookup.
        self._analysis_epoch: int = 0

    def invalidate_analysis(self) -> None:
        """Drop the cached analysis model and invalidate compiled plans
        (call after mutating the AST)."""
        self._analysis_cache = None
        self._analysis_epoch += 1

    def run(
        self,
        graph: Graph,
        mode: Optional[EngineMode] = None,
        tables: Optional[Dict[str, Table]] = None,
        subqueries: Optional[Dict[str, "Query"]] = None,
        **param_values: Any,
    ) -> QueryResult:
        """Execute against ``graph``.

        ``mode`` selects the evaluation engine; the default is the paper's
        counting engine under all-shortest-paths semantics.  ``tables``
        registers relational input tables, scannable from FROM clauses
        (the Figure 1 graph-table join).  Parameter values are keyword
        arguments matching the declared parameters.
        """
        mode = mode or EngineMode.counting()
        resolved: Dict[str, Any] = {}
        declared = {p.name for p in self.params}
        for key in param_values:
            if key not in declared:
                raise QueryRuntimeError(
                    f"query {self.name!r} has no parameter {key!r}"
                )
        for param in self.params:
            if param.name in param_values:
                resolved[param.name] = param.resolve(graph, param_values[param.name])
            elif param.default is not None:
                resolved[param.name] = param.resolve(graph, param.default)
            else:
                raise QueryRuntimeError(
                    f"missing required parameter {param.name!r} of query "
                    f"{self.name!r}"
                )
        ctx = QueryContext(graph, resolved)
        if tables:
            ctx.tables.update(tables)
        if subqueries:
            ctx.subqueries.update(subqueries)
        col = _obs._ACTIVE
        if col is None:
            for stmt in self.statements:
                stmt.execute(ctx, mode)
            return QueryResult(ctx)
        span = col.span(
            "query", label=f"QUERY {self.name}", engine=mode.kind,
            semantics=mode.semantics.value,
        )
        if self.compiled:
            span.set(compiled=True)
        try:
            for stmt in self.statements:
                stmt.execute(ctx, mode)
        finally:
            col.close(span)
        return QueryResult(ctx)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        params = ", ".join(f"{p.type_name} {p.name}" for p in self.params)
        return f"Query({self.name}({params}), {len(self.statements)} statements)"


__all__ = [
    "Statement",
    "DeclareAccum",
    "SetAssign",
    "RunBlock",
    "GlobalAccumUpdate",
    "While",
    "If",
    "Print",
    "PrintItem",
    "PrintSetProjection",
    "Return",
    "Parameter",
    "Query",
    "QueryResult",
    "DEFAULT_WHILE_CEILING",
    "GOVERNED_WHILE_CAP",
]
