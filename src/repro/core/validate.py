"""Static validation of compiled queries.

Catches, before execution, the mistakes that would otherwise surface as
mid-query runtime errors: references to undeclared accumulators, scope
confusion (``@@x`` vs ``v.@x``), vertex-set names that are never
defined, and — when a schema is supplied — pattern positions naming
unknown vertex types and DARPEs naming unknown edge types.

The checker is *advisory and conservative*: it only reports what is
provably wrong from the query text alone; dynamic constructs it cannot
see through are given the benefit of the doubt.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Set

from ..darpe.ast import symbols
from ..graph.schema import GraphSchema
from .block import SelectBlock
from .exprs import Expr, GlobalAccumRef, VertexAccumRef
from .pattern import Pattern, TableSource
from .query import (
    DeclareAccum,
    Foreach,
    GlobalAccumUpdate,
    If,
    Print,
    PrintSetProjection,
    Query,
    Return,
    RunBlock,
    SetAssign,
    SetOpAssign,
    Statement,
    While,
)
from .stmts import AccumUpdate, AttributeUpdate, LocalAssign


class ValidationIssue(NamedTuple):
    """One problem found by :func:`validate_query`."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.kind}] {self.detail}"


class _Scope:
    def __init__(self) -> None:
        self.global_accums: Set[str] = set()
        self.vertex_accums: Set[str] = set()
        self.vertex_sets: Set[str] = set()
        self.issues: List[ValidationIssue] = []

    def problem(self, kind: str, detail: str) -> None:
        self.issues.append(ValidationIssue(kind, detail))


def validate_query(query: Query, schema: Optional[GraphSchema] = None) -> List[ValidationIssue]:
    """All statically detectable problems in ``query`` (empty = clean)."""
    scope = _Scope()
    _walk_statements(query.statements, scope, schema)
    return scope.issues


def _walk_statements(
    statements: List[Statement], scope: _Scope, schema: Optional[GraphSchema]
) -> None:
    for stmt in statements:
        if isinstance(stmt, DeclareAccum):
            target = (
                scope.global_accums if stmt.scope == "global" else scope.vertex_accums
            )
            if stmt.name in scope.global_accums | scope.vertex_accums:
                scope.problem(
                    "duplicate-accumulator", f"@{stmt.name} declared twice"
                )
            target.add(stmt.name)
        elif isinstance(stmt, SetAssign):
            if isinstance(stmt.source, SelectBlock):
                _check_block(stmt.source, scope, schema)
            scope.vertex_sets.add(stmt.name)
        elif isinstance(stmt, SetOpAssign):
            for operand in (stmt.left, stmt.right):
                if operand not in scope.vertex_sets:
                    scope.problem(
                        "unknown-vertex-set",
                        f"set operation reads undefined set {operand!r}",
                    )
            scope.vertex_sets.add(stmt.name)
        elif isinstance(stmt, RunBlock):
            _check_block(stmt.block, scope, schema)
            if stmt.assign_to:
                scope.vertex_sets.add(stmt.assign_to)
            for fragment in stmt.block.fragments:
                # INTO names double as FROM-able sets (Figure 3 idiom).
                scope.vertex_sets.add(fragment.into)
        elif isinstance(stmt, GlobalAccumUpdate):
            if stmt.name not in scope.global_accums:
                scope.problem(
                    "undeclared-accumulator",
                    f"@@{stmt.name} updated but never declared",
                )
            _check_expr(stmt.expr, scope)
        elif isinstance(stmt, While):
            _check_expr(stmt.cond, scope)
            _walk_statements(stmt.body, scope, schema)
        elif isinstance(stmt, Foreach):
            _check_expr(stmt.collection, scope)
            _walk_statements(stmt.body, scope, schema)
        elif isinstance(stmt, If):
            _check_expr(stmt.cond, scope)
            _walk_statements(stmt.then, scope, schema)
            _walk_statements(stmt.otherwise, scope, schema)
        elif isinstance(stmt, Print):
            for item in stmt.items:
                if isinstance(item, PrintSetProjection):
                    if item.set_name not in scope.vertex_sets:
                        scope.problem(
                            "unknown-vertex-set",
                            f"PRINT projects undefined set {item.set_name!r}",
                        )
                    for col in item.columns:
                        _check_expr(col.expr, scope)
                else:
                    _check_expr(item.expr, scope)
        elif isinstance(stmt, Return):
            _check_expr(stmt.expr, scope)
        else:
            inner = getattr(stmt, "statements", None)
            if inner is not None:
                _walk_statements(inner, scope, schema)


def _check_block(block: SelectBlock, scope: _Scope, schema: Optional[GraphSchema]) -> None:
    _check_pattern(block.pattern, scope, schema)
    for expr in _block_exprs(block):
        _check_expr(expr, scope)
    for stmt in block.accum + block.post_accum:
        if isinstance(stmt, (AccumUpdate,)):
            declared_global = stmt.target.name in scope.global_accums
            declared_vertex = stmt.target.name in scope.vertex_accums
            if stmt.target.is_global and declared_vertex and not declared_global:
                scope.problem(
                    "accumulator-scope",
                    f"@@{stmt.target.name} used globally but declared as a "
                    f"vertex accumulator",
                )
            elif not stmt.target.is_global and declared_global and not declared_vertex:
                scope.problem(
                    "accumulator-scope",
                    f"@{stmt.target.name} used per-vertex but declared as a "
                    f"global accumulator",
                )
            elif not (declared_global or declared_vertex):
                scope.problem(
                    "undeclared-accumulator",
                    f"@{stmt.target.name} receives inputs but was never declared",
                )
            _check_expr(stmt.expr, scope)
        elif isinstance(stmt, LocalAssign):
            _check_expr(stmt.expr, scope)
        elif isinstance(stmt, AttributeUpdate):
            _check_expr(stmt.expr, scope)


def _block_exprs(block: SelectBlock):
    if block.where is not None:
        yield block.where
    for fragment in block.fragments:
        for col in fragment.columns:
            yield col.expr
    yield from block.group_by
    if block.having is not None:
        yield block.having
    for expr, _ in block.order_by:
        yield expr
    if block.limit is not None:
        yield block.limit


def _check_expr(expr: Expr, scope: _Scope) -> None:
    for node in expr.walk():
        if isinstance(node, GlobalAccumRef):
            if node.name not in scope.global_accums:
                if node.name in scope.vertex_accums:
                    scope.problem(
                        "accumulator-scope",
                        f"@@{node.name} read globally but declared per-vertex",
                    )
                else:
                    scope.problem(
                        "undeclared-accumulator",
                        f"@@{node.name} read but never declared",
                    )
        elif isinstance(node, VertexAccumRef):
            if node.name not in scope.vertex_accums:
                if node.name in scope.global_accums:
                    scope.problem(
                        "accumulator-scope",
                        f"@{node.name} read per-vertex but declared globally",
                    )
                else:
                    scope.problem(
                        "undeclared-accumulator",
                        f"@{node.name} read but never declared",
                    )


def _check_pattern(pattern: Pattern, scope: _Scope, schema: Optional[GraphSchema]) -> None:
    for chain in pattern.chains:
        if isinstance(chain, TableSource):
            continue
        positions = [chain.source] + [hop.target for hop in chain.hops]
        for spec in positions:
            if spec.name in ("_", "ANY") or spec.name in scope.vertex_sets:
                continue
            if schema is not None and not schema.has_vertex_type(spec.name):
                scope.problem(
                    "unknown-vertex-type",
                    f"pattern position {spec.name!r} is neither a declared "
                    f"vertex type nor a known vertex set",
                )
        if schema is not None:
            for hop in chain.hops:
                for symbol in symbols(hop.darpe.ast):
                    if symbol.edge_type is not None and not schema.has_edge_type(
                        symbol.edge_type
                    ):
                        scope.problem(
                            "unknown-edge-type",
                            f"DARPE {hop.darpe.text!r} names undeclared edge "
                            f"type {symbol.edge_type!r}",
                        )


__all__ = ["ValidationIssue", "validate_query"]
