"""Static validation of compiled queries (compatibility shim).

The checks that used to live here are now rules in the
:mod:`repro.analysis` subsystem, which adds source spans, caret
excerpts, accumulator type inference and a dozen further rules on top
(see ``docs/static_analysis.md``).  This module keeps the original
:func:`validate_query` API alive: it runs the full analyzer and
projects the diagnostics of the ported rules back onto the historic
``(kind, detail)`` issue tuples, in the original traversal order.

New code should call :func:`repro.analysis.analyze` directly.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..graph.schema import GraphSchema
from .query import Query


class ValidationIssue(NamedTuple):
    """One problem found by :func:`validate_query`."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.kind}] {self.detail}"


def validate_query(
    query: Query, schema: Optional[GraphSchema] = None
) -> List[ValidationIssue]:
    """All statically detectable problems in ``query`` (empty = clean).

    Reports the historic error kinds only (undeclared/duplicate
    accumulators, scope confusion, unknown sets and schema names); the
    full diagnostic set — warnings, type mismatches, spans — comes from
    :func:`repro.analysis.analyze`.
    """
    # Imported lazily: repro.analysis imports core submodules, and this
    # module is itself imported by the core package init.
    from ..analysis import run_rules
    from ..analysis.model import cached_model
    from ..analysis.rules import LEGACY_VALIDATE_KINDS

    model = cached_model(query, schema)
    diagnostics = [
        d for d in run_rules(model) if d.code in LEGACY_VALIDATE_KINDS
    ]
    diagnostics.sort(key=lambda d: d.seq)
    return [
        ValidationIssue(LEGACY_VALIDATE_KINDS[d.code], d.message)
        for d in diagnostics
    ]


__all__ = ["ValidationIssue", "validate_query"]
