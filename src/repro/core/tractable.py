"""Static tractability analysis — Section 7's "tractable class" (shim).

A query is in the tractable class when:

* it binds no path variables (the engine's AST cannot express them, so
  this holds by construction — recorded here for completeness);
* no vertex/edge variable is bound inside the scope of a Kleene star
  (enforced at pattern-construction time: edge variables require
  single-edge DARPEs);
* it uses no order-dependent accumulators (ListAccum, ArrayAccum,
  SumAccum<string>) — these would need one entry per *path*, defeating
  the compressed binding table.

The checks themselves are rules GSQL-W012 and GSQL-E013 in
:mod:`repro.analysis`; this module keeps the original
:func:`analyze_query`/:func:`is_tractable` API on top of them.  The
engine additionally refuses at runtime the genuinely dangerous
combination (order-dependent accumulator fed from a Kleene pattern) —
see :meth:`repro.core.block.SelectBlock._check_tractability`.
"""

from __future__ import annotations

from typing import List, NamedTuple

from .query import Query


class TractabilityViolation(NamedTuple):
    """One reason a query falls outside the tractable class."""

    kind: str
    detail: str


def analyze_query(query: Query) -> List[TractabilityViolation]:
    """All tractability violations of a query (empty list = tractable).

    The check is conservative in the paper's direction: *any* use of an
    order-dependent accumulator is reported, matching Section 7's class
    definition, even though only the Kleene-fed uses actually blow up.
    Declaration violations precede block violations, as they always did.
    """
    # Imported lazily: repro.analysis imports core submodules, and this
    # module is itself imported by the core package init.
    from ..analysis import build_model, run_rules
    from ..analysis.rules import LEGACY_TRACTABLE_KINDS

    model = build_model(query)
    diagnostics = [
        d for d in run_rules(model) if d.code in LEGACY_TRACTABLE_KINDS
    ]
    decls = sorted(
        (d for d in diagnostics if d.code == "GSQL-W012"),
        key=lambda d: d.seq,
    )
    blocks = sorted(
        (d for d in diagnostics if d.code == "GSQL-E013"),
        key=lambda d: d.seq,
    )
    return [
        TractabilityViolation(LEGACY_TRACTABLE_KINDS[d.code], d.message)
        for d in decls + blocks
    ]


def is_tractable(query: Query) -> bool:
    """True when the query is in the Section 7 tractable class."""
    return not analyze_query(query)


__all__ = ["TractabilityViolation", "analyze_query", "is_tractable"]
