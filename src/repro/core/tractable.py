"""Static tractability analysis — Section 7's "tractable class" (shim).

A query is in the tractable class when:

* it binds no path variables (the engine's AST cannot express them, so
  this holds by construction — recorded here for completeness);
* no vertex/edge variable is bound inside the scope of a Kleene star
  (enforced at pattern-construction time: edge variables require
  single-edge DARPEs);
* it uses no order-dependent accumulators (ListAccum, ArrayAccum,
  SumAccum<string>) — these would need one entry per *path*, defeating
  the compressed binding table.

The checks themselves are rules GSQL-W012 and GSQL-E013 in
:mod:`repro.analysis`; this module keeps the original
:func:`analyze_query`/:func:`is_tractable` API on top of them.  The
engine additionally refuses at runtime the genuinely dangerous
combination (order-dependent accumulator fed from a Kleene pattern) —
see :meth:`repro.core.block.SelectBlock._check_tractability`.
"""

from __future__ import annotations

import enum
from typing import List, NamedTuple, Optional, Tuple

from .query import Query


class TractabilityViolation(NamedTuple):
    """One reason a query falls outside the tractable class."""

    kind: str
    detail: str


class TractabilityStatus(enum.Enum):
    """Per-SELECT-block verdict of the flow-sensitive analysis."""

    TRACTABLE = "tractable"
    ENUMERATION_REQUIRED = "enumeration-required"
    UNKNOWN = "unknown"


class TractabilityCertificate(NamedTuple):
    """A static, per-block proof object for Section 7's tractable class.

    ``status`` says whether the block's Kleene-starred pattern (if any)
    feeds only order-invariant accumulators; ``witnesses`` are the
    human-readable facts the verdict rests on.  The planner trusts a
    TRACTABLE certificate to run the counting engine without probing
    declarations at runtime, and an ENUMERATION_REQUIRED one to switch
    the block to enumeration under ``EngineMode.auto()``.
    """

    status: TractabilityStatus
    witnesses: Tuple[str, ...]

    @property
    def tractable(self) -> bool:
        return self.status is TractabilityStatus.TRACTABLE

    def describe(self) -> str:
        body = "; ".join(self.witnesses) if self.witnesses else "no witnesses"
        return f"{self.status.value} ({body})"


class DeterminismStatus(enum.Enum):
    """Per-SELECT-block verdict of the effect/commutativity analysis."""

    COMMUTATIVE = "commutative"
    ORDER_DEPENDENT = "order-dependent"
    UNKNOWN = "unknown"


class DeterminismCertificate(NamedTuple):
    """A static, per-block proof object for update commutativity.

    Stamped next to the tractability certificate by the effect analysis
    (:mod:`repro.analysis.effects`): ``status`` says whether every
    ACCUM/POST_ACCUM update of the block commutes (so rows may be folded
    in any order, across partitions and threads), ``witnesses`` carry
    the per-accumulator algebra facts the verdict rests on, and
    ``delta_maintainable`` marks monotone read-free summaries — the
    precondition for incremental re-evaluation (ROADMAP item 4a).
    ``parallel_accum`` refuses to run without a COMMUTATIVE certificate
    (or a successful declaration probe), and AccSan replays certified
    blocks under permuted schedules to cross-check the stamp.
    """

    status: DeterminismStatus
    witnesses: Tuple[str, ...]
    delta_maintainable: bool = False

    @property
    def commutative(self) -> bool:
        return self.status is DeterminismStatus.COMMUTATIVE

    def describe(self) -> str:
        body = "; ".join(self.witnesses) if self.witnesses else "no witnesses"
        delta = ", delta-maintainable" if self.delta_maintainable else ""
        return f"{self.status.value}{delta} ({body})"


#: Upper bounds above this ceiling are clamped — they stay finite (and
#: JSON-serializable) but are read as "astronomically large".
COST_CAP = 10**30


class Interval(NamedTuple):
    """A closed integer interval ``[lo, hi]``; ``hi=None`` means +inf.

    The abstract domain of the cost analysis: every predicted quantity
    (frontier rows, product states, paths, ACCUM executions, accumulator
    bytes) is an interval guaranteed to bracket the runtime value.
    """

    lo: int = 0
    hi: Optional[int] = None

    @classmethod
    def exact(cls, n: int) -> "Interval":
        return cls(n, n)

    @classmethod
    def upto(cls, hi: Optional[int]) -> "Interval":
        return cls(0, None if hi is None else min(hi, COST_CAP))

    @property
    def bounded(self) -> bool:
        return self.hi is not None

    def add(self, other: "Interval") -> "Interval":
        hi = None if self.hi is None or other.hi is None else min(
            self.hi + other.hi, COST_CAP
        )
        return Interval(self.lo + other.lo, hi)

    def mul(self, other: "Interval") -> "Interval":
        hi = None if self.hi is None or other.hi is None else min(
            self.hi * other.hi, COST_CAP
        )
        return Interval(self.lo * other.lo, hi)

    def join(self, other: "Interval") -> "Interval":
        """Union hull: the smallest interval covering both."""
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(min(self.lo, other.lo), hi)

    def cap(self, ceiling: Optional[int]) -> "Interval":
        """Intersect the upper bound with another known bound."""
        if ceiling is None:
            return self
        hi = ceiling if self.hi is None else min(self.hi, ceiling)
        return Interval(min(self.lo, hi), hi)

    def contains(self, value: int) -> bool:
        return value >= self.lo and (self.hi is None or value <= self.hi)

    def describe(self) -> str:
        hi = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {hi}]"

    def to_list(self) -> List[Optional[int]]:
        return [self.lo, self.hi]


class CostConfidence(enum.Enum):
    """How much to trust a cost interval's upper bound.

    Ordered lattice: CLOSED_FORM > ESTIMATED > UNBOUNDED; combining
    certificates takes the weakest tier.
    """

    CLOSED_FORM = "closed-form"
    ESTIMATED = "estimated"
    UNBOUNDED = "unbounded"

    @property
    def rank(self) -> int:
        return {"closed-form": 2, "estimated": 1, "unbounded": 0}[self.value]

    def meet(self, other: "CostConfidence") -> "CostConfidence":
        return self if self.rank <= other.rank else other


class CostCertificate(NamedTuple):
    """The third parse-time proof object: predicted cardinality/cost.

    Stamped beside the tractability and determinism certificates by
    :mod:`repro.analysis.cost`.  Each field is an :class:`Interval`
    bracketing the corresponding runtime obs counter; ``confidence``
    says how the upper bounds were derived (closed form from a
    :class:`~repro.graph.stats.GraphStatsSnapshot`, heuristic estimate,
    or structurally unbounded), and ``witnesses`` record the facts each
    bound rests on.  Consumers: ``planner.select_engine`` (tie-breaks),
    ``ExecutionGovernor.from_certificate`` (auto-budgets), server
    admission (predicted-over-budget 422), ``repro check --cost`` and
    ``explain`` (COST lines).
    """

    confidence: CostConfidence
    frontier: Interval
    product_states: Interval
    paths: Interval
    acc_executions: Interval
    accum_bytes: Interval
    witnesses: Tuple[str, ...] = ()
    #: fingerprint of the stats snapshot the bounds were computed from
    #: (None = structural, no statistics).
    stats_fingerprint: Optional[str] = None

    def describe(self) -> str:
        body = "; ".join(self.witnesses) if self.witnesses else "no witnesses"
        return (
            f"{self.confidence.value}"
            f" frontier={self.frontier.describe()}"
            f" product-states={self.product_states.describe()}"
            f" paths={self.paths.describe()}"
            f" acc-executions={self.acc_executions.describe()}"
            f" accum-bytes={self.accum_bytes.describe()}"
            f" ({body})"
        )

    def to_dict(self) -> dict:
        return {
            "confidence": self.confidence.value,
            "frontier": self.frontier.to_list(),
            "product_states": self.product_states.to_list(),
            "paths": self.paths.to_list(),
            "acc_executions": self.acc_executions.to_list(),
            "accum_bytes": self.accum_bytes.to_list(),
            "witnesses": list(self.witnesses),
            "stats_fingerprint": self.stats_fingerprint,
        }


def analyze_query(query: Query) -> List[TractabilityViolation]:
    """All tractability violations of a query (empty list = tractable).

    The check is conservative in the paper's direction: *any* use of an
    order-dependent accumulator is reported, matching Section 7's class
    definition, even though only the Kleene-fed uses actually blow up.
    Declaration violations precede block violations, as they always did.
    """
    # Imported lazily: repro.analysis imports core submodules, and this
    # module is itself imported by the core package init.
    from ..analysis import run_rules
    from ..analysis.model import cached_model
    from ..analysis.rules import LEGACY_TRACTABLE_KINDS

    model = cached_model(query)
    diagnostics = [
        d for d in run_rules(model) if d.code in LEGACY_TRACTABLE_KINDS
    ]
    decls = sorted(
        (d for d in diagnostics if d.code == "GSQL-W012"),
        key=lambda d: d.seq,
    )
    blocks = sorted(
        (d for d in diagnostics if d.code == "GSQL-E013"),
        key=lambda d: d.seq,
    )
    return [
        TractabilityViolation(LEGACY_TRACTABLE_KINDS[d.code], d.message)
        for d in decls + blocks
    ]


def is_tractable(query: Query) -> bool:
    """True when the query is in the Section 7 tractable class."""
    return not analyze_query(query)


def certify_query(query: Query, schema=None) -> List[Tuple[object, TractabilityCertificate]]:
    """(block fact, certificate) pairs for every SELECT block of ``query``.

    Thin wrapper over :func:`repro.analysis.dataflow.block_certificates`
    (lazy import — core must not depend on analysis at import time).
    """
    from ..analysis.dataflow import block_certificates
    from ..analysis.model import cached_model

    return block_certificates(cached_model(query, schema))


def attach_certificates(query: Query, schema=None) -> None:
    """Stamp each SELECT block with its static certificate.

    Called by the GSQL parser after compilation, so by the time a query
    runs, :meth:`SelectBlock._check_tractability` and the AUTO engine
    planner can read ``block.certificate`` instead of re-probing
    accumulator declarations on every execution.
    """
    for block_fact, cert in certify_query(query, schema):
        block_fact.block.certificate = cert


def attach_effect_certificates(query: Query, schema=None) -> None:
    """Stamp each SELECT block with its effect/commutativity certificate.

    Called by the GSQL parser after compilation, next to
    :func:`attach_certificates`; shares the cached analysis model and
    CFG, so the extra pass costs one walk over the block facts.  At
    runtime :func:`repro.core.parallel.parallel_accum` consults
    ``block.effect_certificate`` before agreeing to partition an ACCUM
    clause, and AccSan (:mod:`repro.accsan`) validates the stamp
    dynamically under permuted schedules.
    """
    from ..analysis.effects import analyze_effects
    from ..analysis.model import cached_model

    for block_fact, _summary, cert in analyze_effects(
        cached_model(query, schema)
    ).blocks:
        block_fact.block.effect_certificate = cert


def attach_cost_certificates(query: Query, schema=None, stats=None) -> None:
    """Stamp each SELECT block (and the query) with its cost certificate.

    Called by the GSQL parser after compilation with ``stats=None``, so
    parse-time stamps are purely structural (graph-dependent bounds stay
    open / UNBOUNDED).  Consumers that hold a
    :class:`~repro.graph.stats.GraphStatsSnapshot` — ``repro check
    --cost --graph``, ``repro run --auto-budget``, server admission, the
    calibration harness — re-stamp with concrete closed-form intervals;
    the analysis memoises per (model, stats fingerprint), so re-stamping
    with the same snapshot is free.
    """
    from ..analysis.cost import analyze_cost
    from ..analysis.model import cached_model

    result = analyze_cost(cached_model(query, schema), stats=stats)
    for block_fact, cert in result.blocks:
        block_fact.block.cost_certificate = cert
    query.cost_certificate = result.query_certificate


def attach_governor_caps(query: Query, schema=None) -> None:
    """Flag E033 (non-terminating WHILE) loops for governed execution.

    Instead of rejecting a query whose WHILE condition provably cannot
    change, the dataflow verdict is recorded on the loop itself
    (``While.governed_cap = True``): under ``EngineMode.auto()`` or a
    governed run the loop executes with a mandatory soft iteration cap
    (:data:`repro.core.query.GOVERNED_WHILE_CAP`) and stops with a
    warning instead of spinning to the hard ceiling.  Shares the cached
    analysis model with :func:`attach_certificates` so the parser pays
    for one dataflow pass, not two.
    """
    from ..analysis.dataflow import analyze_dataflow
    from ..analysis.model import cached_model

    for wf in analyze_dataflow(cached_model(query, schema)).nonterminating_whiles:
        wf.node.governed_cap = True


__all__ = [
    "TractabilityViolation",
    "TractabilityStatus",
    "TractabilityCertificate",
    "DeterminismStatus",
    "DeterminismCertificate",
    "Interval",
    "CostConfidence",
    "CostCertificate",
    "COST_CAP",
    "analyze_query",
    "is_tractable",
    "certify_query",
    "attach_certificates",
    "attach_effect_certificates",
    "attach_cost_certificates",
    "attach_governor_caps",
]
