"""Static tractability analysis (Section 7's "tractable class").

A query is in the tractable class when:

* it binds no path variables (the engine's AST cannot express them, so
  this holds by construction — recorded here for completeness);
* no vertex/edge variable is bound inside the scope of a Kleene star
  (enforced at pattern-construction time: edge variables require
  single-edge DARPEs);
* it uses no order-dependent accumulators (ListAccum, ArrayAccum,
  SumAccum<string>) — these would need one entry per *path*, defeating
  the compressed binding table.

:func:`analyze_query` reports violations; the engine additionally refuses
at runtime the genuinely dangerous combination (order-dependent
accumulator fed from a Kleene pattern) — see
:meth:`repro.core.block.SelectBlock._check_tractability`.
"""

from __future__ import annotations

from typing import List, NamedTuple

from .block import SelectBlock
from .query import DeclareAccum, If, Query, RunBlock, SetAssign, Statement, While
from .stmts import AccumUpdate


class TractabilityViolation(NamedTuple):
    """One reason a query falls outside the tractable class."""

    kind: str
    detail: str


def _iter_blocks(statements: List[Statement]):
    for stmt in statements:
        if isinstance(stmt, RunBlock):
            yield stmt.block
        elif isinstance(stmt, SetAssign) and isinstance(stmt.source, SelectBlock):
            yield stmt.source
        elif isinstance(stmt, While):
            yield from _iter_blocks(stmt.body)
        elif isinstance(stmt, If):
            yield from _iter_blocks(stmt.then)
            yield from _iter_blocks(stmt.otherwise)


def _iter_decls(statements: List[Statement]):
    for stmt in statements:
        if isinstance(stmt, DeclareAccum):
            yield stmt
        elif isinstance(stmt, While):
            yield from _iter_decls(stmt.body)
        elif isinstance(stmt, If):
            yield from _iter_decls(stmt.then)
            yield from _iter_decls(stmt.otherwise)


def analyze_query(query: Query) -> List[TractabilityViolation]:
    """All tractability violations of a query (empty list = tractable).

    The check is conservative in the paper's direction: *any* use of an
    order-dependent accumulator is reported, matching Section 7's class
    definition, even though only the Kleene-fed uses actually blow up.
    """
    violations: List[TractabilityViolation] = []
    order_dependent = set()
    for decl in _iter_decls(query.statements):
        probe = decl.base_factory()
        if not probe.order_invariant:
            order_dependent.add(decl.name)
            violations.append(
                TractabilityViolation(
                    "order-dependent-accumulator",
                    f"@{decl.name} has order-dependent type {probe.type_name}",
                )
            )
    for block in _iter_blocks(query.statements):
        if not block.pattern.has_kleene():
            continue
        for stmt in block.accum:
            if isinstance(stmt, AccumUpdate) and stmt.target.name in order_dependent:
                violations.append(
                    TractabilityViolation(
                        "kleene-feeds-order-dependent",
                        f"@{stmt.target.name} receives inputs from a Kleene "
                        f"pattern ({block.pattern!r}); evaluation would "
                        f"require per-path materialization",
                    )
                )
    return violations


def is_tractable(query: Query) -> bool:
    """True when the query is in the Section 7 tractable class."""
    return not analyze_query(query)


__all__ = ["TractabilityViolation", "analyze_query", "is_tractable"]
