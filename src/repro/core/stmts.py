"""ACCUM / POST_ACCUM statements and their snapshot execution.

The ACCUM clause executes once per binding-table row under **snapshot
semantics** (Section 4.3): every execution reads the accumulator values as
they were at block entry (the Map phase merely *generates inputs*), and
the generated inputs are folded into the accumulators only after all
executions finished (the Reduce phase).  This module implements the input
buffer and the two phases; the weighted variant of the Reduce phase is the
Appendix A trick that turns a row with multiplicity μ into a single
``combine_weighted(value, μ)`` call.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from .. import accsan as _accsan
from ..accum.base import Accumulator
from ..errors import QueryCompileError, QueryRuntimeError
from ..graph.elements import Vertex
from ..obs import metrics as _obs
from .context import QueryContext
from .exprs import EvalEnv, Expr, primed_accum_names, referenced_names


class AccumTarget:
    """The left-hand side of an ACCUM statement: ``@@name`` or ``v.@name``."""

    def __init__(self, name: str, base: Optional[Expr] = None):
        self.name = name
        self.base = base  # None => global accumulator

    @property
    def is_global(self) -> bool:
        return self.base is None

    def resolve(self, env: EvalEnv) -> Accumulator:
        if self.base is None:
            return env.ctx.global_accum(self.name)
        vertex = self.base.eval(env)
        if not isinstance(vertex, Vertex):
            raise QueryRuntimeError(
                f"accumulator @{self.name} addressed through non-vertex "
                f"{type(vertex).__name__}"
            )
        return env.ctx.vertex_accum(self.name, vertex.vid)

    def referenced_names(self) -> Iterator[str]:
        if self.base is not None:
            yield from referenced_names(self.base)

    def __repr__(self) -> str:
        if self.base is None:
            return f"@@{self.name}"
        return f"{self.base!r}.@{self.name}"


class AccStatement:
    """Base class of statements allowed in ACCUM/POST_ACCUM clauses."""

    def referenced_names(self) -> Iterator[str]:
        raise NotImplementedError

    def primed_names(self) -> Iterator[str]:
        raise NotImplementedError


class LocalAssign(AccStatement):
    """An ACCUM-local variable: ``FLOAT salesPrice = ...`` or a re-bind."""

    def __init__(self, name: str, expr: Expr, type_name: Optional[str] = None):
        self.name = name
        self.expr = expr
        self.type_name = type_name

    def referenced_names(self) -> Iterator[str]:
        yield from referenced_names(self.expr)

    def primed_names(self) -> Iterator[str]:
        yield from primed_accum_names(self.expr)

    def __repr__(self) -> str:
        return f"{self.name} = {self.expr!r}"


class AccumUpdate(AccStatement):
    """``target += expr`` (combine) or ``target = expr`` (assign)."""

    def __init__(self, target: AccumTarget, op: str, expr: Expr):
        if op not in ("+=", "="):
            raise QueryCompileError(f"accumulator statements use += or =, not {op!r}")
        self.target = target
        self.op = op
        self.expr = expr

    def referenced_names(self) -> Iterator[str]:
        yield from self.target.referenced_names()
        yield from referenced_names(self.expr)

    def primed_names(self) -> Iterator[str]:
        yield from primed_accum_names(self.expr)

    def __repr__(self) -> str:
        return f"{self.target!r} {self.op} {self.expr!r}"


class AttributeUpdate(AccStatement):
    """``v.attr = expr`` in POST_ACCUM: persist a computed value into a
    vertex attribute (how GSQL algorithms write results back to the
    graph, e.g. storing final PageRank scores).

    Only allowed in POST_ACCUM — inside ACCUM, concurrent acc-executions
    for the same vertex would race on the attribute.
    """

    def __init__(self, base: Expr, attr: str, expr: Expr):
        self.base = base
        self.attr = attr
        self.expr = expr

    def referenced_names(self) -> Iterator[str]:
        yield from referenced_names(self.base)
        yield from referenced_names(self.expr)

    def primed_names(self) -> Iterator[str]:
        yield from primed_accum_names(self.expr)

    def __repr__(self) -> str:
        return f"{self.base!r}.{self.attr} = {self.expr!r}"


class AccumIf(AccStatement):
    """``IF cond THEN ... [ELSE ...] END`` inside an ACCUM/POST_ACCUM
    clause: conditionally generate accumulator inputs per acc-execution.

    Snapshot semantics carry through unchanged — the condition and both
    branches read block-entry accumulator values, and any ``+=`` inputs
    the taken branch generates are buffered for the Reduce phase exactly
    like top-level clause statements.
    """

    def __init__(
        self,
        cond: Expr,
        then: List["AccStatement"],
        otherwise: Optional[List["AccStatement"]] = None,
    ):
        self.cond = cond
        self.then = then
        self.otherwise = otherwise or []

    def referenced_names(self) -> Iterator[str]:
        yield from referenced_names(self.cond)
        for stmt in self.then + self.otherwise:
            yield from stmt.referenced_names()

    def primed_names(self) -> Iterator[str]:
        yield from primed_accum_names(self.cond)
        for stmt in self.then + self.otherwise:
            yield from stmt.primed_names()

    def __repr__(self) -> str:
        then = ", ".join(map(repr, self.then))
        tail = f" ELSE {', '.join(map(repr, self.otherwise))}" if self.otherwise else ""
        return f"IF {self.cond!r} THEN {then}{tail} END"


class AccumForeach(AccStatement):
    """``FOREACH x IN collection DO ... END`` inside an ACCUM/POST_ACCUM
    clause: fold every element of a collection-valued expression (a
    ListAccum's entries, a map, a split string) within one acc-execution.

    The loop variable is an acc-execution-local binding that shadows any
    same-named local for the loop's duration.
    """

    def __init__(self, var: str, collection: Expr, body: List["AccStatement"]):
        self.var = var
        self.collection = collection
        self.body = body

    def referenced_names(self) -> Iterator[str]:
        yield from referenced_names(self.collection)
        for stmt in self.body:
            yield from stmt.referenced_names()

    def primed_names(self) -> Iterator[str]:
        yield from primed_accum_names(self.collection)
        for stmt in self.body:
            yield from stmt.primed_names()

    def __repr__(self) -> str:
        body = ", ".join(map(repr, self.body))
        return f"FOREACH {self.var} IN {self.collection!r} DO {body} END"


class InputBuffer:
    """The Map-phase output: buffered accumulator inputs.

    ``adds`` pairs each accumulator instance with (value, multiplicity)
    inputs; ``sets`` records plain assignments.  :meth:`flush` is the
    Reduce phase: assignments first (deterministically, in generation
    order), then weighted combines.
    """

    def __init__(self) -> None:
        self._adds: List[Tuple[Accumulator, Any, int]] = []
        self._sets: List[Tuple[Accumulator, Any]] = []

    def add(self, acc: Accumulator, value: Any, multiplicity: int) -> None:
        self._adds.append((acc, value, multiplicity))

    def set(self, acc: Accumulator, value: Any) -> None:
        self._sets.append((acc, value))

    def flush(self) -> None:
        col = _obs._ACTIVE
        if col is not None and (self._sets or self._adds):
            # Batched: one count per Reduce phase, not per input.
            col.count("accum.assigns", len(self._sets))
            col.count("accum.combine_weighted", len(self._adds))
        for acc, value in self._sets:
            acc.assign(value)
        for acc, value, multiplicity in self._adds:
            acc.combine_weighted(value, multiplicity)
        self._adds.clear()
        self._sets.clear()

    def clear(self) -> None:
        """Discard all buffered inputs without applying them.

        Abort paths call this so a failed Map phase releases its scratch
        partials: under snapshot semantics the live accumulators were
        never touched, and clearing the buffer guarantees nothing can
        flush later either.
        """
        self._adds.clear()
        self._sets.clear()

    def __len__(self) -> int:
        return len(self._adds) + len(self._sets)


def run_map_phase(
    statements: List[AccStatement],
    env: EvalEnv,
    buffer: InputBuffer,
    multiplicity: int,
) -> None:
    """Execute one acc-execution (one binding-table row) of an ACCUM
    clause, buffering its accumulator inputs.

    Local variables live for the duration of the one execution; the
    Appendix A simulation applies: an input generated by a row with
    multiplicity μ is buffered once with weight μ instead of μ times.
    """
    env.locals.clear()
    _run_accum_statements(statements, env, buffer, multiplicity)


def _run_accum_statements(
    statements: List[AccStatement],
    env: EvalEnv,
    buffer: InputBuffer,
    multiplicity: int,
) -> None:
    for stmt in statements:
        if isinstance(stmt, LocalAssign):
            env.locals[stmt.name] = stmt.expr.eval(env)
        elif isinstance(stmt, AccumUpdate):
            value = stmt.expr.eval(env)
            acc = stmt.target.resolve(env)
            if _accsan._ACTIVE is not None:
                _accsan._ACTIVE.record("accum", stmt.target, acc, stmt.op, value)
            if stmt.op == "+=":
                buffer.add(acc, value, multiplicity)
            else:
                buffer.set(acc, value)
        elif isinstance(stmt, AccumIf):
            branch = stmt.then if bool(stmt.cond.eval(env)) else stmt.otherwise
            _run_accum_statements(branch, env, buffer, multiplicity)
        elif isinstance(stmt, AccumForeach):
            _run_accum_foreach(stmt, env, buffer, multiplicity)
        elif isinstance(stmt, AttributeUpdate):
            raise QueryRuntimeError(
                "attribute assignments are only allowed in POST_ACCUM "
                "(in ACCUM, acc-executions for the same vertex would race)"
            )
        else:
            raise QueryRuntimeError(f"unknown ACCUM statement {stmt!r}")


def _run_accum_foreach(
    stmt: AccumForeach, env: EvalEnv, buffer: InputBuffer, multiplicity: int
) -> None:
    value = stmt.collection.eval(env)
    if isinstance(value, dict):
        items = list(value.items())
    else:
        try:
            items = list(value)
        except TypeError:
            raise QueryRuntimeError(
                f"FOREACH needs an iterable, got {type(value).__name__}"
            ) from None
    had_prior = stmt.var in env.locals
    prior = env.locals.get(stmt.var)
    try:
        for item in items:
            env.locals[stmt.var] = item
            _run_accum_statements(stmt.body, env, buffer, multiplicity)
    finally:
        if had_prior:
            env.locals[stmt.var] = prior
        else:
            env.locals.pop(stmt.var, None)


def run_post_accum(
    statements: List[AccStatement],
    ctx: QueryContext,
    rows: List,
    pattern_vars: set,
    primed: Dict[str, Dict[Any, Any]],
) -> None:
    """Execute a POST_ACCUM clause.

    Statement-major, once per *distinct* binding of the vertex variables
    each statement references (GSQL's POST-ACCUM is per-vertex, not
    per-row — multiplicities do not apply).  Plain assignments take effect
    immediately (so later statements observe them, as PageRank's
    ``v.@score = ...`` / ``abs(v.@score - v.@score')`` sequence requires);
    ``+=`` inputs are buffered and folded in after the whole clause, which
    keeps the phase order-invariant.
    """
    col = _obs._ACTIVE
    buffer = InputBuffer()
    for stmt in statements:
        deps = sorted(
            {name for name in stmt.referenced_names() if name in pattern_vars}
        )
        executions = _distinct_projections(rows, deps)
        if col is not None:
            col.count("block.post_accum_executions", len(executions))
        locals_: Dict[str, Any] = {}
        for binding in executions:
            env = EvalEnv(ctx, binding, locals_, primed)
            locals_.clear()
            _run_post_statement(stmt, ctx, env, buffer)
    if _accsan._ACTIVE is not None:
        # No block handle here: divergences become detections, never
        # violations (POST_ACCUM += is per-distinct-vertex, so the
        # permuted replay is still meaningful).
        _accsan._ACTIVE.check_flush(None, buffer)
    buffer.flush()


def _run_post_statement(
    stmt: AccStatement, ctx: QueryContext, env: EvalEnv, buffer: InputBuffer
) -> None:
    """One POST_ACCUM statement for one distinct-vertex execution."""
    if isinstance(stmt, LocalAssign):
        raise QueryRuntimeError(
            "local variables are not allowed in POST_ACCUM "
            "(each statement runs per distinct vertex)"
        )
    if isinstance(stmt, AccumIf):
        branch = stmt.then if bool(stmt.cond.eval(env)) else stmt.otherwise
        for inner in branch:
            _run_post_statement(inner, ctx, env, buffer)
        return
    if isinstance(stmt, AccumForeach):
        value = stmt.collection.eval(env)
        items = list(value.items()) if isinstance(value, dict) else list(value)
        had_prior = stmt.var in env.locals
        prior = env.locals.get(stmt.var)
        try:
            for item in items:
                env.locals[stmt.var] = item
                for inner in stmt.body:
                    _run_post_statement(inner, ctx, env, buffer)
        finally:
            if had_prior:
                env.locals[stmt.var] = prior
            else:
                env.locals.pop(stmt.var, None)
        return
    if isinstance(stmt, AttributeUpdate):
        vertex = stmt.base.eval(env)
        if not isinstance(vertex, Vertex):
            raise QueryRuntimeError(
                f"attribute assignment needs a vertex, got "
                f"{type(vertex).__name__}"
            )
        value = stmt.expr.eval(env)
        schema = ctx.graph.schema
        if schema is not None:
            decl = schema.vertex_type(vertex.type).attributes.get(stmt.attr)
            if decl is None:
                raise QueryRuntimeError(
                    f"vertex type {vertex.type!r} has no attribute "
                    f"{stmt.attr!r}"
                )
            decl.validate(value)
        vertex.set(stmt.attr, value)
        return
    if not isinstance(stmt, AccumUpdate):
        raise QueryRuntimeError(f"unknown POST_ACCUM statement {stmt!r}")
    value = stmt.expr.eval(env)
    acc = stmt.target.resolve(env)
    if _accsan._ACTIVE is not None:
        _accsan._ACTIVE.record("post_accum", stmt.target, acc, stmt.op, value)
    if stmt.op == "=":
        acc.assign(value)
    else:
        buffer.add(acc, value, 1)


def _distinct_projections(rows: List, variables: List[str]) -> List[Dict[str, Any]]:
    """Distinct projections of binding rows onto some variables.

    With no variables the statement is global and executes exactly once
    (provided the binding table is non-empty).
    """
    if not variables:
        return [{}] if rows else []
    seen = set()
    out: List[Dict[str, Any]] = []
    for row in rows:
        bindings = row.bindings
        key = tuple(_identity(bindings.get(v)) for v in variables)
        if key in seen:
            continue
        seen.add(key)
        out.append({v: bindings[v] for v in variables if v in bindings})
    return out


def _identity(value: Any) -> Any:
    if isinstance(value, Vertex):
        return ("v", value.vid)
    return value


def collect_primed_names(statements: List[AccStatement]) -> set:
    names = set()
    for stmt in statements:
        names.update(stmt.primed_names())
    return names


def walk_acc_statements(statements: List[AccStatement]) -> Iterator[AccStatement]:
    """Every statement in a clause, recursing into IF/FOREACH bodies.

    The old validator iterated only the top level, which silently skipped
    nested statement lists — the analyzer walks through this instead.
    """
    for stmt in statements:
        yield stmt
        if isinstance(stmt, AccumIf):
            yield from walk_acc_statements(stmt.then)
            yield from walk_acc_statements(stmt.otherwise)
        elif isinstance(stmt, AccumForeach):
            yield from walk_acc_statements(stmt.body)


__all__ = [
    "AccumTarget",
    "AccStatement",
    "LocalAssign",
    "AccumUpdate",
    "AccumIf",
    "AccumForeach",
    "AttributeUpdate",
    "InputBuffer",
    "run_map_phase",
    "run_post_accum",
    "collect_primed_names",
    "walk_acc_statements",
]
