"""Bulk-synchronous parallel execution of the ACCUM Map phase.

Section 4.3: "The snapshot semantics is compatible with bulk-synchronous
parallel execution ... while guaranteeing deterministic semantics in all
order-invariant use cases."  This module demonstrates that property
concretely: the binding table is partitioned across workers, each worker
runs its acc-executions into a *private* accumulator scratch (fresh
instances), and the per-worker partials are folded together with each
accumulator's ``merge`` — the parallel Reduce.

The point is semantic (determinism through order invariance), not raw
speed: CPython threads do not parallelize interpreter-bound work, so the
default runs partitions sequentially; pass ``use_threads=True`` to
exercise the same code path under a real thread pool.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Any, Dict, List, Optional, Tuple

from .. import accsan as _accsan
from ..accum.base import Accumulator
from ..errors import ParallelSafetyError, QueryAbortedError, QueryRuntimeError
from ..governor import faults as _faults
from ..obs import metrics as _obs
from .context import QueryContext
from .exprs import EvalEnv
from .pattern import BindingRow
from .stmts import AccStatement, AccumUpdate, LocalAssign


class _Partial:
    """One worker's private accumulation state.

    Keyed the way the final merge needs it: global accumulators by name,
    vertex accumulators by (name, vertex id).  Instances are created from
    the context's declared factories, so defaults/initializers match.
    """

    def __init__(self, ctx: QueryContext):
        self.ctx = ctx
        self.globals: Dict[str, Accumulator] = {}
        self.vertex: Dict[Tuple[str, Any], Accumulator] = {}

    def accumulator_for(self, target, env: EvalEnv) -> Accumulator:
        if target.is_global:
            acc = self.globals.get(target.name)
            if acc is None:
                acc = self.ctx.declaration(target.name).factory()
                self.globals[target.name] = acc
            return acc
        vertex = target.base.eval(env)
        key = (target.name, vertex.vid)
        acc = self.vertex.get(key)
        if acc is None:
            acc = self.ctx.declaration(target.name).factory()
            self.vertex[key] = acc
        return acc


def _run_partition(
    ctx: QueryContext,
    statements: List[AccStatement],
    rows: List[BindingRow],
    primed: Dict[str, Dict[Any, Any]],
    abort: Optional[threading.Event] = None,
) -> _Partial:
    if _faults._PLAN is not None:
        _faults.fire("parallel.worker")
    partial = _Partial(ctx)
    locals_: Dict[str, Any] = {}
    for row in rows:
        if abort is not None and abort.is_set():
            # A sibling worker failed; bail out cooperatively.  The
            # partial is discarded by the caller, so stopping early is
            # safe under snapshot semantics.
            break
        env = EvalEnv(ctx, row.bindings, locals_, primed)
        locals_.clear()
        for stmt in statements:
            if isinstance(stmt, LocalAssign):
                locals_[stmt.name] = stmt.expr.eval(env)
            elif isinstance(stmt, AccumUpdate):
                if stmt.op != "+=":
                    raise QueryRuntimeError(
                        "parallel ACCUM supports only += statements "
                        "(plain assignment is inherently a race)"
                    )
                value = stmt.expr.eval(env)
                partial.accumulator_for(stmt.target, env).combine_weighted(
                    value, row.multiplicity
                )
            else:
                raise QueryRuntimeError(f"unknown ACCUM statement {stmt!r}")
    return partial


def _run_threaded(
    ctx: QueryContext,
    statements: List[AccStatement],
    chunks: List[List[BindingRow]],
    primed: Dict[str, Dict[Any, Any]],
) -> List[_Partial]:
    """Run one partition per worker thread with structured failure.

    A failing worker does not surface as a bare future exception: its
    error is re-raised as :class:`QueryRuntimeError` carrying the
    worker's partition index (``.partition``), pending siblings are
    cancelled and running siblings are signalled to drain via a shared
    abort event, so the pool shuts down promptly and no partial escapes
    into the live accumulators.
    """
    abort = threading.Event()
    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
        futures = [
            pool.submit(_run_partition, ctx, statements, chunk, primed, abort)
            for chunk in chunks
        ]
        wait(futures, return_when=FIRST_EXCEPTION)
        failed_idx: Optional[int] = None
        failure: Optional[BaseException] = None
        for idx, future in enumerate(futures):
            if future.done() and future.exception() is not None:
                failed_idx, failure = idx, future.exception()
                break
        if failure is not None:
            abort.set()
            for future in futures:
                future.cancel()
            # Drain: the `with` block joins running workers, which exit
            # at their next abort-event check.
        if failure is None:
            # Collect partials slotted by *partition index*, never by
            # thread completion order: workers may finish in any order,
            # but the Reduce phase must see a deterministic sequence so
            # even a merely-associative merge gives one reproducible
            # result.
            partials: List[Optional[_Partial]] = [None] * len(futures)
            for idx, future in enumerate(futures):
                partials[idx] = future.result()
            return partials
    if isinstance(failure, QueryAbortedError):
        raise failure  # governor aborts keep their structured identity
    raise QueryRuntimeErrorWithPartition(
        f"parallel ACCUM worker for partition {failed_idx} failed: {failure}",
        partition=failed_idx,
    ) from failure


class QueryRuntimeErrorWithPartition(QueryRuntimeError):
    """A worker failure wrapped with the partition index that raised it."""

    def __init__(self, message: str, partition: Optional[int] = None):
        super().__init__(message)
        self.partition = partition


def parallel_accum(
    ctx: QueryContext,
    statements: List[AccStatement],
    rows: List[BindingRow],
    partitions: int = 4,
    primed: Optional[Dict[str, Dict[Any, Any]]] = None,
    use_threads: bool = False,
    certificate: object = None,
    on_uncertified: str = "raise",
) -> None:
    """Execute an ACCUM clause over ``rows`` with a partitioned Map phase
    and a merge-based Reduce, mutating the context's accumulators.

    Deterministic whenever every target accumulator is order-invariant
    (the engine's guarantee from Section 4.3).  The licence to partition
    comes in one of two forms:

    * a :class:`~repro.core.tractable.DeterminismCertificate` from the
      effect analysis (``block.effect_certificate``): COMMUTATIVE runs,
      anything else is refused with a structured
      :class:`~repro.errors.ParallelSafetyError` — or, with
      ``on_uncertified="serialize"``, degraded to a single partition
      (sequential, deterministic) with an obs counter instead of an
      exception;
    * no certificate (programmatically built statement lists): the
      legacy declaration probe rejects order-dependent targets.

    Either way the engine never runs a nondeterministic parallel fold
    silently.
    """
    primed = primed or {}
    if certificate is not None:
        if not getattr(certificate, "commutative", False):
            status = getattr(certificate, "status", None)
            status_text = getattr(status, "value", str(status))
            witnesses = tuple(getattr(certificate, "witnesses", ()))
            if on_uncertified == "serialize":
                partitions = 1
                col = _obs._ACTIVE
                if col is not None:
                    col.count("parallel.serialized_uncertified")
            else:
                raise ParallelSafetyError(
                    f"parallel ACCUM refused: the block's effect "
                    f"certificate is {status_text}, not commutative "
                    f"({'; '.join(witnesses) or 'no witnesses'}); run "
                    f"sequentially, or pass on_uncertified='serialize' "
                    f"to degrade instead of failing",
                    status=status_text or "",
                    witnesses=witnesses,
                )
    else:
        for stmt in statements:
            if isinstance(stmt, AccumUpdate):
                decl = ctx.declaration(stmt.target.name)
                if not decl.order_invariant:
                    raise QueryRuntimeError(
                        f"@{stmt.target.name} is order-dependent; parallel "
                        f"execution would be nondeterministic (Section 4.3)"
                    )
    partitions = max(1, min(partitions, len(rows) or 1))
    chunks = [rows[i::partitions] for i in range(partitions)]

    if use_threads and partitions > 1:
        partials = _run_threaded(ctx, statements, chunks, primed)
    else:
        partials = [_run_partition(ctx, statements, chunk, primed) for chunk in chunks]

    if _accsan._ACTIVE is not None:
        _check_merge_schedules(ctx, partials, certificate)

    # Reduce: merge worker partials into the live accumulators, walking
    # the partials in partition-index order (the order `partials` is
    # built in, for both the threaded and sequential paths above).
    merges = 0
    for partial in partials:
        for name, acc in partial.globals.items():
            ctx.global_accum(name).merge(acc)
        for (name, vid), acc in partial.vertex.items():
            ctx.vertex_accum(name, vid).merge(acc)
        merges += len(partial.globals) + len(partial.vertex)
    col = _obs._ACTIVE
    if col is not None:
        col.count("accum.merges", merges)
        col.count("parallel.partitions", len(partials))


def _check_merge_schedules(
    ctx: QueryContext, partials: List[_Partial], certificate: object
) -> None:
    """Hand AccSan every accumulator's per-partition partials so it can
    permute the merge order before the real Reduce runs."""
    sanitizer = _accsan._ACTIVE
    by_global: Dict[str, List[Accumulator]] = {}
    by_vertex: Dict[Tuple[str, Any], List[Accumulator]] = {}
    for partial in partials:
        for name, acc in partial.globals.items():
            by_global.setdefault(name, []).append(acc)
        for key, acc in partial.vertex.items():
            by_vertex.setdefault(key, []).append(acc)
    for name, accs in by_global.items():
        sanitizer.check_merge(
            f"@@{name}", ctx.global_accum(name), accs, certificate,
            "parallel_accum",
        )
    for (name, vid), accs in by_vertex.items():
        sanitizer.check_merge(
            f"{vid}.@{name}", ctx.vertex_accum(name, vid), accs, certificate,
            "parallel_accum",
        )


__all__ = ["parallel_accum", "QueryRuntimeErrorWithPartition"]
