"""Structured descriptors of declared accumulator types.

The GSQL parser compiles accumulator declarations straight to instance
factories (what execution needs), which erases the declared type.  This
module preserves that type as data: an :class:`AccumTypeInfo` mirrors the
polymorphic accumulator lattice of Section 3 — ``SumAccum<INT>``,
``MapAccum<STRING, SumAccum<FLOAT>>``, ``HeapAccum<MyTuple>(k, ...)`` —
so the static analyzer (:mod:`repro.analysis`) can type-check ``+=``
inputs, map/heap accesses and projections without re-parsing anything.

Only data lives here; the inference rules live in
:mod:`repro.analysis.types`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

#: Scalar type names the lattice distinguishes, normalized to upper case.
NUMERIC_SCALARS = frozenset(
    {"INT", "UINT", "FLOAT", "DOUBLE", "DATETIME", "TIMESTAMP", "DATE"}
)
#: INT-like members of the numeric family (exact arithmetic).
INTEGRAL_SCALARS = frozenset({"INT", "UINT", "DATETIME", "TIMESTAMP", "DATE"})

#: Accumulator kinds whose ``+=`` input is a single scalar element.
SCALAR_INPUT_KINDS = frozenset(
    {"SumAccum", "MinAccum", "MaxAccum", "AvgAccum", "OrAccum", "AndAccum"}
)
#: Collection kinds with one element type.
COLLECTION_KINDS = frozenset({"SetAccum", "BagAccum", "ListAccum", "ArrayAccum"})

#: Kinds whose fold is order-dependent (the Section 7 tractability
#: boundary): lists/arrays append, string concatenation is ordered.
ORDER_DEPENDENT_KINDS = frozenset({"ListAccum", "ArrayAccum"})


class AccumTypeInfo:
    """One parsed accumulator type expression.

    ``kind``
        The accumulator class name (``"SumAccum"``, ``"MapAccum"``, ...).
    ``element``
        Scalar element type for numeric/logical/collection kinds
        (upper-cased), or None when the declaration omitted it.
    ``key`` / ``value``
        Key scalar and value type of a ``MapAccum`` — the value is a
        scalar name or a nested :class:`AccumTypeInfo`.
    ``tuple_name`` / ``tuple_fields``
        The TYPEDEF TUPLE backing a ``HeapAccum``: its name and
        ``(field_name, field_type)`` pairs.
    ``group_keys`` / ``nested``
        GroupByAccum key ``(type, name)`` pairs and nested accumulator
        types.
    """

    __slots__ = (
        "kind",
        "element",
        "key",
        "value",
        "tuple_name",
        "tuple_fields",
        "group_keys",
        "nested",
    )

    def __init__(
        self,
        kind: str,
        element: Optional[str] = None,
        key: Optional[str] = None,
        value: Optional[Union[str, "AccumTypeInfo"]] = None,
        tuple_name: Optional[str] = None,
        tuple_fields: Optional[Sequence[Tuple[str, str]]] = None,
        group_keys: Optional[Sequence[Tuple[str, str]]] = None,
        nested: Optional[Sequence["AccumTypeInfo"]] = None,
    ):
        self.kind = kind
        self.element = element.upper() if element else None
        self.key = key.upper() if key else None
        self.value = value
        self.tuple_name = tuple_name
        self.tuple_fields = list(tuple_fields) if tuple_fields else None
        self.group_keys = list(group_keys) if group_keys else None
        self.nested = list(nested) if nested else None

    # ------------------------------------------------------------------
    @property
    def order_dependent(self) -> bool:
        """Whether folds into this type depend on input order."""
        if self.kind in ORDER_DEPENDENT_KINDS:
            return True
        if self.kind == "SumAccum" and self.element == "STRING":
            return True  # string concatenation
        if self.kind == "MapAccum" and isinstance(self.value, AccumTypeInfo):
            return self.value.order_dependent
        if self.nested:
            return any(n.order_dependent for n in self.nested)
        return False

    def describe(self) -> str:
        """A GSQL-like rendering for diagnostics."""
        if self.kind == "MapAccum":
            value = (
                self.value.describe()
                if isinstance(self.value, AccumTypeInfo)
                else (self.value or "?")
            )
            return f"MapAccum<{self.key or '?'}, {value}>"
        if self.kind == "HeapAccum":
            return f"HeapAccum<{self.tuple_name or '?'}>"
        if self.kind == "GroupByAccum":
            keys = ", ".join(f"{t} {n}" for t, n in (self.group_keys or []))
            nested = ", ".join(n.describe() for n in (self.nested or []))
            return f"GroupByAccum<{keys}, {nested}>"
        if self.element:
            return f"{self.kind}<{self.element}>"
        return self.kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AccumTypeInfo({self.describe()})"


def heap_field_types(info: AccumTypeInfo) -> List[str]:
    """Declared field types of a heap's tuple, upper-cased."""
    return [ftype.upper() for _, ftype in (info.tuple_fields or [])]


__all__ = [
    "AccumTypeInfo",
    "NUMERIC_SCALARS",
    "INTEGRAL_SCALARS",
    "SCALAR_INPUT_KINDS",
    "COLLECTION_KINDS",
    "ORDER_DEPENDENT_KINDS",
    "heap_field_types",
]
