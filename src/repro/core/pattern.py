"""FROM-clause patterns and binding-table evaluation.

A pattern is a comma-separated list of *chains*; each chain alternates
vertex specs and DARPE hops::

    Customer:c -(Likes>)- Product:t -(<Likes)- Customer:o

Evaluating a pattern produces the *binding table* of Section 4.1 — one row
per binding of the pattern variables — in the **compressed representation**
of Appendix A: each distinct binding is stored once together with its
multiplicity (the number of legal paths witnessing it).  Keeping the table
compressed is what makes the Theorem 7.1 evaluation polynomial even when
exponentially many paths match.

Two evaluation engines share this module:

* the **counting engine** (GSQL/TigerGraph semantics) computes hop
  multiplicities with the polynomial SDMC algorithm under
  all-shortest-paths semantics;
* the **enumeration engine** (the Neo4j-style baseline) computes them by
  materializing every legal path under the configured semantics, with its
  inherent exponential worst case.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

from ..darpe.ast import Symbol, contains_kleene
from ..darpe.automaton import CompiledDarpe
from ..darpe.parser import parse_darpe
from ..errors import QueryCompileError, QueryRuntimeError
from ..graph.elements import Vertex
from ..obs import metrics as _obs
from ..paths.sdmc import single_source_sdmc
from ..paths.semantics import PathSemantics
from ..enumeration.engine import match_counts
from .context import QueryContext

_hidden_counter = itertools.count()


def hidden_var() -> str:
    """A fresh name for an unnamed pattern position."""
    return f"__v{next(_hidden_counter)}"


class EngineMode:
    """How a SELECT block's pattern is evaluated.

    ``counting()`` is the paper's engine: compressed binding table +
    polynomial SDMC counting under all-shortest-paths semantics.
    ``enumeration(semantics)`` materializes paths under any legality
    flavor — the baseline the experiments compare against.
    """

    COUNTING = "counting"
    ENUMERATION = "enumeration"
    AUTO = "auto"

    def __init__(
        self,
        kind: str,
        semantics: PathSemantics,
        budget: Optional[int] = None,
        max_length: Optional[int] = None,
    ):
        self.kind = kind
        self.semantics = semantics
        self.budget = budget
        self.max_length = max_length

    @classmethod
    def counting(
        cls,
        max_length: Optional[int] = None,
        semantics: PathSemantics = PathSemantics.ALL_SHORTEST,
    ) -> "EngineMode":
        """The polynomial engine.  ``semantics`` may also be
        :data:`PathSemantics.EXISTENCE` (SparQL-style multiplicity-1
        matching, equally tractable)."""
        if semantics not in (PathSemantics.ALL_SHORTEST, PathSemantics.EXISTENCE):
            raise QueryCompileError(
                f"the counting engine supports all-shortest-paths and "
                f"existence semantics, not {semantics.value} (use the "
                f"enumeration engine)"
            )
        return cls(cls.COUNTING, semantics, max_length=max_length)

    def for_semantics(self, semantics: PathSemantics) -> "EngineMode":
        """This mode's configuration re-targeted at another matching
        semantics — the per-block ``USING SEMANTICS`` override."""
        if semantics in (PathSemantics.ALL_SHORTEST, PathSemantics.EXISTENCE):
            return EngineMode(
                self.COUNTING, semantics, max_length=self.max_length
            )
        return EngineMode(
            self.ENUMERATION, semantics, budget=self.budget, max_length=self.max_length
        )

    @classmethod
    def enumeration(
        cls,
        semantics: PathSemantics = PathSemantics.NO_REPEATED_EDGE,
        budget: Optional[int] = None,
        max_length: Optional[int] = None,
    ) -> "EngineMode":
        return cls(cls.ENUMERATION, semantics, budget, max_length)

    @classmethod
    def auto(
        cls,
        max_length: Optional[int] = None,
        budget: Optional[int] = None,
        semantics: PathSemantics = PathSemantics.ALL_SHORTEST,
    ) -> "EngineMode":
        """Engine selection deferred to the planner, per SELECT block.

        Each block resolves to the counting engine when its static
        :class:`~repro.core.tractable.TractabilityCertificate` proves it
        tractable (falling back to a runtime probe of the declarations
        when no certificate is attached), and to the enumeration engine
        under the same all-shortest-paths semantics otherwise — see
        :func:`repro.core.planner.select_engine`.  Compiled plans
        (:mod:`repro.compile`) bake this choice at compile time via
        :func:`repro.core.planner.compile_time_engine` when a
        certificate is present.
        """
        return cls(cls.AUTO, semantics, budget=budget, max_length=max_length)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EngineMode({self.kind}, {self.semantics.value})"


class VertexSpec:
    """A vertex position in a pattern: a restricting *source name* plus an
    optional variable.

    ``name`` resolves, in order, to: a vertex-set variable in the context,
    a vertex type of the graph, or the wildcard ``_``/``ANY``.  If the
    *variable* coincides with a vertex-valued query parameter (the
    ``Customer:c`` idiom of Figure 3, where ``c`` is the parameter), the
    position is additionally pinned to that single vertex.
    """

    def __init__(self, name: str, var: Optional[str] = None):
        self.name = name
        self.var = var if var is not None else hidden_var()

    def seed(self, ctx: QueryContext) -> List[Vertex]:
        """The vertices this spec allows as a chain *source*."""
        pinned = self._pinned_vertex(ctx)
        if pinned is not None:
            if not self._allows_no_pin(ctx, pinned):
                return []
            return [pinned]
        return list(self._candidates(ctx))

    def allows(self, ctx: QueryContext, vertex: Vertex) -> bool:
        """Is ``vertex`` admissible in this position (as a hop target)?"""
        pinned = self._pinned_vertex(ctx)
        if pinned is not None and vertex.vid != pinned.vid:
            return False
        return self._allows_no_pin(ctx, vertex)

    def _pinned_vertex(self, ctx: QueryContext) -> Optional[Vertex]:
        value = ctx.params.get(self.var)
        return value if isinstance(value, Vertex) else None

    def _allows_no_pin(self, ctx: QueryContext, vertex: Vertex) -> bool:
        if self.name in ("_", "ANY"):
            return True
        vset = ctx.vertex_sets.get(self.name)
        if vset is not None:
            return vertex in vset
        return vertex.type == self.name

    def _candidates(self, ctx: QueryContext) -> Iterable[Vertex]:
        if self.name in ("_", "ANY"):
            return ctx.graph.vertices()
        vset = ctx.vertex_sets.get(self.name)
        if vset is not None:
            return iter(vset)
        if ctx.graph.schema is not None and not ctx.graph.schema.has_vertex_type(
            self.name
        ):
            raise QueryRuntimeError(
                f"{self.name!r} is neither a vertex set nor a vertex type"
            )
        return ctx.graph.vertices(self.name)

    def candidates(self, ctx: QueryContext) -> List[Vertex]:
        """All vertices admissible in this position (pins applied)."""
        return self.seed(ctx)

    def __repr__(self) -> str:
        return f"{self.name}:{self.var}"


class Hop:
    """One DARPE edge-pattern between two vertex positions."""

    def __init__(
        self,
        darpe: CompiledDarpe,
        target: VertexSpec,
        edge_var: Optional[str] = None,
    ):
        self.darpe = darpe
        self.target = target
        self.edge_var = edge_var
        self.is_single_symbol = isinstance(darpe.ast, Symbol)
        if edge_var is not None and not self.is_single_symbol:
            raise QueryCompileError(
                f"edge variable {edge_var!r} requires a single-edge pattern; "
                f"{darpe.text!r} can match multi-edge paths (variables may "
                f"not bind inside repeated subpatterns — Section 7)"
            )
        self.has_kleene = contains_kleene(darpe.ast)
        self._reversed: Optional[CompiledDarpe] = None

    @property
    def reversed_darpe(self) -> CompiledDarpe:
        """The DARPE matching this hop's paths read target-to-source
        (compiled lazily; used by the target-side expansion plan)."""
        if self._reversed is None:
            from .planner import reverse_darpe

            ast = reverse_darpe(self.darpe.ast)
            self._reversed = CompiledDarpe(ast, f"reverse({self.darpe.text})")
        return self._reversed

    def __repr__(self) -> str:
        ev = f":{self.edge_var}" if self.edge_var else ""
        return f"-({self.darpe.text}{ev})- {self.target!r}"


class TableSource:
    """A relational-table conjunct in a FROM clause (Example 1 / Figure 1
    of the paper joins the Employee table with the LinkedIn graph).

    The variable binds to each row of the table (a dict-like object whose
    columns are read with the same ``var.column`` syntax as vertex
    attributes); joins with graph conjuncts happen through WHERE."""

    def __init__(self, table_name: str, var: Optional[str] = None):
        self.table_name = table_name
        self.var = var if var is not None else hidden_var()

    def rows(self, ctx: QueryContext) -> Iterable[dict]:
        table = ctx.tables.get(self.table_name)
        if table is None:
            raise QueryRuntimeError(
                f"{self.table_name!r} is not a registered table"
            )
        return table.dicts()

    def variables(self) -> List[str]:
        return [self.var]

    @property
    def hops(self) -> List["Hop"]:
        return []

    def __repr__(self) -> str:
        return f"{self.table_name}:{self.var}"


class Chain:
    """A linear pattern: source spec plus a sequence of hops."""

    def __init__(self, source: VertexSpec, hops: List[Hop]):
        self.source = source
        self.hops = hops

    def variables(self) -> List[str]:
        names = [self.source.var]
        for hop in self.hops:
            if hop.edge_var:
                names.append(hop.edge_var)
            names.append(hop.target.var)
        return names

    def __repr__(self) -> str:
        return f"{self.source!r} " + " ".join(repr(h) for h in self.hops)


class Pattern:
    """A full FROM-clause pattern: one or more chains joined on shared
    variables."""

    def __init__(self, chains: List[Chain]):
        if not chains:
            raise QueryCompileError("a pattern needs at least one chain")
        self.chains = chains

    def variables(self) -> List[str]:
        seen: List[str] = []
        for chain in self.chains:
            for name in chain.variables():
                if name not in seen:
                    seen.append(name)
        return seen

    def visible_variables(self) -> List[str]:
        return [v for v in self.variables() if not v.startswith("__v")]

    def has_kleene(self) -> bool:
        return any(hop.has_kleene for chain in self.chains for hop in chain.hops)

    def __repr__(self) -> str:
        return ", ".join(repr(c) for c in self.chains)


class BindingRow(NamedTuple):
    """One compressed binding-table row: variable bindings plus the count
    of legal paths witnessing them (Appendix A)."""

    bindings: Dict[str, Any]
    multiplicity: int


class BindingTable:
    """The (compressed) match table of Section 4.1."""

    def __init__(self, variables: List[str], rows: List[BindingRow]):
        self.variables = variables
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def total_multiplicity(self) -> int:
        """The conceptual (uncompressed) row count — may be astronomically
        large; this is the quantity Table 1's "path count" column reports."""
        return sum(row.multiplicity for row in self.rows)

    def __iter__(self):
        return iter(self.rows)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

def _hop_counts(
    graph, source_vid: Any, hop: Hop, mode: EngineMode, reverse: bool = False
) -> Dict[Any, int]:
    """target vid -> multiplicity for one (source vertex, hop).

    With ``reverse=True``, ``source_vid`` is the hop's *target* and the
    reversed DARPE is matched, so the returned keys are hop sources.
    """
    darpe = hop.reversed_darpe if reverse else hop.darpe
    if mode.kind == EngineMode.COUNTING:
        counts = {
            vid: res.count
            for vid, res in single_source_sdmc(
                graph, source_vid, darpe, max_length=mode.max_length
            ).items()
        }
        if mode.semantics is PathSemantics.EXISTENCE:
            # SparQL 1.1: reachability with multiplicity 1 (Section 6.1's
            # "tractable but aggregation-unfriendly" flavor).
            return {vid: 1 for vid in counts}
        return counts
    return match_counts(
        graph,
        source_vid,
        darpe,
        mode.semantics,
        max_length=mode.max_length,
        budget=mode.budget,
    )


def _expand_single_symbol(
    graph, source_vid: Any, symbol: Symbol
) -> Iterable[Tuple[Any, Any]]:
    """(edge, neighbor vid) pairs for a one-edge hop."""
    etype = symbol.edge_type
    for step in graph.steps(source_vid, direction=symbol.direction, etype=etype):
        yield step.edge, step.neighbor


def _passes_filters(
    ctx: QueryContext, var: str, value: Any, var_filters: Dict[str, List[Any]]
) -> bool:
    """Evaluate a variable's pushed-down filters against one binding
    (a vertex, an edge, or a relational-table row)."""
    filters = var_filters.get(var)
    if not filters:
        return True
    from .exprs import EvalEnv  # local import to avoid a cycle at load time

    env = EvalEnv(ctx, {var: value})
    return all(f.eval(env) for f in filters)


def evaluate_chain(
    ctx: QueryContext,
    chain: Chain,
    mode: EngineMode,
    var_filters: Optional[Dict[str, List[Any]]] = None,
) -> List[BindingRow]:
    graph = ctx.graph
    var_filters = var_filters or {}
    col = _obs._ACTIVE
    rows: List[BindingRow] = [
        BindingRow({chain.source.var: v}, 1)
        for v in chain.source.seed(ctx)
        if _passes_filters(ctx, chain.source.var, v, var_filters)
    ]
    current_var = chain.source.var
    if col is not None:
        # Seed width after pushdown: the Qn query of Section 7.1 seeds
        # from 1 vertex instead of all 91 thanks to the planner.
        col.count("pattern.seed_vertices", len(rows))
    for hop in chain.hops:
        if col is not None:
            hop_span = col.span(
                "hop",
                label=f"hop -({hop.darpe.text})- {hop.target!r}",
                rows_in=len(rows),
            )
        try:
            new_rows, plan = _evaluate_hop(
                ctx, graph, hop, rows, mode, var_filters, current_var, col
            )
        finally:
            if col is not None:
                col.close(hop_span)
        if col is not None:
            hop_span.set(
                plan=plan,
                rows_out=len(new_rows),
                multiplicity_out=sum(r.multiplicity for r in new_rows),
            )
        rows = new_rows
        current_var = hop.target.var
    return rows


def _evaluate_hop(
    ctx: QueryContext,
    graph,
    hop: Hop,
    rows: List[BindingRow],
    mode: EngineMode,
    var_filters: Dict[str, List[Any]],
    current_var: str,
    col,
) -> Tuple[List[BindingRow], str]:
    """Expand one hop; returns (new rows, plan label for observability)."""
    new_rows: List[BindingRow] = []
    target_var = hop.target.var
    if hop.is_single_symbol:
        # One-edge hops expand directly over the adjacency index and
        # can bind an edge variable.
        plan = "adjacency"
        for row in rows:
            source_vertex = row.bindings[current_var]
            for edge, nbr in _expand_single_symbol(
                graph, source_vertex.vid, hop.darpe.ast
            ):
                target_vertex = graph.vertex(nbr)
                if not hop.target.allows(ctx, target_vertex):
                    continue
                if not _passes_filters(ctx, target_var, target_vertex, var_filters):
                    continue
                if hop.edge_var is not None and not _passes_filters(
                    ctx, hop.edge_var, edge, var_filters
                ):
                    continue
                new_rows.extend(
                    _bind(row, hop, target_vertex, edge, 1)
                )
    else:
        reverse_targets = _reverse_targets(
            ctx, hop, rows, mode, var_filters, current_var
        )
        if reverse_targets is not None:
            # Pinned-target hop: expand from the (smaller) target side
            # over the reversed DARPE — the plan shape whose cost the
            # paper's Table 1 measures on Neo4j.
            plan = f"{mode.kind}-reversed"
            if col is not None:
                col.count("planner.hops_reversed")
            counts_by_target = {
                t.vid: _hop_counts(graph, t.vid, hop, mode, reverse=True)
                for t in reverse_targets
            }
            for row in rows:
                source_vid = row.bindings[current_var].vid
                for target in reverse_targets:
                    mult = counts_by_target[target.vid].get(source_vid, 0)
                    if mult:
                        new_rows.extend(_bind(row, hop, target, None, mult))
        else:
            # Forward expansion; the per-source result is cached since
            # many rows share a source vertex.
            plan = (
                "sdmc-counting"
                if mode.kind == EngineMode.COUNTING
                else "enumeration"
            )
            if col is not None:
                col.count("planner.hops_forward")
            cache: Dict[Any, Dict[Any, int]] = {}
            for row in rows:
                source_vertex = row.bindings[current_var]
                counts = cache.get(source_vertex.vid)
                if counts is None:
                    counts = _hop_counts(graph, source_vertex.vid, hop, mode)
                    cache[source_vertex.vid] = counts
                for target_vid, mult in counts.items():
                    target_vertex = graph.vertex(target_vid)
                    if not hop.target.allows(ctx, target_vertex):
                        continue
                    if not _passes_filters(
                        ctx, target_var, target_vertex, var_filters
                    ):
                        continue
                    new_rows.extend(_bind(row, hop, target_vertex, None, mult))
    return new_rows, plan


def _reverse_targets(
    ctx: QueryContext,
    hop: Hop,
    rows: List[BindingRow],
    mode: EngineMode,
    var_filters: Dict[str, List[Any]],
    current_var: str,
) -> Optional[List[Vertex]]:
    """Decide whether to evaluate a multi-edge hop from the target side.

    Applies when the hop's target variable carries pushed-down filters
    that pin it to at most as many vertices as there are distinct hop
    sources.  Counting-engine hops stay forward (the BFS is cheap and the
    per-source cache already amortizes); enumeration hops reverse, which
    is what bounds the Table 1 enumeration cost by 2^n instead of 2^30.
    """
    if mode.kind != EngineMode.ENUMERATION:
        return None
    if not var_filters.get(hop.target.var):
        return None
    if not rows:
        return None
    targets = [
        v
        for v in hop.target.candidates(ctx)
        if _passes_filters(ctx, hop.target.var, v, var_filters)
    ]
    distinct_sources = {row.bindings[current_var].vid for row in rows}
    if len(targets) <= len(distinct_sources):
        return targets
    return None


def _bind(
    row: BindingRow,
    hop: Hop,
    target_vertex: Vertex,
    edge: Any,
    mult: int,
) -> Iterable[BindingRow]:
    """Extend a row with a hop's target (and edge) binding.

    A repeated variable acts as a join condition: the new binding must
    agree with the existing one or the row is dropped.
    """
    var = hop.target.var
    existing = row.bindings.get(var)
    if existing is not None and existing.vid != target_vertex.vid:
        return
    bindings = dict(row.bindings)
    bindings[var] = target_vertex
    if hop.edge_var is not None:
        bindings[hop.edge_var] = edge
    yield BindingRow(bindings, row.multiplicity * mult)


def _join(left: List[BindingRow], right: List[BindingRow]) -> List[BindingRow]:
    """Natural join of two chains' rows on their shared variables,
    multiplying multiplicities."""
    if not left or not right:
        return []
    shared = sorted(set(left[0].bindings) & set(right[0].bindings))

    def key(row: BindingRow) -> Tuple:
        return tuple(_join_key(row.bindings[name]) for name in shared)

    buckets: Dict[Tuple, List[BindingRow]] = {}
    for row in right:
        buckets.setdefault(key(row), []).append(row)
    out: List[BindingRow] = []
    for lrow in left:
        for rrow in buckets.get(key(lrow), ()):
            bindings = dict(lrow.bindings)
            bindings.update(rrow.bindings)
            out.append(BindingRow(bindings, lrow.multiplicity * rrow.multiplicity))
    return out


def _join_key(value: Any) -> Any:
    if isinstance(value, Vertex):
        return ("v", value.vid)
    if isinstance(value, dict):  # relational-table row binding
        return ("t", tuple(sorted((k, repr(v)) for k, v in value.items())))
    return ("e", getattr(value, "eid", value))


def evaluate_pattern(
    ctx: QueryContext,
    pattern: Pattern,
    mode: EngineMode,
    var_filters: Optional[Dict[str, List[Any]]] = None,
) -> BindingTable:
    """Evaluate a FROM-clause pattern to its compressed binding table.

    ``var_filters`` maps pattern variables to pushed-down single-variable
    WHERE conjuncts (see :mod:`repro.core.planner`); they are applied as
    each variable is bound.
    """
    rows: Optional[List[BindingRow]] = None
    filters = var_filters or {}
    for chain in pattern.chains:
        if isinstance(chain, TableSource):
            chain_rows = [
                BindingRow({chain.var: row}, 1)
                for row in chain.rows(ctx)
                if _passes_filters(ctx, chain.var, row, filters)
            ]
        elif _is_table_conjunct(ctx, chain):
            # A hop-free conjunct naming a registered relational table
            # (and not a vertex set/type) scans that table — the paper's
            # Figure 1 "Employee" conjunct.
            source = TableSource(chain.source.name, chain.source.var)
            chain_rows = [
                BindingRow({source.var: row}, 1)
                for row in source.rows(ctx)
                if _passes_filters(ctx, source.var, row, filters)
            ]
        else:
            chain_rows = evaluate_chain(ctx, chain, mode, var_filters)
        rows = chain_rows if rows is None else _join(rows, chain_rows)
    assert rows is not None
    return BindingTable(pattern.variables(), rows)


def _is_table_conjunct(ctx: QueryContext, chain: Chain) -> bool:
    name = chain.source.name
    if chain.hops or name in ("_", "ANY"):
        return False
    if name in ctx.vertex_sets or name not in ctx.tables:
        return False
    schema = ctx.graph.schema
    if schema is not None and schema.has_vertex_type(name):
        return False
    return True


# ----------------------------------------------------------------------
# Construction helpers (used by the GSQL compiler and the Python API)
# ----------------------------------------------------------------------

def hop(
    darpe_text: str, target: str, target_var: Optional[str] = None, edge_var: Optional[str] = None
) -> Hop:
    """Build a hop from pattern text fragments."""
    compiled = CompiledDarpe(parse_darpe(darpe_text), darpe_text)
    return Hop(compiled, VertexSpec(target, target_var), edge_var)


def chain(source: str, source_var: Optional[str], *hops: Hop) -> Chain:
    return Chain(VertexSpec(source, source_var), list(hops))


__all__ = [
    "EngineMode",
    "VertexSpec",
    "Hop",
    "Chain",
    "Pattern",
    "BindingRow",
    "BindingTable",
    "evaluate_pattern",
    "evaluate_chain",
    "hop",
    "chain",
    "hidden_var",
]
