"""Abstract syntax trees for Direction-Aware Regular Path Expressions.

The grammar follows Section 2 of the paper::

    rpe    ->  '_' | EdgeType | '(' rpe ')' | rpe '*' bounds?
             | rpe '.' rpe | rpe '|' rpe
    bounds ->  N? '..' N?

extended with direction adornments: for every edge type ``E`` the
direction-adorned alphabet contains ``E>`` (cross a directed E-edge along
its orientation), ``<E`` (against it) and bare ``E`` (an undirected
E-edge).  The wildcard ``_`` may be adorned the same way (``_>``, ``<_``,
``_``).

Nodes are immutable and hashable; :func:`normalize` lowers bounded repeats
into the core Symbol/Concat/Alt/Star/Epsilon fragment used by the NFA
builder.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..graph.elements import FORWARD, REVERSE, UNDIRECTED, adorn


class DarpeNode:
    """Base class for DARPE AST nodes."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]


class Symbol(DarpeNode):
    """A direction-adorned edge-type symbol.

    ``edge_type`` is ``None`` for the wildcard ``_``; ``direction`` is one
    of the adornment constants from :mod:`repro.graph.elements`.
    """

    __slots__ = ("edge_type", "direction")

    def __init__(self, edge_type: Optional[str], direction: str):
        self.edge_type = edge_type
        self.direction = direction

    def _key(self):
        return (self.edge_type, self.direction)

    def matches(self, edge_type: str, direction: str) -> bool:
        """Does this symbol match a concrete adorned edge crossing?"""
        return self.direction == direction and (
            self.edge_type is None or self.edge_type == edge_type
        )

    def __repr__(self) -> str:
        return adorn(self.edge_type if self.edge_type is not None else "_", self.direction)


class Epsilon(DarpeNode):
    """The empty word (arises from lowering optional repetitions)."""

    __slots__ = ()

    def _key(self):
        return ()

    def __repr__(self) -> str:
        return "ε"


class Concat(DarpeNode):
    """Concatenation ``r1 . r2 . ... . rk``."""

    __slots__ = ("parts",)

    def __init__(self, parts: Tuple[DarpeNode, ...]):
        self.parts = tuple(parts)

    def _key(self):
        return self.parts

    def __repr__(self) -> str:
        return ".".join(_paren(p, self) for p in self.parts)


class Alt(DarpeNode):
    """Alternation ``r1 | r2 | ... | rk``."""

    __slots__ = ("parts",)

    def __init__(self, parts: Tuple[DarpeNode, ...]):
        self.parts = tuple(parts)

    def _key(self):
        return self.parts

    def __repr__(self) -> str:
        return "|".join(repr(p) for p in self.parts)


class Star(DarpeNode):
    """Unbounded Kleene repetition ``r*`` (zero or more)."""

    __slots__ = ("inner",)

    def __init__(self, inner: DarpeNode):
        self.inner = inner

    def _key(self):
        return (self.inner,)

    def __repr__(self) -> str:
        return f"{_paren(self.inner, self)}*"


class Repeat(DarpeNode):
    """Bounded repetition ``r* m..M``; ``max_count`` None means unbounded.

    ``E>*2..4`` parses to ``Repeat(Symbol(E,>), 2, 4)``.
    """

    __slots__ = ("inner", "min_count", "max_count")

    def __init__(self, inner: DarpeNode, min_count: int, max_count: Optional[int]):
        if min_count < 0:
            raise ValueError("repetition lower bound must be non-negative")
        if max_count is not None and max_count < min_count:
            raise ValueError("repetition upper bound below lower bound")
        self.inner = inner
        self.min_count = min_count
        self.max_count = max_count

    def _key(self):
        return (self.inner, self.min_count, self.max_count)

    def __repr__(self) -> str:
        lo = str(self.min_count) if self.min_count else ""
        hi = str(self.max_count) if self.max_count is not None else ""
        return f"{_paren(self.inner, self)}*{lo}..{hi}"


def _paren(node: DarpeNode, parent: DarpeNode) -> str:
    """Parenthesize a child when needed for a faithful round-trip repr."""
    needs = isinstance(node, Alt) or (
        isinstance(node, Concat) and isinstance(parent, (Star, Repeat))
    )
    return f"({node!r})" if needs else repr(node)


# ----------------------------------------------------------------------
# Lowering and static analysis
# ----------------------------------------------------------------------

def normalize(node: DarpeNode) -> DarpeNode:
    """Lower :class:`Repeat` nodes into the Symbol/Concat/Alt/Star/Epsilon
    core so the NFA builder only handles five node kinds.

    ``r*m..M``  becomes ``r^m . (r|ε)^(M-m)`` and ``r*m..`` becomes
    ``r^m . r*``.
    """
    if isinstance(node, Symbol) or isinstance(node, Epsilon):
        return node
    if isinstance(node, Concat):
        return Concat(tuple(normalize(p) for p in node.parts))
    if isinstance(node, Alt):
        return Alt(tuple(normalize(p) for p in node.parts))
    if isinstance(node, Star):
        return Star(normalize(node.inner))
    if isinstance(node, Repeat):
        inner = normalize(node.inner)
        parts = [inner] * node.min_count
        if node.max_count is None:
            parts.append(Star(inner))
        else:
            optional = Alt((inner, Epsilon()))
            parts.extend([optional] * (node.max_count - node.min_count))
        if not parts:
            return Epsilon()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))
    raise TypeError(f"unknown DARPE node {node!r}")


def length_range(node: DarpeNode) -> Tuple[int, Optional[int]]:
    """The (min, max) number of edges in any path matching the DARPE;
    ``max`` is ``None`` when unbounded."""
    if isinstance(node, Symbol):
        return 1, 1
    if isinstance(node, Epsilon):
        return 0, 0
    if isinstance(node, Concat):
        lo = 0
        hi: Optional[int] = 0
        for part in node.parts:
            plo, phi = length_range(part)
            lo += plo
            hi = None if (hi is None or phi is None) else hi + phi
        return lo, hi
    if isinstance(node, Alt):
        los, his = [], []
        for part in node.parts:
            plo, phi = length_range(part)
            los.append(plo)
            his.append(phi)
        hi = None if any(h is None for h in his) else max(his)  # type: ignore[type-var]
        return min(los), hi
    if isinstance(node, Star):
        _, ihi = length_range(node.inner)
        return 0, 0 if ihi == 0 else None
    if isinstance(node, Repeat):
        ilo, ihi = length_range(node.inner)
        lo = ilo * node.min_count
        if node.max_count is None:
            hi = 0 if ihi == 0 else None
        else:
            hi = None if ihi is None else ihi * node.max_count
        return lo, hi
    raise TypeError(f"unknown DARPE node {node!r}")


def fixed_unique_length(node: DarpeNode) -> Optional[int]:
    """The unique path length of a *fixed-unique-length* pattern, or
    ``None`` if the pattern is not in that class.

    Per Section 6.1: Kleene-free, built from concatenation with
    disjunction allowed only between equal-length branches.  For such
    patterns all-shortest-paths semantics coincides with unrestricted
    semantics.
    """
    if contains_kleene(node):
        return None
    lo, hi = length_range(node)
    if hi is not None and lo == hi and _alts_are_uniform(node):
        return lo
    return None


def _alts_are_uniform(node: DarpeNode) -> bool:
    """All Alt nodes (recursively) have equal-fixed-length branches."""
    if isinstance(node, (Symbol, Epsilon)):
        return True
    if isinstance(node, Alt):
        lengths = set()
        for part in node.parts:
            if not _alts_are_uniform(part):
                return False
            lengths.add(length_range(part))
        return len(lengths) == 1
    if isinstance(node, Concat):
        return all(_alts_are_uniform(p) for p in node.parts)
    if isinstance(node, (Star, Repeat)):
        return _alts_are_uniform(node.inner)
    raise TypeError(f"unknown DARPE node {node!r}")


def contains_kleene(node: DarpeNode) -> bool:
    """Does the pattern contain unbounded repetition?

    Bounded repeats (``*1..4``) do not count: they specify finitely many
    lengths and are lowered to Kleene-free form.
    """
    if isinstance(node, (Symbol, Epsilon)):
        return False
    if isinstance(node, Star):
        return True
    if isinstance(node, Repeat):
        return node.max_count is None or contains_kleene(node.inner)
    if isinstance(node, (Concat, Alt)):
        return any(contains_kleene(p) for p in node.parts)
    raise TypeError(f"unknown DARPE node {node!r}")


def symbols(node: DarpeNode):
    """Iterate over every :class:`Symbol` leaf of the AST."""
    if isinstance(node, Symbol):
        yield node
    elif isinstance(node, (Concat, Alt)):
        for part in node.parts:
            yield from symbols(part)
    elif isinstance(node, (Star, Repeat)):
        yield from symbols(node.inner)


__all__ = [
    "DarpeNode",
    "Symbol",
    "Epsilon",
    "Concat",
    "Alt",
    "Star",
    "Repeat",
    "normalize",
    "length_range",
    "fixed_unique_length",
    "contains_kleene",
    "symbols",
    "FORWARD",
    "REVERSE",
    "UNDIRECTED",
]
