"""Compilation of DARPEs to finite automata.

The pipeline is: AST → Thompson ε-NFA → ε-free NFA → lazily-determinized
DFA over the *direction-adorned alphabet* (pairs of edge type and crossing
direction).

Determinization matters for correctness, not just speed: the SDMC counting
algorithm (Theorem 6.1) counts paths by counting runs of the automaton on
the product graph.  A nondeterministic automaton can have several accepting
runs over one path, which would over-count; in a DFA every path has exactly
one run, so path counts and run counts coincide.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..graph.elements import Step
from .ast import Alt, Concat, DarpeNode, Epsilon, Star, Symbol, normalize
from .parser import parse_darpe

#: A concrete adorned symbol: (edge type name, crossing direction).
AdornedSymbol = Tuple[str, str]

#: A (possibly wildcard) transition label: (edge type or None, direction).
TransitionLabel = Tuple[Optional[str], str]


class NFA:
    """An ε-free nondeterministic finite automaton over adorned symbols.

    ``transitions[q]`` is a list of ``(edge_type_or_None, direction, target)``
    triples; ``edge_type_or_None`` is ``None`` for wildcard transitions.
    """

    __slots__ = ("start", "accepting", "transitions")

    def __init__(
        self,
        start: int,
        accepting: FrozenSet[int],
        transitions: List[List[Tuple[Optional[str], str, int]]],
    ):
        self.start = start
        self.accepting = accepting
        self.transitions = transitions

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def step(self, state: int, symbol: AdornedSymbol) -> Set[int]:
        edge_type, direction = symbol
        return {
            target
            for (label_type, label_dir, target) in self.transitions[state]
            if label_dir == direction
            and (label_type is None or label_type == edge_type)
        }

    def accepts_empty(self) -> bool:
        return self.start in self.accepting


class _EpsilonNFA:
    """Mutable Thompson-construction scratch automaton."""

    def __init__(self) -> None:
        self.symbol_edges: List[List[Tuple[Optional[str], str, int]]] = []
        self.eps_edges: List[List[int]] = []

    def new_state(self) -> int:
        self.symbol_edges.append([])
        self.eps_edges.append([])
        return len(self.symbol_edges) - 1

    def add_symbol(self, src: int, label: TransitionLabel, dst: int) -> None:
        self.symbol_edges[src].append((label[0], label[1], dst))

    def add_eps(self, src: int, dst: int) -> None:
        self.eps_edges[src].append(dst)

    def closure(self, states: Set[int]) -> Set[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            q = stack.pop()
            for nxt in self.eps_edges[q]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen


def _thompson(node: DarpeNode, enfa: _EpsilonNFA) -> Tuple[int, int]:
    """Build a fragment for ``node``; returns (entry state, exit state)."""
    if isinstance(node, Symbol):
        entry, exit_ = enfa.new_state(), enfa.new_state()
        enfa.add_symbol(entry, (node.edge_type, node.direction), exit_)
        return entry, exit_
    if isinstance(node, Epsilon):
        entry, exit_ = enfa.new_state(), enfa.new_state()
        enfa.add_eps(entry, exit_)
        return entry, exit_
    if isinstance(node, Concat):
        entry, exit_ = None, None
        for part in node.parts:
            p_entry, p_exit = _thompson(part, enfa)
            if entry is None:
                entry = p_entry
            else:
                enfa.add_eps(exit_, p_entry)  # type: ignore[arg-type]
            exit_ = p_exit
        assert entry is not None and exit_ is not None
        return entry, exit_
    if isinstance(node, Alt):
        entry, exit_ = enfa.new_state(), enfa.new_state()
        for part in node.parts:
            p_entry, p_exit = _thompson(part, enfa)
            enfa.add_eps(entry, p_entry)
            enfa.add_eps(p_exit, exit_)
        return entry, exit_
    if isinstance(node, Star):
        entry, exit_ = enfa.new_state(), enfa.new_state()
        i_entry, i_exit = _thompson(node.inner, enfa)
        enfa.add_eps(entry, i_entry)
        enfa.add_eps(i_exit, entry)
        enfa.add_eps(entry, exit_)
        return entry, exit_
    raise TypeError(f"node {node!r} should have been normalized away")


def compile_nfa(node: DarpeNode) -> NFA:
    """Compile a DARPE AST into an ε-free NFA."""
    node = normalize(node)
    enfa = _EpsilonNFA()
    entry, exit_ = _thompson(node, enfa)

    closures: Dict[int, Set[int]] = {}

    def closure_of(q: int) -> Set[int]:
        cached = closures.get(q)
        if cached is None:
            cached = enfa.closure({q})
            closures[q] = cached
        return cached

    n = len(enfa.symbol_edges)
    transitions: List[List[Tuple[Optional[str], str, int]]] = [[] for _ in range(n)]
    accepting = set()
    for q in range(n):
        reach = closure_of(q)
        if exit_ in reach:
            accepting.add(q)
        merged: Set[Tuple[Optional[str], str, int]] = set()
        for r in reach:
            merged.update(enfa.symbol_edges[r])
        transitions[q] = sorted(merged, key=lambda t: (t[0] or "", t[1], t[2]))
    return NFA(entry, frozenset(accepting), transitions)


class LazyDFA:
    """Subset-construction DFA, materialized on demand.

    States are integers; state 0 is the start.  The transition function is
    computed per concrete adorned symbol the first time it is requested and
    memoized, so only the part of the DFA actually reachable over the graph
    under evaluation is ever built.
    """

    DEAD = -1

    def __init__(self, nfa: NFA):
        self._nfa = nfa
        start_set = frozenset({nfa.start})
        self._sets: List[FrozenSet[int]] = [start_set]
        self._ids: Dict[FrozenSet[int], int] = {start_set: 0}
        self._trans: Dict[Tuple[int, AdornedSymbol], int] = {}
        self._accepting: List[bool] = [bool(start_set & nfa.accepting)]

    @property
    def start(self) -> int:
        return 0

    def is_accepting(self, state: int) -> bool:
        return state != self.DEAD and self._accepting[state]

    def step(self, state: int, symbol: AdornedSymbol) -> int:
        """Next DFA state, or :data:`DEAD` when no run continues."""
        if state == self.DEAD:
            return self.DEAD
        key = (state, symbol)
        cached = self._trans.get(key)
        if cached is not None:
            return cached
        targets: Set[int] = set()
        for q in self._sets[state]:
            targets |= self._nfa.step(q, symbol)
        if not targets:
            self._trans[key] = self.DEAD
            return self.DEAD
        frozen = frozenset(targets)
        state_id = self._ids.get(frozen)
        if state_id is None:
            state_id = len(self._sets)
            self._sets.append(frozen)
            self._ids[frozen] = state_id
            self._accepting.append(bool(frozen & self._nfa.accepting))
        self._trans[key] = state_id
        return state_id

    def step_over(self, state: int, step: Step) -> int:
        """Convenience: advance over a graph traversal step."""
        return self.step(state, (step.edge.type, step.direction))

    @property
    def num_materialized_states(self) -> int:
        return len(self._sets)


class CompiledDarpe:
    """A parsed and compiled DARPE, ready for matching and counting.

    This is the object the rest of the library passes around.  It bundles
    the AST (for static analysis such as fixed-unique-length detection),
    the ε-free NFA, and a factory for per-evaluation lazy DFAs.
    """

    def __init__(self, ast: DarpeNode, text: Optional[str] = None):
        self.ast = ast
        self.text = text if text is not None else repr(ast)
        self.nfa = compile_nfa(ast)

    @classmethod
    def parse(cls, text: str) -> "CompiledDarpe":
        return cls(parse_darpe(text), text)

    def new_dfa(self) -> LazyDFA:
        """A fresh lazy DFA (DFAs memoize per-graph transitions, so each
        evaluation should use its own)."""
        return LazyDFA(self.nfa)

    def matches_word(self, word: List[AdornedSymbol]) -> bool:
        """Does a sequence of adorned symbols spell a word in the language?"""
        dfa = self.new_dfa()
        state = dfa.start
        for symbol in word:
            state = dfa.step(state, symbol)
            if state == LazyDFA.DEAD:
                return False
        return dfa.is_accepting(state)

    def matches_steps(self, steps: List[Step]) -> bool:
        """Does a path, given as traversal steps, satisfy the DARPE?"""
        return self.matches_word([(s.edge.type, s.direction) for s in steps])

    def accepts_empty(self) -> bool:
        return self.nfa.accepts_empty()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompiledDarpe({self.text!r})"


__all__ = [
    "AdornedSymbol",
    "NFA",
    "LazyDFA",
    "CompiledDarpe",
    "compile_nfa",
]
