"""Parser for DARPE strings such as ``E>.(F>|<G)*.H.<J``.

The concrete syntax follows the paper exactly:

* ``E>`` — cross a directed E-edge along its orientation;
* ``<E`` — cross a directed E-edge against its orientation;
* ``E``  — cross an undirected E-edge;
* ``_``, ``_>``, ``<_`` — wildcards over edge types, per direction;
* ``.`` concatenation, ``|`` alternation, ``*`` Kleene star;
* ``* m..n`` bounded repetition with optional lower/upper bounds
  (``*2..4``, ``*..3``, ``*2..``, and GSQL's shorthand ``*3`` for
  ``*3..3``).

Whitespace is insignificant.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from ..errors import DarpeSyntaxError
from ..graph.elements import FORWARD, REVERSE, UNDIRECTED
from .ast import Alt, Concat, DarpeNode, Repeat, Star, Symbol


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<DOTDOT>\.\.)
  | (?P<NUMBER>\d+)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<LT><)
  | (?P<GT>>)
  | (?P<DOT>\.)
  | (?P<PIPE>\|)
  | (?P<STAR>\*)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DarpeSyntaxError(
                f"unexpected character {text[pos]!r}", text, pos
            )
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser; precedence: ``|`` < ``.`` < postfix ``*``."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers --------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise DarpeSyntaxError("unexpected end of pattern", self.text, len(self.text))
        self.index += 1
        return token

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            where = token.position if token else len(self.text)
            found = token.value if token else "end of pattern"
            raise DarpeSyntaxError(f"expected {kind}, found {found!r}", self.text, where)
        self.index += 1
        return token

    # -- grammar ---------------------------------------------------------
    def parse(self) -> DarpeNode:
        node = self._alternation()
        leftover = self._peek()
        if leftover is not None:
            raise DarpeSyntaxError(
                f"unexpected trailing {leftover.value!r}", self.text, leftover.position
            )
        return node

    def _alternation(self) -> DarpeNode:
        parts = [self._concatenation()]
        while self._accept("PIPE"):
            parts.append(self._concatenation())
        if len(parts) == 1:
            return parts[0]
        return Alt(tuple(parts))

    def _concatenation(self) -> DarpeNode:
        parts = [self._postfix()]
        while self._accept("DOT"):
            parts.append(self._postfix())
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _postfix(self) -> DarpeNode:
        node = self._atom()
        while True:
            star = self._accept("STAR")
            if star is None:
                return node
            node = self._bounds(node)

    def _bounds(self, inner: DarpeNode) -> DarpeNode:
        """Parse the optional bounds following a ``*``."""
        lower_token = self._accept("NUMBER")
        if lower_token is not None:
            lower = int(lower_token.value)
            if self._accept("DOTDOT"):
                upper_token = self._accept("NUMBER")
                upper = int(upper_token.value) if upper_token else None
            else:
                upper = lower  # GSQL shorthand: E>*3 means exactly 3 hops
            return self._checked_repeat(inner, lower, upper, lower_token.position)
        if self._accept("DOTDOT"):
            upper_token = self._accept("NUMBER")
            upper = int(upper_token.value) if upper_token else None
            return self._checked_repeat(inner, 0, upper, None)
        return Star(inner)

    def _checked_repeat(
        self, inner: DarpeNode, lower: int, upper: Optional[int], pos: Optional[int]
    ) -> DarpeNode:
        if upper is not None and upper < lower:
            raise DarpeSyntaxError(
                f"repetition bounds {lower}..{upper} are inverted",
                self.text,
                pos if pos is not None else 0,
            )
        return Repeat(inner, lower, upper)

    def _atom(self) -> DarpeNode:
        if self._accept("LPAREN"):
            node = self._alternation()
            self._expect("RPAREN")
            return node
        if self._accept("LT"):
            name = self._expect("NAME").value
            return Symbol(None if name == "_" else name, REVERSE)
        name_token = self._peek()
        if name_token is not None and name_token.kind == "NAME":
            self._next()
            name = name_token.value
            edge_type = None if name == "_" else name
            if self._accept("GT"):
                return Symbol(edge_type, FORWARD)
            return Symbol(edge_type, UNDIRECTED)
        where = name_token.position if name_token else len(self.text)
        found = name_token.value if name_token else "end of pattern"
        raise DarpeSyntaxError(f"expected an edge type, found {found!r}", self.text, where)


def parse_darpe(text: str) -> DarpeNode:
    """Parse a DARPE string into an AST.

    >>> parse_darpe("E>.(F>|<G)*.H.<J")  # Example 2 of the paper
    E>.(F>|<G)*.H.<J
    """
    if not text or not text.strip():
        raise DarpeSyntaxError("empty DARPE", text, 0)
    return _Parser(text).parse()


__all__ = ["parse_darpe"]
