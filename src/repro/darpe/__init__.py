"""Direction-Aware Regular Path Expressions (DARPEs).

Parsing (:func:`parse_darpe`), static analysis (length ranges,
fixed-unique-length detection) and compilation to automata
(:class:`CompiledDarpe`), per Section 2 of the paper.
"""

from .ast import (
    Alt,
    Concat,
    DarpeNode,
    Epsilon,
    Repeat,
    Star,
    Symbol,
    contains_kleene,
    fixed_unique_length,
    length_range,
    normalize,
    symbols,
)
from .automaton import NFA, AdornedSymbol, CompiledDarpe, LazyDFA, compile_nfa
from .parser import parse_darpe

__all__ = [
    "Alt",
    "Concat",
    "DarpeNode",
    "Epsilon",
    "Repeat",
    "Star",
    "Symbol",
    "contains_kleene",
    "fixed_unique_length",
    "length_range",
    "normalize",
    "symbols",
    "NFA",
    "AdornedSymbol",
    "CompiledDarpe",
    "LazyDFA",
    "compile_nfa",
    "parse_darpe",
]
