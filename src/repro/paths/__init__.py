"""Path semantics and polynomial-time shortest-path match counting."""

from .sdmc import (
    SdmcResult,
    ShortestPathDag,
    all_paths_sdmc,
    enumerate_shortest_paths,
    shortest_path_dag,
    single_pair_sdmc,
    single_source_sdmc,
)
from .semantics import PathSemantics

__all__ = [
    "SdmcResult",
    "ShortestPathDag",
    "all_paths_sdmc",
    "enumerate_shortest_paths",
    "shortest_path_dag",
    "single_pair_sdmc",
    "single_source_sdmc",
    "PathSemantics",
]
