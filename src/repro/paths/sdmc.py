"""Shortest DARPE Match Counting (SDMC) — Theorem 6.1 of the paper.

Given a DARPE ``d`` and a graph, the *single-pair* problem asks for the
number of shortest paths from ``s`` to ``t`` that satisfy ``d`` (length
measured in edges); *single-source* asks for that count for every target
``t``; *all-paths* for every source/target pair.  All three are solvable
in polynomial time even when the count itself is exponential in the graph
size, which is the linchpin of the paper's tractability result
(Theorem 7.1): the evaluation engine *counts* matching paths instead of
materializing them.

The algorithm is the folklore product construction: determinize the DARPE
automaton (so each graph path has exactly one automaton run — otherwise
runs, not paths, would be counted) and run a level-synchronized BFS over
product states ``(vertex, dfa_state)``, accumulating shortest-path counts
per product state.  For a target vertex ``t`` the answer is the first BFS
level at which any accepting product state ``(t, q)`` appears, and the sum
of the counts of all accepting product states at that level.

The product has at most ``|V| * 2^|NFA|`` states, but the DFA part is
built lazily and in practice stays tiny (it is bounded by the query, not
the data, giving the polynomial *data* complexity the theorems claim).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Optional, Set, Tuple

from ..darpe.automaton import CompiledDarpe, LazyDFA
from ..governor import faults as _faults
from ..governor import governor as _gov
from ..graph.graph import Graph
from ..obs import metrics as _obs


class SdmcResult(NamedTuple):
    """Result of a single-pair SDMC query: the shortest satisfying path
    length and the number of shortest satisfying paths."""

    distance: int
    count: int


def single_source_sdmc(
    graph: Graph,
    source: Any,
    darpe: CompiledDarpe,
    targets: Optional[Set[Any]] = None,
    max_length: Optional[int] = None,
) -> Dict[Any, SdmcResult]:
    """Single-source SDMC: shortest satisfying-path distance and count from
    ``source`` to every reachable target.

    Parameters
    ----------
    graph, source, darpe:
        The graph, the source vertex id, and the compiled DARPE.
    targets:
        Optional set of target vertex ids.  When given, the BFS stops as
        soon as every requested target has been resolved, and only those
        targets appear in the result.
    max_length:
        Optional cap on the path length explored (used by bounded-hop
        workloads; ``None`` explores the whole product graph).

    Returns
    -------
    dict mapping target vertex id to :class:`SdmcResult`.  Targets with no
    satisfying path are absent.
    """
    graph.vertex(source)  # validate early, with a clear error
    dfa = darpe.new_dfa()
    results: Dict[Any, SdmcResult] = {}
    remaining = set(targets) if targets is not None else None

    start = (source, dfa.start)
    level = 0
    visited: Set[Tuple[Any, int]] = {start}
    frontier: Dict[Tuple[Any, int], int] = {start: 1}

    def record_level(states: Dict[Tuple[Any, int], int]) -> None:
        per_vertex: Dict[Any, int] = defaultdict(int)
        for (vid, q), count in states.items():
            if dfa.is_accepting(q):
                per_vertex[vid] += count
        for vid, count in per_vertex.items():
            if vid not in results:
                results[vid] = SdmcResult(level, count)
                if remaining is not None:
                    remaining.discard(vid)

    col = _obs._ACTIVE
    gov = _gov._ACTIVE
    if gov is not None:
        gov.charge_product_states(1)  # the start state
    peak_frontier = 1
    record_level(frontier)
    try:
        while frontier:
            if remaining is not None and not remaining:
                break
            if max_length is not None and level >= max_length:
                break
            next_frontier: Dict[Tuple[Any, int], int] = defaultdict(int)
            for (vid, q), count in frontier.items():
                for step in graph.steps(vid):
                    q2 = dfa.step(q, (step.edge.type, step.direction))
                    if q2 == LazyDFA.DEAD:
                        continue
                    ps = (step.neighbor, q2)
                    if ps in visited:
                        continue
                    next_frontier[ps] += count
            level += 1
            visited.update(next_frontier)
            record_level(next_frontier)
            frontier = next_frontier
            if col is not None and len(frontier) > peak_frontier:
                peak_frontier = len(frontier)
            # Governed checkpoint once per BFS level (never per edge):
            # charge the newly visited product states — the Theorem 6.1
            # work unit — and check deadline/cancellation.
            if gov is not None and frontier:
                gov.charge_product_states(len(frontier))
            if _faults._PLAN is not None and frontier:
                _faults.fire("sdmc.level")
    finally:
        if col is not None:
            # Batched per call, never per edge: |visited| product states
            # is the work bound Theorem 6.1 argues about.  Flushed in a
            # finally so an aborted call still reports its partial work.
            col.count("sdmc.calls")
            col.count("sdmc.product_states", len(visited))
            col.count("sdmc.bfs_levels", level)
            col.record_max("sdmc.frontier_peak", peak_frontier)

    if targets is not None:
        return {vid: res for vid, res in results.items() if vid in targets}
    return results


def single_pair_sdmc(
    graph: Graph,
    source: Any,
    target: Any,
    darpe: CompiledDarpe,
    max_length: Optional[int] = None,
) -> Optional[SdmcResult]:
    """Single-pair SDMC: ``SDMC_d(s, t)`` with its distance, or ``None``
    when no satisfying path exists."""
    graph.vertex(target)
    found = single_source_sdmc(
        graph, source, darpe, targets={target}, max_length=max_length
    )
    return found.get(target)


def all_paths_sdmc(
    graph: Graph,
    darpe: CompiledDarpe,
    sources: Optional[Iterable[Any]] = None,
    max_length: Optional[int] = None,
) -> Dict[Tuple[Any, Any], SdmcResult]:
    """All-paths SDMC: the union of single-source results over all (or the
    given) sources, keyed by ``(source, target)``."""
    result: Dict[Tuple[Any, Any], SdmcResult] = {}
    source_ids = list(sources) if sources is not None else list(graph.vertex_ids())
    for source in source_ids:
        for target, res in single_source_sdmc(
            graph, source, darpe, max_length=max_length
        ).items():
            result[(source, target)] = res
    return result


# ----------------------------------------------------------------------
# Shortest-path DAG and enumeration (used to cross-check counts in tests
# and to exhibit witness paths when a user asks for them)
# ----------------------------------------------------------------------

class ShortestPathDag:
    """The DAG of shortest satisfying paths from one source.

    Nodes are product states ``(vertex, dfa_state)``; ``parents`` maps a
    product state to the list of ``(parent_state, edge)`` pairs lying on
    shortest paths.  Enumerating paths from this DAG touches only edges
    that participate in some shortest satisfying path, so enumeration is
    output-sensitive (linear work per emitted path).
    """

    def __init__(
        self,
        source: Any,
        distances: Dict[Tuple[Any, int], int],
        parents: Dict[Tuple[Any, int], List[Tuple[Tuple[Any, int], Any]]],
        accepting_by_vertex: Dict[Any, List[Tuple[Any, int]]],
        target_distance: Dict[Any, int],
    ):
        self.source = source
        self.distances = distances
        self.parents = parents
        self._accepting_by_vertex = accepting_by_vertex
        self._target_distance = target_distance

    def paths_to(self, target: Any) -> Iterator[List[Any]]:
        """Yield each shortest satisfying path to ``target`` as a list of
        edges, in source-to-target order."""
        dist = self._target_distance.get(target)
        if dist is None:
            return
        ends = [
            ps
            for ps in self._accepting_by_vertex.get(target, ())
            if self.distances[ps] == dist
        ]

        def walk(state: Tuple[Any, int]) -> Iterator[List[Any]]:
            if self.distances[state] == 0:
                yield []
                return
            for parent, edge in self.parents.get(state, ()):
                for prefix in walk(parent):
                    yield prefix + [edge]

        for end in ends:
            yield from walk(end)


def shortest_path_dag(
    graph: Graph,
    source: Any,
    darpe: CompiledDarpe,
    max_length: Optional[int] = None,
) -> ShortestPathDag:
    """Build the shortest-satisfying-path DAG from ``source``.

    Same BFS as :func:`single_source_sdmc`, but retaining parent pointers
    so witness paths can be reconstructed.
    """
    graph.vertex(source)
    dfa = darpe.new_dfa()
    start = (source, dfa.start)
    distances: Dict[Tuple[Any, int], int] = {start: 0}
    parents: Dict[Tuple[Any, int], List[Tuple[Tuple[Any, int], Any]]] = {}
    accepting_by_vertex: Dict[Any, List[Tuple[Any, int]]] = defaultdict(list)
    target_distance: Dict[Any, int] = {}

    def note_accepting(ps: Tuple[Any, int], level: int) -> None:
        vid, q = ps
        if dfa.is_accepting(q):
            accepting_by_vertex[vid].append(ps)
            if vid not in target_distance:
                target_distance[vid] = level

    note_accepting(start, 0)
    gov = _gov._ACTIVE
    if gov is not None:
        gov.charge_product_states(1)
    frontier = [start]
    level = 0
    while frontier:
        if max_length is not None and level >= max_length:
            break
        next_frontier: List[Tuple[Any, int]] = []
        for ps in frontier:
            vid, q = ps
            for step in graph.steps(vid):
                q2 = dfa.step(q, (step.edge.type, step.direction))
                if q2 == LazyDFA.DEAD:
                    continue
                child = (step.neighbor, q2)
                known = distances.get(child)
                if known is None:
                    distances[child] = level + 1
                    parents[child] = [(ps, step.edge)]
                    next_frontier.append(child)
                    note_accepting(child, level + 1)
                elif known == level + 1:
                    parents[child].append((ps, step.edge))
        level += 1
        frontier = next_frontier
        if gov is not None and frontier:
            gov.charge_product_states(len(frontier))
        if _faults._PLAN is not None and frontier:
            _faults.fire("sdmc.level")

    return ShortestPathDag(
        source, distances, parents, dict(accepting_by_vertex), target_distance
    )


def enumerate_shortest_paths(
    graph: Graph,
    source: Any,
    target: Any,
    darpe: CompiledDarpe,
    max_length: Optional[int] = None,
) -> Iterator[List[Any]]:
    """Yield every shortest satisfying path from ``source`` to ``target``
    as a list of edges (may be exponentially many — intended for tests and
    witness exhibition, never for aggregation)."""
    dag = shortest_path_dag(graph, source, darpe, max_length=max_length)
    yield from dag.paths_to(target)


__all__ = [
    "SdmcResult",
    "single_source_sdmc",
    "single_pair_sdmc",
    "all_paths_sdmc",
    "ShortestPathDag",
    "shortest_path_dag",
    "enumerate_shortest_paths",
]
