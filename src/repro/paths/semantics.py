"""Path-legality semantics (Section 6.1 of the paper).

Each semantics restricts which paths count as matches of a DARPE pattern,
to keep the match multiset finite on cyclic graphs:

* :data:`PathSemantics.UNRESTRICTED` — every walk matches (Gremlin's
  default; termination requires an explicit length bound);
* :data:`PathSemantics.NO_REPEATED_VERTEX` — simple paths only (the style
  used throughout Gremlin/TinkerPop tutorials);
* :data:`PathSemantics.NO_REPEATED_EDGE` — trails only (Cypher's default);
* :data:`PathSemantics.ALL_SHORTEST` — all shortest satisfying paths
  (GSQL's default; the only aggregation-friendly *tractable* choice);
* :data:`PathSemantics.EXISTENCE` — boolean reachability with
  multiplicity 1 (SparQL 1.1's starred-RPE semantics; tractable but
  aggregation-unfriendly).
"""

from __future__ import annotations

import enum


class PathSemantics(enum.Enum):
    """The five path-legality flavors surveyed in Section 6.1."""

    UNRESTRICTED = "unrestricted"
    NO_REPEATED_VERTEX = "no-repeated-vertex"
    NO_REPEATED_EDGE = "no-repeated-edge"
    ALL_SHORTEST = "all-shortest-paths"
    EXISTENCE = "existence"

    @property
    def is_tractable(self) -> bool:
        """Whether counting matches has polynomial data complexity.

        Checking/counting legal paths is NP-hard/#P-complete for the two
        non-repeating flavors; unrestricted semantics is not even finite.
        Only all-shortest-paths and existence semantics are tractable.
        """
        return self in (PathSemantics.ALL_SHORTEST, PathSemantics.EXISTENCE)

    @property
    def is_aggregation_friendly(self) -> bool:
        """Whether the semantics yields meaningful path multiplicities.

        Existence semantics collapses every multiplicity to 1, defeating
        multiplicity-sensitive aggregates (count/sum/avg).
        """
        return self is not PathSemantics.EXISTENCE

    @property
    def reference_system(self) -> str:
        """The representative system the paper associates with the flavor."""
        return {
            PathSemantics.UNRESTRICTED: "Gremlin (default)",
            PathSemantics.NO_REPEATED_VERTEX: "Gremlin (tutorial style)",
            PathSemantics.NO_REPEATED_EDGE: "Cypher/Neo4j (default)",
            PathSemantics.ALL_SHORTEST: "GSQL/TigerGraph (default)",
            PathSemantics.EXISTENCE: "SparQL 1.1",
        }[self]


__all__ = ["PathSemantics"]
