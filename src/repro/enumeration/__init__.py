"""Enumeration-based matching baselines (the exponential reference
engines corresponding to the paper's Neo4j/Cypher measurements)."""

from .engine import PathMatch, enumerate_matches, match_counts

__all__ = ["PathMatch", "enumerate_matches", "match_counts"]
