"""Enumeration-based pattern matching — the exponential baselines.

This module implements DARPE matching the way enumeration-based engines
(the paper uses Neo4j as the reference) do: by *materializing* each legal
path.  It supports every legality flavor of Section 6.1, including an
enumerated variant of all-shortest-paths that mirrors how Neo4j evaluates
``allShortestPaths`` (find the shortest length, then enumerate every path
of that length) — the paper's Table 1 shows this is still exponential.

The counting engine in :mod:`repro.paths.sdmc` is the tractable
alternative; this module exists to reproduce the *other* columns of the
paper's experiments and to cross-validate counts on small graphs.

Every entry point accepts a ``budget`` — a cap on the number of search
nodes expanded — so the intentionally-exponential baselines fail fast and
reportably (:class:`~repro.errors.EvaluationBudgetExceeded`) instead of
hanging, mirroring the 10-minute timeout used in the paper.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Set

from ..darpe.automaton import CompiledDarpe, LazyDFA
from ..errors import EvaluationBudgetExceeded, QueryRuntimeError
from ..governor import faults as _faults
from ..governor import governor as _gov
from ..graph.elements import Edge
from ..graph.graph import Graph
from ..obs import metrics as _obs
from ..paths.sdmc import single_source_sdmc
from ..paths.semantics import PathSemantics


class PathMatch(NamedTuple):
    """One materialized legal path matching a DARPE."""

    source: Any
    target: Any
    edges: tuple
    vertices: tuple

    @property
    def length(self) -> int:
        return len(self.edges)


class _Budget:
    """Mutable expansion counter shared across one evaluation."""

    __slots__ = ("limit", "expanded")

    def __init__(self, limit: Optional[int]):
        self.limit = limit
        self.expanded = 0

    def charge(self) -> None:
        self.expanded += 1
        if self.limit is not None and self.expanded > self.limit:
            raise EvaluationBudgetExceeded(
                f"enumeration budget of {self.limit} search nodes exhausted "
                f"(the baselines are exponential by design; raise the budget "
                f"or switch to the counting engine)",
                expanded=self.expanded,
            )
        if _faults._PLAN is not None:
            _faults.fire("enum.expand")
        gov = _gov._ACTIVE
        if gov is not None and not (self.expanded & 0xFF):
            # Deadline/cancellation checkpoint every 256 expanded nodes:
            # frequent enough to abort a blow-up promptly, rare enough to
            # keep the per-node cost to a global load and a bit test.
            gov.tick()


def enumerate_matches(
    graph: Graph,
    source: Any,
    darpe: CompiledDarpe,
    semantics: PathSemantics = PathSemantics.NO_REPEATED_EDGE,
    targets: Optional[Set[Any]] = None,
    max_length: Optional[int] = None,
    budget: Optional[int] = None,
) -> Iterator[PathMatch]:
    """Yield every legal path from ``source`` satisfying ``darpe``.

    Parameters
    ----------
    semantics:
        Which paths are legal.  :data:`PathSemantics.UNRESTRICTED` requires
        ``max_length`` (otherwise cyclic graphs yield infinitely many
        matches — Example 8 of the paper).
    targets:
        Restrict yielded matches to these target vertices (the search
        still explores everything reachable, as a real engine must).
    budget:
        Cap on expanded search nodes; see module docstring.
    """
    if semantics is PathSemantics.EXISTENCE:
        raise QueryRuntimeError(
            "existence semantics does not enumerate paths; use match_counts"
        )
    if semantics is PathSemantics.UNRESTRICTED and max_length is None:
        raise QueryRuntimeError(
            "unrestricted semantics needs an explicit max_length bound "
            "(cycles yield infinitely many matching walks)"
        )
    tracker = _Budget(budget)
    if semantics is PathSemantics.ALL_SHORTEST:
        inner = _enumerate_shortest(
            graph, source, darpe, targets, max_length, tracker
        )
    else:
        inner = _enumerate_dfs(
            graph, source, darpe, semantics, targets, max_length, tracker
        )
    col = _obs._ACTIVE
    gov = _gov._ACTIVE
    if col is None and gov is None:
        yield from inner
        return
    # Report once per evaluation (also on budget blow-up, governor abort
    # or early close): expanded search nodes is the paper's
    # exponential-cost witness.
    emitted = 0
    try:
        for match in inner:
            emitted += 1
            if gov is not None:
                # Charge each *materialized* path against the budget —
                # PathFinder-style explicit bounding of materialization.
                gov.charge_paths(1)
            yield match
    finally:
        if col is not None:
            col.count("enum.calls")
            col.count("enum.nodes_expanded", tracker.expanded)
            col.count("enum.paths_emitted", emitted)


def _emit(source: Any, vid: Any, path: List[Edge], path_vertices: List[Any]) -> PathMatch:
    return PathMatch(source, vid, tuple(path), tuple(path_vertices))


def _enumerate_dfs(
    graph: Graph,
    source: Any,
    darpe: CompiledDarpe,
    semantics: PathSemantics,
    targets: Optional[Set[Any]],
    max_length: Optional[int],
    tracker: _Budget,
) -> Iterator[PathMatch]:
    """Backtracking DFS for the unrestricted/simple-path/trail flavors."""
    dfa = darpe.new_dfa()
    path: List[Edge] = []
    path_vertices: List[Any] = [source]
    used_edges: Set[int] = set()
    used_vertices: Set[Any] = {source}
    forbid_vertex = semantics is PathSemantics.NO_REPEATED_VERTEX
    forbid_edge = semantics is PathSemantics.NO_REPEATED_EDGE

    def dfs(vid: Any, state: int) -> Iterator[PathMatch]:
        tracker.charge()
        if dfa.is_accepting(state) and (targets is None or vid in targets):
            yield _emit(source, vid, path, path_vertices)
        if max_length is not None and len(path) >= max_length:
            return
        for step in graph.steps(vid):
            if forbid_edge and step.edge.eid in used_edges:
                continue
            if forbid_vertex and step.neighbor in used_vertices:
                continue
            next_state = dfa.step(state, (step.edge.type, step.direction))
            if next_state == LazyDFA.DEAD:
                continue
            path.append(step.edge)
            path_vertices.append(step.neighbor)
            used_edges.add(step.edge.eid)
            added_vertex = step.neighbor not in used_vertices
            if added_vertex:
                used_vertices.add(step.neighbor)
            yield from dfs(step.neighbor, next_state)
            path.pop()
            path_vertices.pop()
            used_edges.discard(step.edge.eid)
            if added_vertex:
                used_vertices.discard(step.neighbor)

    yield from dfs(source, dfa.start)


def _enumerate_shortest(
    graph: Graph,
    source: Any,
    darpe: CompiledDarpe,
    targets: Optional[Set[Any]],
    max_length: Optional[int],
    tracker: _Budget,
) -> Iterator[PathMatch]:
    """Enumerated all-shortest-paths: the Neo4j-style evaluation.

    Phase 1 finds each target's shortest satisfying length (a cheap BFS);
    phase 2 enumerates *every* walk up to the deepest needed length and
    emits those that are accepting at exactly their target's shortest
    length.  Phase 2 is exponential when shortest paths are plentiful —
    exactly the behaviour Table 1's fourth column documents.
    """
    distances = {
        vid: res.distance
        for vid, res in single_source_sdmc(
            graph, source, darpe, targets=targets, max_length=max_length
        ).items()
    }
    if not distances:
        return
    horizon = max(distances.values())
    dfa = darpe.new_dfa()
    path: List[Edge] = []
    path_vertices: List[Any] = [source]

    def dfs(vid: Any, state: int) -> Iterator[PathMatch]:
        tracker.charge()
        if (
            dfa.is_accepting(state)
            and distances.get(vid) == len(path)
            and (targets is None or vid in targets)
        ):
            yield _emit(source, vid, path, path_vertices)
        if len(path) >= horizon:
            return
        for step in graph.steps(vid):
            next_state = dfa.step(state, (step.edge.type, step.direction))
            if next_state == LazyDFA.DEAD:
                continue
            path.append(step.edge)
            path_vertices.append(step.neighbor)
            yield from dfs(step.neighbor, next_state)
            path.pop()
            path_vertices.pop()

    yield from dfs(source, dfa.start)


def match_counts(
    graph: Graph,
    source: Any,
    darpe: CompiledDarpe,
    semantics: PathSemantics,
    targets: Optional[Set[Any]] = None,
    max_length: Optional[int] = None,
    budget: Optional[int] = None,
) -> Dict[Any, int]:
    """Per-target match multiplicities under the chosen semantics.

    For :data:`PathSemantics.EXISTENCE` this uses the polynomial counting
    machinery (multiplicity clamps to 1, per SparQL).  For every other
    flavor it *enumerates* — deliberately, as this function implements the
    baselines.  Library users who want tractable all-shortest-path counts
    should call :func:`repro.paths.single_source_sdmc` instead.
    """
    if semantics is PathSemantics.EXISTENCE:
        reachable = single_source_sdmc(
            graph, source, darpe, targets=targets, max_length=max_length
        )
        return {vid: 1 for vid in reachable}
    counts: Dict[Any, int] = {}
    for match in enumerate_matches(
        graph, source, darpe, semantics, targets, max_length, budget
    ):
        counts[match.target] = counts.get(match.target, 0) + 1
    return counts


__all__ = ["PathMatch", "enumerate_matches", "match_counts"]
