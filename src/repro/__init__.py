"""repro — accumulator-based aggregation for graph analytics.

A faithful, laptop-scale reproduction of *Aggregation Support for Modern
Graph Analytics in TigerGraph* (Deutsch, Xu, Wu, Lee — SIGMOD 2020):

* a mixed-kind property graph (:mod:`repro.graph`);
* DARPEs — direction-aware regular path expressions (:mod:`repro.darpe`);
* polynomial all-shortest-path match counting (:mod:`repro.paths`);
* exponential enumeration baselines (:mod:`repro.enumeration`);
* the accumulator library (:mod:`repro.accum`);
* a GSQL-subset query engine with snapshot ACCUM semantics
  (:mod:`repro.core`, :mod:`repro.gsql`);
* SQL-style aggregation baselines (:mod:`repro.sqlstyle`);
* an LDBC-SNB-like workload substrate (:mod:`repro.ldbc`);
* graph algorithms written in GSQL (:mod:`repro.algorithms`);
* an execution governor with budgets, cancellation and deterministic
  fault injection (:mod:`repro.governor`);
* compiled execution: closure-lowered plans behind an LRU plan cache
  (:mod:`repro.compile`).
"""

__version__ = "1.0.0"

from . import accum, algorithms, bench, compile, core, darpe, enumeration, governor, graph, gsql, ldbc, paths, sqlstyle
from .compile import CompiledQuery, compile_query, compile_query_text, plan_cache
from .errors import (
    AccumulatorError,
    DarpeSyntaxError,
    EvaluationBudgetExceeded,
    GraphError,
    GSQLSyntaxError,
    InjectedFault,
    QueryAbortedError,
    QueryCompileError,
    QueryRuntimeError,
    ReproError,
    SchemaError,
    TractabilityError,
)
from .graph import Graph, GraphSchema
from .paths import PathSemantics

__all__ = [
    "__version__",
    "accum",
    "algorithms",
    "bench",
    "compile",
    "CompiledQuery",
    "compile_query",
    "compile_query_text",
    "plan_cache",
    "core",
    "darpe",
    "enumeration",
    "governor",
    "graph",
    "gsql",
    "ldbc",
    "paths",
    "sqlstyle",
    "Graph",
    "GraphSchema",
    "PathSemantics",
    "ReproError",
    "SchemaError",
    "GraphError",
    "DarpeSyntaxError",
    "GSQLSyntaxError",
    "QueryCompileError",
    "QueryRuntimeError",
    "QueryAbortedError",
    "AccumulatorError",
    "TractabilityError",
    "EvaluationBudgetExceeded",
    "InjectedFault",
]
