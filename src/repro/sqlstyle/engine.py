"""SQL-style evaluation of graph patterns: materialize, then aggregate.

:func:`materialize_match_table` expands a pattern's compressed binding
table into the conventional *uncompressed* match table (one row per
conceptual match, i.e. per witnessing path), which is what a SQL-style
engine aggregates over.  Combined with :mod:`repro.sqlstyle.relational`
this forms the end-to-end conventional baseline used by the Appendix B
experiment.

The expansion is guarded: on Kleene patterns the uncompressed table can
be exponentially large, so ``max_rows`` turns a blow-up into a clean
error, mirroring the timeouts in the paper's experiments.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.context import QueryContext
from ..core.exprs import EvalEnv, Expr
from ..core.pattern import EngineMode, Pattern, evaluate_pattern
from ..errors import EvaluationBudgetExceeded
from ..graph.graph import Graph
from .relational import MatchTable, Row


def materialize_match_table(
    graph: Graph,
    pattern: Pattern,
    columns: Dict[str, Expr],
    where: Optional[Expr] = None,
    mode: Optional[EngineMode] = None,
    params: Optional[Dict[str, Any]] = None,
    max_rows: Optional[int] = 5_000_000,
) -> MatchTable:
    """Evaluate a pattern and materialize the uncompressed match table.

    ``columns`` maps output column names to expressions over the pattern
    variables.  A binding with multiplicity μ contributes μ identical
    rows — conventional bag semantics, with its conventional cost.
    """
    ctx = QueryContext(graph, params)
    mode = mode or EngineMode.counting()
    table = evaluate_pattern(ctx, pattern, mode)
    out = MatchTable()
    total = 0
    for binding_row in table:
        env = EvalEnv(ctx, binding_row.bindings)
        if where is not None and not where.eval(env):
            continue
        row: Row = {name: expr.eval(env) for name, expr in columns.items()}
        total += binding_row.multiplicity
        if max_rows is not None and total > max_rows:
            raise EvaluationBudgetExceeded(
                f"uncompressed match table exceeds {max_rows} rows; "
                f"this is the blow-up the compressed binding table avoids",
                expanded=total,
            )
        for _ in range(binding_row.multiplicity):
            out.append(dict(row))
    return out


__all__ = ["materialize_match_table"]
