"""A small relational layer: match tables and SQL-style grouped
aggregation, including GROUPING SETS / CUBE / ROLLUP.

This is the conventional-aggregation baseline of Section 8.  It is built
to exhibit — faithfully — the two structural inefficiencies the paper
attributes to SQL-style multi-aggregation:

1. **Wasteful aggregates per grouping set**: SQL computes *every*
   aggregate column for *every* grouping set, even when each set needs a
   different aggregate (Example 13).  :func:`grouping_sets` does exactly
   that, per the standard.
2. **Outer-union + multi-pass separation**: GROUPING SETS returns one
   table with NULLed-out grouping columns; routing per-set results to
   separate destinations requires materializing the union and
   re-scanning it (Section 8's "inefficiently expressible class").
   :func:`split_grouping_result` performs that post-pass.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import QueryRuntimeError

Row = Dict[str, Any]


class MatchTable:
    """A materialized match table: named columns, dict rows.

    This is the uncompressed relation that conventional engines feed
    their GROUP BY over (contrast with the compressed
    :class:`repro.core.pattern.BindingTable`).
    """

    def __init__(self, rows: Optional[List[Row]] = None):
        self.rows: List[Row] = rows if rows is not None else []

    def append(self, row: Row) -> None:
        self.rows.append(row)

    def project(self, columns: Sequence[str]) -> "MatchTable":
        return MatchTable([{c: row[c] for c in columns} for row in self.rows])

    def filter(self, predicate: Callable[[Row], bool]) -> "MatchTable":
        return MatchTable([row for row in self.rows if predicate(row)])

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Aggregate:
    """One aggregate column: function name, input column, output alias."""

    FUNCS = ("count", "sum", "min", "max", "avg")

    def __init__(self, func: str, column: Optional[str], alias: Optional[str] = None):
        func = func.lower()
        if func not in self.FUNCS:
            raise QueryRuntimeError(f"unknown aggregate {func!r}")
        self.func = func
        self.column = column
        self.alias = alias or f"{func}_{column or 'all'}"

    def fold(self, rows: List[Row]) -> Any:
        if self.func == "count":
            if self.column is None:
                return len(rows)
            return sum(1 for row in rows if row.get(self.column) is not None)
        values = [row[self.column] for row in rows if row.get(self.column) is not None]
        if not values:
            return None
        if self.func == "sum":
            return sum(values)
        if self.func == "min":
            return min(values)
        if self.func == "max":
            return max(values)
        return sum(values) / len(values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.func}({self.column or '*'}) AS {self.alias}"


def group_by(
    table: MatchTable,
    keys: Sequence[str],
    aggregates: Sequence[Aggregate],
) -> MatchTable:
    """Plain SQL GROUP BY: one output row per distinct key combination."""
    groups: Dict[Tuple, List[Row]] = {}
    order: List[Tuple] = []
    for row in table:
        key = tuple(row.get(k) for k in keys)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = bucket = []
            order.append(key)
        bucket.append(row)
    out = MatchTable()
    for key in order:
        bucket = groups[key]
        result: Row = dict(zip(keys, key))
        for agg in aggregates:
            result[agg.alias] = agg.fold(bucket)
        out.append(result)
    return out


def grouping_sets(
    table: MatchTable,
    sets: Sequence[Sequence[str]],
    aggregates: Sequence[Aggregate],
    all_columns: Optional[Sequence[str]] = None,
) -> MatchTable:
    """SQL GROUPING SETS: the outer union of one GROUP BY per set.

    Per the standard (and per the paper's complaint), **all** aggregate
    columns are computed for **every** grouping set.  Grouping columns
    absent from a set are NULL in its rows; a ``__grouping_set`` index
    column identifies the originating set (the role of SQL's GROUPING()
    function).
    """
    if all_columns is None:
        seen: List[str] = []
        for gset in sets:
            for col in gset:
                if col not in seen:
                    seen.append(col)
        all_columns = seen
    out = MatchTable()
    for index, gset in enumerate(sets):
        grouped = group_by(table, list(gset), aggregates)
        for row in grouped:
            unioned: Row = {col: row.get(col) for col in all_columns}
            for agg in aggregates:
                unioned[agg.alias] = row[agg.alias]
            unioned["__grouping_set"] = index
            out.append(unioned)
    return out


def cube(
    table: MatchTable, columns: Sequence[str], aggregates: Sequence[Aggregate]
) -> MatchTable:
    """SQL CUBE: grouping sets for every subset of the columns (2^n sets)."""
    subsets: List[List[str]] = [[]]
    for col in columns:
        subsets += [subset + [col] for subset in subsets]
    # Standard CUBE order: coarser sets last; keep deterministic order.
    subsets.sort(key=lambda s: (-len(s), [columns.index(c) for c in s]))
    return grouping_sets(table, subsets, aggregates, all_columns=columns)


def rollup(
    table: MatchTable, columns: Sequence[str], aggregates: Sequence[Aggregate]
) -> MatchTable:
    """SQL ROLLUP: the n+1 prefix grouping sets."""
    prefixes = [list(columns[:i]) for i in range(len(columns), -1, -1)]
    return grouping_sets(table, prefixes, aggregates, all_columns=columns)


def split_grouping_result(
    unioned: MatchTable,
    sets: Sequence[Sequence[str]],
    wanted: Sequence[Sequence[str]],
) -> List[MatchTable]:
    """The multi-pass separation step of Section 8.

    Conventional SQL leaves GROUPING SETS results in one outer-union
    table; producing the per-set destination tables (what GSQL's
    multi-output SELECT emits directly) requires re-scanning that table
    once per set, keeping only the set's rows and its *wanted* aggregate
    columns.
    """
    outputs: List[MatchTable] = []
    for index, (gset, keep) in enumerate(zip(sets, wanted)):
        out = MatchTable()
        for row in unioned:
            if row.get("__grouping_set") != index:
                continue
            out.append(
                {**{col: row[col] for col in gset}, **{a: row[a] for a in keep}}
            )
        outputs.append(out)
    return outputs


__all__ = [
    "Row",
    "MatchTable",
    "Aggregate",
    "group_by",
    "grouping_sets",
    "cube",
    "rollup",
    "split_grouping_result",
]
