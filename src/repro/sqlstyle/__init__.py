"""Conventional SQL-style aggregation baseline (Section 8)."""

from .engine import materialize_match_table
from .relational import (
    Aggregate,
    MatchTable,
    Row,
    cube,
    group_by,
    grouping_sets,
    rollup,
    split_grouping_result,
)

__all__ = [
    "materialize_match_table",
    "Aggregate",
    "MatchTable",
    "Row",
    "cube",
    "group_by",
    "grouping_sets",
    "rollup",
    "split_grouping_result",
]
