"""The rule catalog: every check the analyzer knows, one class each.

A rule pattern-matches over the :class:`~repro.analysis.model.QueryModel`
fact stream and yields :class:`~repro.analysis.diagnostics.Diagnostic`
objects.  Rules carry a stable code (``GSQL-Exxx`` for errors,
``GSQL-Wxxx`` for warnings) that inline suppressions and the JSON output
key off; the codes never change meaning once assigned.

Error rules (wrong programs)
    E001 undeclared accumulator            E002 accumulator scope confusion
    E003 duplicate accumulator             E004 unknown vertex set
    E005 unknown vertex type               E006 unknown edge type
    E013 Kleene star feeds an order-dependent accumulator (Section 7)
    E101 accumulator input type mismatch   E102 map key/value type conflict
    E103 heap tuple arity/type mismatch

Warning rules (suspicious programs)
    W010 snapshot read hazard (Section 4.3)
    W012 order-dependent accumulator (Section 7 tractable class)
    W020 WHILE without LIMIT or convergent condition
    W021 unused accumulator                W022 unused vertex set
    W023 INTO shadows an existing name     W024 FOREACH shadows a name
    W025 unknown bare identifier

Flow-sensitive rules (over the :mod:`.dataflow` fixed point)
    E030 read before first write           W031 dead accumulator write
    W032 loop-invariant SELECT block       E033 WHILE that cannot converge
    W034 unreachable statement

Effect/commutativity rules (over the :mod:`.effects` certificates)
    E040 parallel-unsafe accumulator update
    W041 order-dependent block under parallelism
    W042 cross-accumulator read-write interference

Cost rules (over the :mod:`.cost` certificates)
    W050 predicted-intractable path enumeration
    W051 WHILE with unbounded predicted iterations
    W052 predicted accumulator memory over the bounded-class cap
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple, Type

from ..core.exprs import NameRef
from .diagnostics import Diagnostic, Severity
from .model import (
    AccumReadFact,
    AccumWriteFact,
    QueryModel,
)
from .types import TypeEnv, check_accum_input

_REGISTRY: List[Type["Rule"]] = []


def register(cls: Type["Rule"]) -> Type["Rule"]:
    _REGISTRY.append(cls)
    return cls


def all_rules() -> List["Rule"]:
    """Fresh instances of every registered rule, in registration order."""
    return [cls() for cls in _REGISTRY]


def rule_catalog() -> List[Type["Rule"]]:
    return list(_REGISTRY)


def catalog_codes() -> List[str]:
    """Every diagnostic code the registry can emit, sub-codes included.

    The doc-drift golden test pins this list against the tables in
    ``docs/static_analysis.md``.
    """
    codes: Set[str] = set()
    for cls in _REGISTRY:
        codes.add(cls.code)
        for attr in ("SCOPE_CODE", "MAP_CODE", "HEAP_CODE"):
            sub = getattr(cls, attr, None)
            if sub:
                codes.add(sub)
    return sorted(codes)


class Rule:
    """Base rule. Subclasses set ``code``/``severity``/``name`` and
    implement :meth:`check`."""

    code: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, message: str, fact=None, span=None, seq=0) -> Diagnostic:
        if fact is not None:
            span = span if span is not None else fact.span
            seq = seq or fact.seq
        return Diagnostic(
            self.code, self.severity, message, span,
            rule_name=self.name, seq=seq,
        )


def _sigil(is_global: bool) -> str:
    return "@@" if is_global else "@"


# ======================================================================
# Errors ported from core.validate (E001-E006)
# ======================================================================
@register
class DuplicateAccumulatorRule(Rule):
    code = "GSQL-E003"
    name = "duplicate-accumulator"
    severity = Severity.ERROR
    description = "An accumulator name is declared more than once."

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        for decl in model.decls:
            if decl.duplicate:
                yield self.diag(f"@{decl.name} declared twice", decl)


@register
class AccumulatorResolutionRule(Rule):
    """E001/E002 combined: every accumulator read and write must resolve
    to a declaration of the matching scope.  Iterates the unified fact
    stream so diagnostics come out in source order."""

    code = "GSQL-E001"
    name = "undeclared-accumulator"
    severity = Severity.ERROR
    description = "An accumulator is used but never declared (or used at the wrong scope)."

    SCOPE_CODE = "GSQL-E002"
    SCOPE_NAME = "accumulator-scope"

    def scope_diag(self, message: str, fact) -> Diagnostic:
        return Diagnostic(
            self.SCOPE_CODE, Severity.ERROR, message, fact.span,
            rule_name=self.SCOPE_NAME, seq=fact.seq,
        )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        for fact in model.facts:
            if isinstance(fact, AccumWriteFact):
                yield from self._check_write(fact)
            elif isinstance(fact, AccumReadFact):
                yield from self._check_read(fact)

    def _check_write(self, fact: AccumWriteFact) -> Iterator[Diagnostic]:
        if fact.context == "top":
            if not fact.declared_global:
                yield self.diag(
                    f"@@{fact.name} updated but never declared", fact
                )
            return
        if fact.is_global and fact.declared_vertex and not fact.declared_global:
            yield self.scope_diag(
                f"@@{fact.name} used globally but declared as a vertex "
                f"accumulator",
                fact,
            )
        elif not fact.is_global and fact.declared_global and not fact.declared_vertex:
            yield self.scope_diag(
                f"@{fact.name} used per-vertex but declared as a global "
                f"accumulator",
                fact,
            )
        elif not (fact.declared_global or fact.declared_vertex):
            yield self.diag(
                f"@{fact.name} receives inputs but was never declared", fact
            )

    def _check_read(self, fact: AccumReadFact) -> Iterator[Diagnostic]:
        if fact.is_global:
            if not fact.declared_global:
                if fact.declared_vertex:
                    yield self.scope_diag(
                        f"@@{fact.name} read globally but declared per-vertex",
                        fact,
                    )
                else:
                    yield self.diag(
                        f"@@{fact.name} read but never declared", fact
                    )
        else:
            if not fact.declared_vertex:
                if fact.declared_global:
                    yield self.scope_diag(
                        f"@{fact.name} read per-vertex but declared globally",
                        fact,
                    )
                else:
                    yield self.diag(
                        f"@{fact.name} read but never declared", fact
                    )


@register
class UnknownVertexSetRule(Rule):
    code = "GSQL-E004"
    name = "unknown-vertex-set"
    severity = Severity.ERROR
    description = "A vertex set is read before any statement defines it."

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        for use in model.set_uses:
            if use.known:
                continue
            if use.context == "setop":
                yield self.diag(
                    f"set operation reads undefined set {use.name!r}", use
                )
            elif use.context == "print":
                yield self.diag(
                    f"PRINT projects undefined set {use.name!r}", use
                )
            elif use.context == "copy":
                yield self.diag(
                    f"assignment copies undefined set {use.name!r}", use
                )


@register
class UnknownVertexTypeRule(Rule):
    code = "GSQL-E005"
    name = "unknown-vertex-type"
    severity = Severity.ERROR
    description = "A pattern position names neither a vertex type nor a defined set."

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        if model.schema is None:
            return
        for pos in model.pattern_positions:
            if not pos.is_set and not pos.schema_known:
                yield self.diag(
                    f"pattern position {pos.name!r} is neither a declared "
                    f"vertex type nor a known vertex set",
                    pos,
                )


@register
class UnknownEdgeTypeRule(Rule):
    code = "GSQL-E006"
    name = "unknown-edge-type"
    severity = Severity.ERROR
    description = "A DARPE names an edge type the schema does not declare."

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        for fact in model.edge_types:
            if not fact.known:
                yield self.diag(
                    f"DARPE {fact.darpe_text!r} names undeclared edge type "
                    f"{fact.edge_type!r}",
                    fact,
                )


# ======================================================================
# Section 7 tractability (ported from core.tractable)
# ======================================================================
@register
class OrderDependentAccumulatorRule(Rule):
    code = "GSQL-W012"
    name = "order-dependent-accumulator"
    severity = Severity.WARNING
    description = (
        "An order-dependent accumulator (ListAccum, ArrayAccum, "
        "SumAccum<STRING>) places the query outside the Section 7 "
        "tractable class."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        for decl in model.decls:
            if decl.order_dependent:
                yield self.diag(
                    f"@{decl.name} has order-dependent type {decl.type_text}",
                    decl,
                )


@register
class KleeneFeedsOrderDependentRule(Rule):
    code = "GSQL-E013"
    name = "kleene-feeds-order-dependent"
    severity = Severity.ERROR
    description = (
        "A Kleene-starred pattern feeds an order-dependent accumulator; "
        "evaluation would require materializing every path."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        order_dependent = {d.name for d in model.decls if d.order_dependent}
        for block_fact in model.blocks:
            if not block_fact.has_kleene:
                continue
            for write in block_fact.writes:
                if write.context != "accum":
                    continue
                if write.name in order_dependent:
                    yield self.diag(
                        f"@{write.name} receives inputs from a Kleene "
                        f"pattern ({block_fact.block.pattern!r}); evaluation "
                        f"would require per-path materialization",
                        write,
                    )


# ======================================================================
# Type inference over the accumulator lattice (E101-E103)
# ======================================================================
@register
class AccumulatorInputTypeRule(Rule):
    """E101/E102/E103: ``+=`` inputs (and declaration initializers) must
    match the declared accumulator type."""

    code = "GSQL-E101"
    name = "accum-input-type"
    severity = Severity.ERROR
    description = "An accumulator receives a value its declared type cannot fold."

    MAP_CODE = "GSQL-E102"
    MAP_NAME = "map-type-conflict"
    HEAP_CODE = "GSQL-E103"
    HEAP_NAME = "heap-input-shape"

    _NAMES = {"GSQL-E101": "accum-input-type",
              "GSQL-E102": "map-type-conflict",
              "GSQL-E103": "heap-input-shape"}

    def _emit(self, code: str, message: str, fact) -> Diagnostic:
        return Diagnostic(
            code, Severity.ERROR, message, fact.span,
            rule_name=self._NAMES[code], seq=fact.seq,
        )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        infos = model.accum_types()
        decl_env = TypeEnv(accums=infos, names=dict(model.params))
        for decl in model.decls:
            initial = getattr(decl.node, "initial", None)
            if decl.type_info is None or initial is None:
                continue
            found = check_accum_input(decl.type_info, initial, decl_env)
            if found:
                code, message = found
                yield self._emit(code, f"initializer mismatch: {message}", decl)
        for write in model.writes:
            if write.op != "+=":
                continue
            info = infos.get((write.is_global, write.name))
            found = check_accum_input(info, write.expr, write.env)
            if found:
                code, message = found
                yield self._emit(
                    code,
                    f"{_sigil(write.is_global)}{write.name} += : {message}",
                    write,
                )


# ======================================================================
# Paper-grounded warnings
# ======================================================================
@register
class SnapshotReadHazardRule(Rule):
    """W010: Section 4.3 — inside an ACCUM clause every accumulator read
    sees the snapshot taken *before* the clause.  Reading an accumulator
    the same clause updates (same target for vertex accumulators) is a
    classic source of off-by-one-superstep bugs."""

    code = "GSQL-W010"
    name = "snapshot-read-hazard"
    severity = Severity.WARNING
    description = (
        "An ACCUM clause reads an accumulator it also updates; the read "
        "sees the pre-clause snapshot (Section 4.3)."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        for block_fact in model.blocks:
            global_writes: Set[str] = set()
            vertex_writes: Dict[str, Set[Optional[str]]] = {}
            for write in block_fact.writes:
                if write.context != "accum":
                    continue
                if write.is_global:
                    global_writes.add(write.name)
                else:
                    base = write.node.target.base
                    var = base.name if isinstance(base, NameRef) else None
                    vertex_writes.setdefault(write.name, set()).add(var)
            for read in block_fact.reads:
                if read.context != "accum" or read.primed:
                    continue
                if read.is_global:
                    hazard = read.name in global_writes
                else:
                    base = getattr(read.node, "base", None)
                    var = base.name if isinstance(base, NameRef) else None
                    hazard = var is not None and var in vertex_writes.get(
                        read.name, set()
                    )
                if hazard:
                    yield self.diag(
                        f"{_sigil(read.is_global)}{read.name} is read in the "
                        f"same ACCUM clause that updates it; the read sees "
                        f"the snapshot taken before the clause (move it to "
                        f"POST_ACCUM or read the primed value)",
                        read,
                    )


@register
class WhileWithoutLimitRule(Rule):
    code = "GSQL-W020"
    name = "while-without-limit"
    severity = Severity.WARNING
    description = (
        "A WHILE loop has no LIMIT and its condition depends on nothing "
        "the body can change."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        for loop in model.whiles:
            if loop.has_limit or loop.cond_reads_accum:
                continue
            if loop.cond_set_names & loop.body_assigned_sets:
                continue
            yield self.diag(
                "WHILE has no LIMIT and its condition references no "
                "accumulator or reassigned vertex set; the loop may never "
                "terminate",
                loop,
            )


@register
class UnusedAccumulatorRule(Rule):
    code = "GSQL-W021"
    name = "unused-accumulator"
    severity = Severity.WARNING
    description = "An accumulator is declared but never read or updated."

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        used: Set[Tuple[bool, str]] = set()
        for write in model.writes:
            used.add((write.is_global, write.name))
        for read in model.reads:
            used.add((read.is_global, read.name))
        for decl in model.decls:
            key = (decl.scope == "global", decl.name)
            if key not in used:
                yield self.diag(
                    f"{_sigil(key[0])}{decl.name} is declared but never used",
                    decl,
                )


@register
class UnusedVertexSetRule(Rule):
    code = "GSQL-W022"
    name = "unused-vertex-set"
    severity = Severity.WARNING
    description = "An explicitly assigned vertex set is never read."

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        used = {use.name for use in model.set_uses}
        seen: Set[str] = set()
        for def_fact in model.set_defs:
            if def_fact.origin != "assign" or def_fact.name in seen:
                continue
            seen.add(def_fact.name)
            if def_fact.name not in used:
                yield self.diag(
                    f"vertex set {def_fact.name!r} is assigned but never "
                    f"used",
                    def_fact,
                )


@register
class ShadowedIntoRule(Rule):
    code = "GSQL-W023"
    name = "shadowed-into"
    severity = Severity.WARNING
    description = "An INTO table reuses the name of an existing set or table."

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        for into in model.intos:
            if into.shadows:
                yield self.diag(
                    f"INTO {into.name} shadows an existing {into.shadows}",
                    into,
                )


@register
class ForeachShadowRule(Rule):
    code = "GSQL-W024"
    name = "foreach-shadows-name"
    severity = Severity.WARNING
    description = "A FOREACH loop variable shadows a vertex set or parameter."

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        for var in model.foreach_vars:
            if var.shadows:
                yield self.diag(
                    f"FOREACH variable {var.var!r} shadows a {var.shadows}",
                    var,
                )


@register
class UnknownNameRule(Rule):
    code = "GSQL-W025"
    name = "unknown-name"
    severity = Severity.WARNING
    description = (
        "A bare identifier outside any SELECT resolves to no parameter, "
        "set, table or loop variable."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        for use in model.name_uses:
            if not use.known:
                yield self.diag(
                    f"{use.name!r} is not a parameter, vertex set, table or "
                    f"loop variable",
                    use,
                )


# ======================================================================
# Flow-sensitive rules (E030-W034) — thin reporters over the dataflow
# fixed point; all the graph reasoning lives in repro.analysis.dataflow.
# ======================================================================
@register
class ReadBeforeWriteRule(Rule):
    """E030: a read that *no* write can reach.

    Flow-sensitive: fires only when every CFG path from entry to the
    read is write-free **and** the accumulator is written somewhere
    later, so read-only accumulators (query inputs/outputs) and
    declarations with initializers stay clean."""

    code = "GSQL-E030"
    name = "read-before-write"
    severity = Severity.ERROR
    description = (
        "An accumulator is read before any path has written it; the "
        "read yields the type's default value."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from .dataflow import analyze_dataflow

        for read in analyze_dataflow(model).reads_before_write:
            yield self.diag(
                f"{_sigil(read.is_global)}{read.name} is read before any "
                f"write can reach this point; its first write comes later, "
                f"so this read sees the type's default value",
                read,
            )


@register
class DeadWriteRule(Rule):
    """W031: a write that every path overwrites with ``=`` before any
    read.  Backward liveness with *all* accumulators live at exit, so a
    final write (the query's output) is never flagged."""

    code = "GSQL-W031"
    name = "dead-accumulator-write"
    severity = Severity.WARNING
    description = (
        "An accumulator write is overwritten by a plain '=' assignment "
        "on every path before anything reads it."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from .dataflow import analyze_dataflow

        for write in analyze_dataflow(model).dead_writes:
            yield self.diag(
                f"this write to {_sigil(write.is_global)}{write.name} is "
                f"dead: every following path overwrites it with '=' before "
                f"any read",
                write,
            )


@register
class LoopInvariantSelectRule(Rule):
    """W032: a SELECT block inside a WHILE that reads nothing the loop
    changes — same result every iteration; hoist it out."""

    code = "GSQL-W032"
    name = "loop-invariant-select"
    severity = Severity.WARNING
    description = (
        "A SELECT block inside a WHILE loop depends on nothing the loop "
        "body changes; it recomputes the same result every iteration."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from .dataflow import analyze_dataflow

        for block_fact, _loop in analyze_dataflow(model).loop_invariant_blocks:
            yield self.diag(
                "SELECT block is loop-invariant: it reads no accumulator "
                "or vertex set the enclosing WHILE body changes; hoist it "
                "out of the loop",
                block_fact,
            )


@register
class WhileNeverConvergesRule(Rule):
    """E033: a WHILE whose condition reads accumulators, none of which
    the body updates — the condition is frozen, the loop cannot
    terminate (W020 covers conditions that read *no* accumulator)."""

    code = "GSQL-E033"
    name = "while-never-converges"
    severity = Severity.ERROR
    description = (
        "A WHILE without LIMIT tests accumulators its body never "
        "updates; the condition can never change."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from .dataflow import analyze_dataflow

        for loop in analyze_dataflow(model).nonterminating_whiles:
            yield self.diag(
                "WHILE has no LIMIT and none of the accumulators its "
                "condition reads is updated in the loop body; the "
                "condition can never change and the loop cannot terminate",
                loop,
            )


@register
class UnreachableStatementRule(Rule):
    """W034: a statement no CFG path reaches, because a statically
    constant IF/WHILE condition cuts it off.  One diagnostic per
    unreachable region (its entry node), not per statement."""

    code = "GSQL-W034"
    name = "unreachable-statement"
    severity = Severity.WARNING
    description = (
        "A statement is unreachable: a statically constant condition "
        "(e.g. IF FALSE) cuts off every path to it."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from .dataflow import analyze_dataflow

        for node in analyze_dataflow(model).unreachable_nodes:
            seq = node.events[0][1].seq if node.events else node.id
            yield self.diag(
                "statement is unreachable: a statically constant "
                "condition cuts off every path to it",
                span=node.span,
                seq=seq,
            )


# ======================================================================
# Effect/commutativity rules (E040-W042) — thin reporters over the
# per-block DeterminismCertificates of repro.analysis.effects.
# ======================================================================
@register
class ParallelUnsafeUpdateRule(Rule):
    """E040: a plain ``=`` into a *global* accumulator from an ACCUM
    clause with a row-dependent right-hand side.  Whatever the schedule
    — serial, partitioned, threaded — the final value is whichever row
    happened to flush last; there is no order under which this is
    well-defined, so it is an error, not a style warning."""

    code = "GSQL-E040"
    name = "parallel-unsafe-update"
    severity = Severity.ERROR
    description = (
        "An ACCUM clause assigns a row-dependent value to a global "
        "accumulator with '='; the result is whichever row wins the "
        "last-write race."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from .effects import analyze_effects

        for write in analyze_effects(model).unsafe_writes:
            yield self.diag(
                f"@@{write.name} = … inside ACCUM is last-write-wins over "
                f"unordered binding rows; no evaluation order makes this "
                f"well-defined (use += with a commutative accumulator, or "
                f"move the assignment to POST_ACCUM)",
                write,
            )


@register
class OrderDependentBlockRule(Rule):
    """W041: the block's effect certificate is ORDER_DEPENDENT — some
    update observes input order, so partitioned/threaded execution (and
    any future plan that reorders rows) is nondeterministic.  Kleene-fed
    cases are already E013 errors; this rule covers the bounded-pattern
    remainder, per *block* rather than per declaration (W012)."""

    code = "GSQL-W041"
    name = "order-dependent-under-parallelism"
    severity = Severity.WARNING
    description = (
        "A SELECT block's accumulator updates are order-dependent; "
        "parallel or partitioned execution would be nondeterministic."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from ..core.tractable import DeterminismStatus
        from .effects import analyze_effects

        for block_fact, _summary, cert in analyze_effects(model).blocks:
            if cert.status is not DeterminismStatus.ORDER_DEPENDENT:
                continue
            if block_fact.has_kleene:
                continue  # E013 already rejects the Kleene-fed cases
            reasons = "; ".join(cert.witnesses)
            yield self.diag(
                f"block is order-dependent under parallelism: {reasons}",
                block_fact,
            )


@register
class CrossAccumInterferenceRule(Rule):
    """W042: an ACCUM clause reads a vertex accumulator through one
    pattern variable while updating the same accumulator through a
    *different* variable.  Snapshot semantics keep a single serial block
    deterministic, but the read-set and write-set overlap across rows,
    which defeats delta maintenance and in-place partitioned execution
    (W010 covers the same-variable case)."""

    code = "GSQL-W042"
    name = "cross-accumulator-interference"
    severity = Severity.WARNING
    description = (
        "An ACCUM clause reads an accumulator it also writes through a "
        "different pattern variable; the read and write sets interfere "
        "across rows."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from .effects import analyze_effects

        for finding in analyze_effects(model).interference:
            via = finding.read_var or "?"
            writers = ", ".join(
                f"{w}.@{finding.name}" for w in finding.write_vars
            )
            yield self.diag(
                f"{via}.@{finding.name} is read while the same ACCUM "
                f"clause updates {writers}; reads and writes of "
                f"@{finding.name} interfere across rows (certified "
                f"non-delta-maintainable)",
                finding.read,
            )


# ======================================================================
# Cost rules (W050-W052) — thin reporters over the per-block
# CostCertificates of repro.analysis.cost.  Without graph statistics
# (``model.lint_stats``) the certificates are structural, so the rules
# stay conservative: they fire only on what is *provable* either way —
# an unbounded prediction (W050/W051) or a finite bound already over a
# cap (W052).
# ======================================================================

#: Path-count threshold above which a predicted enumeration is reported
#: as intractable — the stock "interactive" budget class's max_paths
#: (see repro.server.admission.default_classes).
PREDICTED_PATHS_WARN = 1_000_000

#: Accumulator-memory threshold for W052 — the stock "bounded" budget
#: class's max_accum_bytes cap (64 MiB).
PREDICTED_ACCUM_BYTES_WARN = 64 * 1024 * 1024


@register
class PredictedIntractableEnumerationRule(Rule):
    """W050: a block *must* run the enumeration engine (its tractability
    certificate says ENUMERATION_REQUIRED), and the cost certificate
    predicts an unbounded or enormous number of materialized paths.
    Unlike E013 (which rejects the order-dependent + Kleene combination
    outright), this fires on queries that are legal but whose predicted
    path count says the run will not finish at interactive scale."""

    code = "GSQL-W050"
    name = "predicted-intractable-enumeration"
    severity = Severity.WARNING
    description = (
        "A block requires path enumeration and its cost certificate "
        "predicts an unbounded or enormous path count."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from ..core.tractable import TractabilityStatus
        from .cost import analyze_cost
        from .dataflow import block_certificates

        cost = analyze_cost(model, stats=getattr(model, "lint_stats", None))
        by_block = {id(bf): cert for bf, cert in cost.blocks}
        for block_fact, cert in block_certificates(model):
            if cert.status is not TractabilityStatus.ENUMERATION_REQUIRED:
                continue
            cc = by_block.get(id(block_fact))
            if cc is None:
                continue
            if cc.paths.hi is not None and cc.paths.hi <= PREDICTED_PATHS_WARN:
                continue
            predicted = (
                "unbounded" if cc.paths.hi is None else f"<= {cc.paths.hi:,}"
            )
            yield self.diag(
                f"block requires the enumeration engine and its predicted "
                f"path count is {predicted}; the run is predicted "
                f"intractable — bound the pattern, or run governed with "
                f"--max-paths",
                block_fact,
            )


@register
class UnboundedPredictedIterationsRule(Rule):
    """W051: a WHILE loop whose predicted iteration count is unbounded —
    no constant LIMIT and no governed cap (E033's degraded-execution
    flag) — so every cost interval inside it is unbounded too.  W020
    covers the narrower "condition can never change" case; this covers
    loops that *do* converge dynamically but give static analysis no
    bound to certify, which in turn makes auto-budgets and admission
    prediction useless for the whole query."""

    code = "GSQL-W051"
    name = "unbounded-predicted-iterations"
    severity = Severity.WARNING
    description = (
        "A WHILE loop has no statically bounded iteration count (no "
        "LIMIT, no governed cap); the query's cost prediction is "
        "unbounded."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from .cost import analyze_cost

        cost = analyze_cost(model, stats=getattr(model, "lint_stats", None))
        facts_by_node = {id(fact.node): fact for fact in model.whiles}
        for loop_node, iterations in cost.whiles:
            if iterations.hi is not None:
                continue
            loop_fact = facts_by_node.get(id(loop_node))
            if loop_fact is None:
                continue
            if loop_fact.has_limit or loop_fact.cond_reads_accum:
                # A LIMIT bounds it; a convergence condition (reads an
                # accumulator) is the idiomatic dynamic bound — W020/E033
                # police the pathological subcases.
                continue
            if not (loop_fact.cond_set_names & loop_fact.body_assigned_sets):
                continue  # W020 already reports the never-changing case
            yield self.diag(
                "WHILE iterations cannot be bounded statically; every "
                "cost prediction inside the loop is unbounded — add a "
                "LIMIT to restore a certifiable budget",
                loop_fact,
            )


@register
class PredictedAccumMemoryRule(Rule):
    """W052: the query's predicted accumulator memory — container growth
    per certified acc-execution, from the op-algebra table's unit-bytes
    column — exceeds the stock bounded budget class's 64 MiB cap.  A
    *finite* prediction over the cap is a proof the query cannot run in
    that class; with structural (statistics-free) certificates container
    growth is unbounded, not finite, so the rule stays silent."""

    code = "GSQL-W052"
    name = "predicted-accumulator-memory"
    severity = Severity.WARNING
    description = (
        "The query's predicted accumulator memory exceeds the bounded "
        "budget class's 64 MiB cap."
    )

    def check(self, model: QueryModel) -> Iterator[Diagnostic]:
        from .cost import analyze_cost

        cost = analyze_cost(model, stats=getattr(model, "lint_stats", None))
        cert = cost.query_certificate
        hi = cert.accum_bytes.hi
        if hi is None or hi <= PREDICTED_ACCUM_BYTES_WARN:
            return
        mib = hi / (1024 * 1024)
        yield self.diag(
            f"predicted accumulator memory is up to {mib:,.0f} MiB, over "
            f"the bounded budget class's 64 MiB cap; the query cannot be "
            f"admitted there (shrink the container accumulators or use a "
            f"roomier class)",
            span=None,
            seq=0,
        )


#: Codes whose diagnostics the legacy ``validate_query`` shim reports,
#: mapped to the original issue kinds.
LEGACY_VALIDATE_KINDS: Dict[str, str] = {
    "GSQL-E001": "undeclared-accumulator",
    "GSQL-E002": "accumulator-scope",
    "GSQL-E003": "duplicate-accumulator",
    "GSQL-E004": "unknown-vertex-set",
    "GSQL-E005": "unknown-vertex-type",
    "GSQL-E006": "unknown-edge-type",
}

#: Codes the legacy ``core.tractable`` shim reports, mapped to its kinds.
LEGACY_TRACTABLE_KINDS: Dict[str, str] = {
    "GSQL-W012": "order-dependent-accumulator",
    "GSQL-E013": "kleene-feeds-order-dependent",
}


__all__ = [
    "Rule",
    "register",
    "all_rules",
    "rule_catalog",
    "catalog_codes",
    "LEGACY_VALIDATE_KINDS",
    "LEGACY_TRACTABLE_KINDS",
]
