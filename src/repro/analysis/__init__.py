"""Rule-based static analysis for the GSQL subset.

The subsystem behind ``repro lint``: a pluggable rule registry
(:mod:`~repro.analysis.rules`), accumulator-lattice type inference
(:mod:`~repro.analysis.types`), and span-carrying diagnostics with
caret-underlined source excerpts (:mod:`~repro.analysis.diagnostics`),
all driven off a single-pass fact model of the query
(:mod:`~repro.analysis.model`).

This package imports only from :mod:`repro.core` (never from
:mod:`repro.gsql`), so the parser can keep stamping spans and type
descriptors without an import cycle.
"""

from .analyzer import analyze, error_count, run_rules
from .cfg import CFG, CFGNode, build_cfg
from .dataflow import DataflowResult, analyze_dataflow, block_certificates
from .effects import (
    AccumEffect,
    EffectsResult,
    EffectSummary,
    ReadEffect,
    analyze_effects,
    block_effects,
)
from .diagnostics import (
    Diagnostic,
    Severity,
    apply_suppressions,
    caret_excerpt,
)
from .model import QueryModel, build_model, cached_model
from .rules import (
    LEGACY_TRACTABLE_KINDS,
    LEGACY_VALIDATE_KINDS,
    Rule,
    all_rules,
    catalog_codes,
    register,
    rule_catalog,
)
from .types import TypeEnv, infer_type

__all__ = [
    "analyze",
    "run_rules",
    "error_count",
    "Diagnostic",
    "Severity",
    "apply_suppressions",
    "caret_excerpt",
    "QueryModel",
    "build_model",
    "cached_model",
    "CFG",
    "CFGNode",
    "build_cfg",
    "DataflowResult",
    "analyze_dataflow",
    "block_certificates",
    "AccumEffect",
    "ReadEffect",
    "EffectSummary",
    "EffectsResult",
    "analyze_effects",
    "block_effects",
    "Rule",
    "all_rules",
    "register",
    "rule_catalog",
    "catalog_codes",
    "LEGACY_VALIDATE_KINDS",
    "LEGACY_TRACTABLE_KINDS",
    "TypeEnv",
    "infer_type",
]
