"""The analyzer's view of a compiled query: an ordered stream of facts.

:func:`build_model` walks a :class:`~repro.core.query.Query` exactly
once, in source order, resolving names against the *sequential* scope a
GSQL query builds up (declarations bind from their statement onward) and
recording what it sees as flat fact records.  Rules never walk the AST
themselves — they pattern-match over these facts, which keeps each rule
a few lines and guarantees all rules agree on scoping.

The walk mirrors the original ``core.validate`` traversal order so the
compatibility shim reproduces its diagnostics byte-for-byte, and —
unlike the original — recurses into ``IF``/``FOREACH`` statements nested
inside ACCUM and POST_ACCUM clauses (:class:`~repro.core.stmts.AccumIf`
and :class:`~repro.core.stmts.AccumForeach`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.acctypes import AccumTypeInfo
from ..core.block import SelectBlock
from ..core.exprs import Expr, GlobalAccumRef, NameRef, VertexAccumRef
from ..core.pattern import Pattern, TableSource
from ..core.query import (
    DeclareAccum,
    Foreach,
    GlobalAccumUpdate,
    If,
    Print,
    PrintSetProjection,
    Query,
    Return,
    RunBlock,
    SetAssign,
    SetOpAssign,
    Statement,
    While,
)
from ..core.span import Span, span_of
from ..core.stmts import (
    AccumForeach,
    AccumIf,
    AccumUpdate,
    AttributeUpdate,
    LocalAssign,
)
from ..darpe.ast import symbols
from .types import TypeEnv


class _Fact:
    """Base record: every fact knows its AST node and source span.

    ``owner`` is the innermost *statement* being walked when the fact was
    recorded (None for top-level walks) — the unit the control-flow graph
    of :mod:`repro.analysis.cfg` is built over, so the flow-sensitive
    rules can group facts per CFG node.
    """

    __slots__ = ("node", "span", "seq", "owner")

    def __init__(self, node: Any, span: Optional[Span], seq: int):
        self.node = node
        self.span = span
        self.seq = seq
        self.owner: Any = None


class DeclFact(_Fact):
    __slots__ = ("name", "scope", "type_info", "duplicate", "order_dependent",
                 "type_text")

    def __init__(self, node, span, seq, name, scope, type_info, duplicate,
                 order_dependent, type_text):
        super().__init__(node, span, seq)
        self.name = name
        self.scope = scope  # "global" | "vertex"
        self.type_info = type_info
        self.duplicate = duplicate
        self.order_dependent = order_dependent
        self.type_text = type_text


class AccumWriteFact(_Fact):
    """One ``+=``/``=`` into an accumulator.

    ``context`` is ``"accum"``, ``"post_accum"`` or ``"top"`` (a
    top-level ``@@x += ...`` statement); ``nested`` marks updates inside
    an ACCUM-clause IF/FOREACH body.
    """

    __slots__ = ("name", "is_global", "op", "expr", "context",
                 "declared_global", "declared_vertex", "block", "nested", "env")

    def __init__(self, node, span, seq, name, is_global, op, expr, context,
                 declared_global, declared_vertex, block, nested, env):
        super().__init__(node, span, seq)
        self.name = name
        self.is_global = is_global
        self.op = op
        self.expr = expr
        self.context = context
        self.declared_global = declared_global
        self.declared_vertex = declared_vertex
        self.block = block
        self.nested = nested
        self.env = env


class AccumReadFact(_Fact):
    __slots__ = ("name", "is_global", "primed", "context",
                 "declared_global", "declared_vertex", "block")

    def __init__(self, node, span, seq, name, is_global, primed, context,
                 declared_global, declared_vertex, block):
        super().__init__(node, span, seq)
        self.name = name
        self.is_global = is_global
        self.primed = primed
        self.context = context
        self.declared_global = declared_global
        self.declared_vertex = declared_vertex
        self.block = block


class SetDefFact(_Fact):
    __slots__ = ("name", "origin")

    def __init__(self, node, span, seq, name, origin):
        super().__init__(node, span, seq)
        self.name = name
        self.origin = origin  # "assign" | "select" | "setop" | "into" | "alias"


class SetUseFact(_Fact):
    __slots__ = ("name", "context", "known")

    def __init__(self, node, span, seq, name, context, known):
        super().__init__(node, span, seq)
        self.name = name
        self.context = context  # "setop" | "print" | "from" | "copy"
        self.known = known


class PatternPosFact(_Fact):
    __slots__ = ("name", "is_set", "schema_known")

    def __init__(self, node, span, seq, name, is_set, schema_known):
        super().__init__(node, span, seq)
        self.name = name
        self.is_set = is_set
        self.schema_known = schema_known


class EdgeTypeFact(_Fact):
    __slots__ = ("edge_type", "darpe_text", "known")

    def __init__(self, node, span, seq, edge_type, darpe_text, known):
        super().__init__(node, span, seq)
        self.edge_type = edge_type
        self.darpe_text = darpe_text
        self.known = known


class BlockFact(_Fact):
    __slots__ = ("block", "has_kleene", "writes", "reads")

    def __init__(self, node, span, seq, block, has_kleene):
        super().__init__(node, span, seq)
        self.block = block
        self.has_kleene = has_kleene
        self.writes: List[AccumWriteFact] = []
        self.reads: List[AccumReadFact] = []


class WhileFact(_Fact):
    __slots__ = ("has_limit", "cond_reads_accum", "cond_set_names",
                 "body_assigned_sets")

    def __init__(self, node, span, seq, has_limit, cond_reads_accum,
                 cond_set_names, body_assigned_sets):
        super().__init__(node, span, seq)
        self.has_limit = has_limit
        self.cond_reads_accum = cond_reads_accum
        self.cond_set_names = cond_set_names
        self.body_assigned_sets = body_assigned_sets


class ForeachVarFact(_Fact):
    __slots__ = ("var", "shadows")

    def __init__(self, node, span, seq, var, shadows):
        super().__init__(node, span, seq)
        self.var = var
        self.shadows = shadows  # None | "vertex set" | "parameter"


class IntoFact(_Fact):
    __slots__ = ("name", "shadows")

    def __init__(self, node, span, seq, name, shadows):
        super().__init__(node, span, seq)
        self.name = name
        self.shadows = shadows  # None | "vertex set" | "table"


class NameUseFact(_Fact):
    """A bare top-level identifier (PRINT/RETURN/conditions), resolved
    against parameters, sets, tables and loop variables."""

    __slots__ = ("name", "context", "known")

    def __init__(self, node, span, seq, name, context, known):
        super().__init__(node, span, seq)
        self.name = name
        self.context = context
        self.known = known


class QueryModel:
    """Everything the rules need, in one pass over the query."""

    def __init__(self, query: Query, schema=None):
        self.query = query
        self.schema = schema
        self.source: Optional[str] = getattr(query, "source", None)
        self.params: Dict[str, str] = {
            p.name: p.type_name for p in query.params
        }
        self.facts: List[_Fact] = []
        self.decls: List[DeclFact] = []
        self.writes: List[AccumWriteFact] = []
        self.reads: List[AccumReadFact] = []
        self.set_defs: List[SetDefFact] = []
        self.set_uses: List[SetUseFact] = []
        self.pattern_positions: List[PatternPosFact] = []
        self.edge_types: List[EdgeTypeFact] = []
        self.blocks: List[BlockFact] = []
        self.whiles: List[WhileFact] = []
        self.foreach_vars: List[ForeachVarFact] = []
        self.intos: List[IntoFact] = []
        self.name_uses: List[NameUseFact] = []

    def accum_types(self) -> Dict[Tuple[bool, str], AccumTypeInfo]:
        return {
            (d.scope == "global", d.name): d.type_info
            for d in self.decls
            if d.type_info is not None
        }


def _decl_order_dependence(decl: DeclareAccum) -> Tuple[Optional[bool], str]:
    """(order_dependent, type description) for a declaration.

    Prefers the parser-preserved :class:`AccumTypeInfo`; programmatic
    declarations are probed by instantiating the factory (guarding the
    parameter-dependent factories that need a runtime context).  When the
    probe itself fails the answer is ``None`` — *unknown* — so the
    tractability certificate can refuse to classify rather than guess
    (the flow-insensitive W012/E013 rules treat unknown as clean, which
    preserves their historical behaviour).
    """
    info = decl.type_info
    if info is not None:
        return info.order_dependent, info.describe()
    factory = decl.base_factory
    if getattr(factory, "takes_context", False):
        return False, "HeapAccum"
    try:
        probe = factory()
    except Exception:
        return None, type(factory).__name__
    return (not probe.order_invariant), probe.type_name


class _ModelBuilder:
    def __init__(self, query: Query, schema=None):
        self.model = QueryModel(query, schema)
        self.schema = schema
        self.seq = 0
        # Sequential scope, mirroring core.validate._Scope.
        self.global_accums: Set[str] = set()
        self.vertex_accums: Set[str] = set()
        self.vertex_sets: Set[str] = set()
        self.tables: Set[str] = set()
        self.loop_vars: List[str] = []
        self._owner_stack: List[Statement] = []

    # ------------------------------------------------------------------
    def _next(self) -> int:
        self.seq += 1
        return self.seq

    def _add(self, fact: _Fact, bucket: List) -> None:
        fact.owner = self._owner_stack[-1] if self._owner_stack else None
        self.model.facts.append(fact)
        bucket.append(fact)

    def _type_env(
        self,
        local_names: Optional[Dict[str, str]] = None,
        vertex_vars: Optional[Set[str]] = None,
    ) -> TypeEnv:
        names = dict(self.model.params)
        if local_names:
            names.update(local_names)
        return TypeEnv(
            accums=self.model.accum_types(),
            names=names,
            vertex_vars=vertex_vars or set(),
        )

    # ------------------------------------------------------------------
    def build(self) -> QueryModel:
        self._walk_statements(self.model.query.statements)
        return self.model

    def _walk_statements(self, statements: List[Statement]) -> None:
        for stmt in statements:
            self._walk_statement(stmt)

    def _walk_statement(self, stmt: Statement) -> None:
        self._owner_stack.append(stmt)
        try:
            self._dispatch_statement(stmt)
        finally:
            self._owner_stack.pop()

    def _dispatch_statement(self, stmt: Statement) -> None:
        model = self.model
        if isinstance(stmt, DeclareAccum):
            duplicate = stmt.name in self.global_accums | self.vertex_accums
            order_dep, type_text = _decl_order_dependence(stmt)
            fact = DeclFact(
                stmt, span_of(stmt), self._next(), stmt.name, stmt.scope,
                stmt.type_info, duplicate, order_dep, type_text,
            )
            self._add(fact, model.decls)
            target = (
                self.global_accums if stmt.scope == "global"
                else self.vertex_accums
            )
            target.add(stmt.name)
        elif isinstance(stmt, SetAssign):
            if isinstance(stmt.source, SelectBlock):
                self._walk_block(stmt.source, stmt)
            elif isinstance(stmt.source, str):
                known = (
                    stmt.source in self.vertex_sets
                    or stmt.source in self.model.params
                )
                self._add(
                    SetUseFact(
                        stmt, span_of(stmt), self._next(), stmt.source,
                        "copy", known,
                    ),
                    model.set_uses,
                )
            self._add(
                SetDefFact(stmt, span_of(stmt), self._next(), stmt.name, "assign"),
                model.set_defs,
            )
            self.vertex_sets.add(stmt.name)
        elif isinstance(stmt, SetOpAssign):
            for operand in (stmt.left, stmt.right):
                self._add(
                    SetUseFact(
                        stmt, span_of(stmt), self._next(), operand, "setop",
                        operand in self.vertex_sets,
                    ),
                    model.set_uses,
                )
            self._add(
                SetDefFact(stmt, span_of(stmt), self._next(), stmt.name, "setop"),
                model.set_defs,
            )
            self.vertex_sets.add(stmt.name)
        elif isinstance(stmt, RunBlock):
            self._walk_block(stmt.block, stmt)
            if stmt.assign_to:
                self._add(
                    SetDefFact(
                        stmt, span_of(stmt), self._next(), stmt.assign_to,
                        "select",
                    ),
                    model.set_defs,
                )
                self.vertex_sets.add(stmt.assign_to)
            for fragment in stmt.block.fragments:
                shadows = None
                if fragment.into in self.vertex_sets and fragment.into != stmt.assign_to:
                    shadows = "vertex set"
                elif fragment.into in self.tables:
                    shadows = "table"
                self._add(
                    IntoFact(
                        fragment, span_of(fragment) or span_of(stmt),
                        self._next(), fragment.into, shadows,
                    ),
                    model.intos,
                )
                self.tables.add(fragment.into)
                # INTO names double as FROM-able sets (Figure 3 idiom).
                self.vertex_sets.add(fragment.into)
        elif isinstance(stmt, GlobalAccumUpdate):
            env = self._type_env()
            fact = AccumWriteFact(
                stmt, span_of(stmt), self._next(), stmt.name, True, stmt.op,
                stmt.expr, "top", stmt.name in self.global_accums,
                stmt.name in self.vertex_accums, None, False, env,
            )
            self._add(fact, model.writes)
            self._walk_expr(stmt.expr, "top", None, fallback_span=span_of(stmt))
        elif isinstance(stmt, While):
            cond_reads_accum = any(
                isinstance(node, (GlobalAccumRef, VertexAccumRef))
                for node in stmt.cond.walk()
            )
            cond_set_names = {
                node.name
                for node in stmt.cond.walk()
                if isinstance(node, NameRef) and node.name in self.vertex_sets
            }
            body_assigned = _assigned_set_names(stmt.body)
            self._add(
                WhileFact(
                    stmt, span_of(stmt), self._next(),
                    stmt.limit is not None, cond_reads_accum,
                    cond_set_names, body_assigned,
                ),
                model.whiles,
            )
            self._walk_expr(stmt.cond, "cond", None, fallback_span=span_of(stmt))
            self._walk_statements(stmt.body)
        elif isinstance(stmt, Foreach):
            shadows = None
            if stmt.var in self.vertex_sets:
                shadows = "vertex set"
            elif stmt.var in self.model.params:
                shadows = "parameter"
            self._add(
                ForeachVarFact(
                    stmt, span_of(stmt), self._next(), stmt.var, shadows
                ),
                model.foreach_vars,
            )
            self._walk_expr(
                stmt.collection, "cond", None, fallback_span=span_of(stmt)
            )
            self.loop_vars.append(stmt.var)
            try:
                self._walk_statements(stmt.body)
            finally:
                self.loop_vars.pop()
        elif isinstance(stmt, If):
            self._walk_expr(stmt.cond, "cond", None, fallback_span=span_of(stmt))
            self._walk_statements(stmt.then)
            self._walk_statements(stmt.otherwise)
        elif isinstance(stmt, Print):
            for item in stmt.items:
                if isinstance(item, PrintSetProjection):
                    self._add(
                        SetUseFact(
                            item, span_of(stmt), self._next(), item.set_name,
                            "print", item.set_name in self.vertex_sets,
                        ),
                        model.set_uses,
                    )
                    for col in item.columns:
                        self._walk_expr(
                            col.expr, "print", None,
                            fallback_span=span_of(stmt),
                            extra_names={item.set_name},
                        )
                else:
                    self._walk_expr(
                        item.expr, "print", None, fallback_span=span_of(stmt)
                    )
        elif isinstance(stmt, Return):
            self._walk_expr(stmt.expr, "return", None, fallback_span=span_of(stmt))
        else:
            inner = getattr(stmt, "statements", None)
            if inner is not None:
                self._walk_statements(inner)

    # ------------------------------------------------------------------
    def _walk_block(self, block: SelectBlock, stmt: Statement) -> None:
        model = self.model
        block_fact = BlockFact(
            stmt, span_of(stmt), self._next(), block,
            block.pattern.has_kleene(),
        )
        self._add(block_fact, model.blocks)
        self._walk_pattern(block.pattern, stmt)
        pattern_vars = {v for v in block.pattern.variables() if v}
        for expr in _block_exprs(block):
            self._walk_expr(
                expr, "block", block_fact, fallback_span=span_of(stmt),
                extra_names=pattern_vars,
            )
        locals_types: Dict[str, str] = {}
        local_names: Set[str] = set()
        self._walk_acc_statements(
            block.accum, "accum", block_fact, stmt, pattern_vars,
            locals_types, local_names, nested=False,
        )
        locals_types = {}
        local_names = set()
        self._walk_acc_statements(
            block.post_accum, "post_accum", block_fact, stmt, pattern_vars,
            locals_types, local_names, nested=False,
        )

    def _walk_acc_statements(
        self,
        statements,
        context: str,
        block_fact: BlockFact,
        stmt: Statement,
        pattern_vars: Set[str],
        locals_types: Dict[str, str],
        local_names: Set[str],
        nested: bool,
    ) -> None:
        for acc in statements:
            if isinstance(acc, AccumUpdate):
                name = acc.target.name
                is_global = acc.target.is_global
                env = self._type_env(locals_types, pattern_vars)
                fact = AccumWriteFact(
                    acc, span_of(acc) or span_of(stmt), self._next(), name,
                    is_global, acc.op, acc.expr, context,
                    name in self.global_accums, name in self.vertex_accums,
                    block_fact.block, nested, env,
                )
                self._add(fact, self.model.writes)
                block_fact.writes.append(fact)
                self._walk_expr(
                    acc.expr, context, block_fact,
                    fallback_span=span_of(acc) or span_of(stmt),
                    extra_names=pattern_vars | local_names,
                )
            elif isinstance(acc, LocalAssign):
                self._walk_expr(
                    acc.expr, context, block_fact,
                    fallback_span=span_of(acc) or span_of(stmt),
                    extra_names=pattern_vars | local_names,
                )
                local_names.add(acc.name)
                if acc.type_name:
                    locals_types[acc.name] = acc.type_name
            elif isinstance(acc, AttributeUpdate):
                self._walk_expr(
                    acc.expr, context, block_fact,
                    fallback_span=span_of(acc) or span_of(stmt),
                    extra_names=pattern_vars | local_names,
                )
            elif isinstance(acc, AccumIf):
                self._walk_expr(
                    acc.cond, context, block_fact,
                    fallback_span=span_of(acc) or span_of(stmt),
                    extra_names=pattern_vars | local_names,
                )
                for branch in (acc.then, acc.otherwise):
                    self._walk_acc_statements(
                        branch, context, block_fact, stmt, pattern_vars,
                        locals_types, local_names, nested=True,
                    )
            elif isinstance(acc, AccumForeach):
                self._walk_expr(
                    acc.collection, context, block_fact,
                    fallback_span=span_of(acc) or span_of(stmt),
                    extra_names=pattern_vars | local_names,
                )
                local_names.add(acc.var)
                self._walk_acc_statements(
                    acc.body, context, block_fact, stmt, pattern_vars,
                    locals_types, local_names, nested=True,
                )

    def _walk_pattern(self, pattern: Pattern, stmt: Statement) -> None:
        model = self.model
        for chain in pattern.chains:
            if isinstance(chain, TableSource):
                continue
            positions = [chain.source] + [hop.target for hop in chain.hops]
            for spec in positions:
                if spec.name in ("_", "ANY"):
                    continue
                is_set = spec.name in self.vertex_sets
                if is_set:
                    self._add(
                        SetUseFact(
                            spec, span_of(spec) or span_of(stmt),
                            self._next(), spec.name, "from", True,
                        ),
                        model.set_uses,
                    )
                    continue
                schema_known = (
                    self.schema is not None
                    and self.schema.has_vertex_type(spec.name)
                )
                self._add(
                    PatternPosFact(
                        spec, span_of(spec) or span_of(stmt), self._next(),
                        spec.name, False, schema_known,
                    ),
                    model.pattern_positions,
                )
            if self.schema is not None:
                for hop in chain.hops:
                    for symbol in symbols(hop.darpe.ast):
                        if symbol.edge_type is None:
                            continue
                        self._add(
                            EdgeTypeFact(
                                hop, span_of(hop) or span_of(stmt),
                                self._next(), symbol.edge_type,
                                hop.darpe.text,
                                self.schema.has_edge_type(symbol.edge_type),
                            ),
                            model.edge_types,
                        )

    # ------------------------------------------------------------------
    def _walk_expr(
        self,
        expr: Expr,
        context: str,
        block_fact: Optional[BlockFact],
        fallback_span: Optional[Span] = None,
        extra_names: Optional[Set[str]] = None,
    ) -> None:
        """Record accumulator reads, and — at top level — bare name uses."""
        model = self.model
        extra = extra_names or set()
        for node in expr.walk():
            if isinstance(node, GlobalAccumRef):
                fact = AccumReadFact(
                    node, span_of(node) or fallback_span, self._next(),
                    node.name, True, node.primed, context,
                    node.name in self.global_accums,
                    node.name in self.vertex_accums,
                    block_fact.block if block_fact else None,
                )
                self._add(fact, model.reads)
                if block_fact is not None:
                    block_fact.reads.append(fact)
            elif isinstance(node, VertexAccumRef):
                fact = AccumReadFact(
                    node, span_of(node) or fallback_span, self._next(),
                    node.name, False, node.primed, context,
                    node.name in self.global_accums,
                    node.name in self.vertex_accums,
                    block_fact.block if block_fact else None,
                )
                self._add(fact, model.reads)
                if block_fact is not None:
                    block_fact.reads.append(fact)
            elif isinstance(node, NameRef) and context in (
                "top", "cond", "print", "return"
            ):
                known = (
                    node.name in self.model.params
                    or node.name in self.vertex_sets
                    or node.name in self.tables
                    or node.name in self.loop_vars
                    or node.name in extra
                )
                self._add(
                    NameUseFact(
                        node, span_of(node) or fallback_span, self._next(),
                        node.name, context, known,
                    ),
                    model.name_uses,
                )


def _block_exprs(block: SelectBlock):
    if block.where is not None:
        yield block.where
    for fragment in block.fragments:
        for col in fragment.columns:
            yield col.expr
    yield from block.group_by
    if block.having is not None:
        yield block.having
    for expr, _ in block.order_by:
        yield expr
    if block.limit is not None:
        yield block.limit


def _assigned_set_names(statements: List[Statement]) -> Set[str]:
    """Vertex-set names (re)assigned anywhere in a statement list."""
    names: Set[str] = set()
    for stmt in statements:
        if isinstance(stmt, (SetAssign, SetOpAssign)):
            names.add(stmt.name)
        elif isinstance(stmt, RunBlock):
            if stmt.assign_to:
                names.add(stmt.assign_to)
            for fragment in stmt.block.fragments:
                names.add(fragment.into)
        elif isinstance(stmt, While):
            names |= _assigned_set_names(stmt.body)
        elif isinstance(stmt, If):
            names |= _assigned_set_names(stmt.then)
            names |= _assigned_set_names(stmt.otherwise)
        elif isinstance(stmt, Foreach):
            names |= _assigned_set_names(stmt.body)
        else:
            inner = getattr(stmt, "statements", None)
            if inner is not None:
                names |= _assigned_set_names(inner)
    return names


def build_model(query: Query, schema=None) -> QueryModel:
    """One analysis model for ``query`` (see module docstring)."""
    return _ModelBuilder(query, schema).build()


def cached_model(query: Query, schema=None) -> QueryModel:
    """The model for ``query``, cached on the query object.

    The ``core.validate`` shim, the ``core.tractable`` shim, certificate
    attachment and ``repro lint``/``repro check`` all want the same
    model; building it once per (query, schema) pair keeps a CLI
    invocation at one walk instead of three.  ``Query.invalidate_analysis``
    drops the cache after a recompile.
    """
    cache = getattr(query, "_analysis_cache", None)
    if cache is not None and cache[0] is schema:
        return cache[1]
    from ..obs import metrics as _obs

    if _obs._ACTIVE is not None:
        # The plan-cache acceptance contract reads this: a warm cache
        # hit must execute with zero analysis re-entry, i.e. this
        # counter stays absent from the request's counter snapshot.
        _obs._ACTIVE.count("analysis.model_builds")
    model = build_model(query, schema)
    try:
        query._analysis_cache = (schema, model)
    except AttributeError:
        pass  # exotic Query subclasses with __slots__ stay uncached
    return model


__all__ = [
    "QueryModel",
    "build_model",
    "cached_model",
    "DeclFact",
    "AccumWriteFact",
    "AccumReadFact",
    "SetDefFact",
    "SetUseFact",
    "PatternPosFact",
    "EdgeTypeFact",
    "BlockFact",
    "WhileFact",
    "ForeachVarFact",
    "IntoFact",
    "NameUseFact",
]
