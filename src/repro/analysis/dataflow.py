"""Worklist fixed-point dataflow over the accumulator def-use CFG.

Three passes over :func:`repro.analysis.cfg.build_cfg`'s graph:

* a **forward** may/must-written analysis per accumulator (the lattice
  is the pair ``(may_written, must_written)`` joined with or/and at
  merges, with ``WHILE`` back-edges re-queued until the fixed point);
* a **backward** liveness analysis where every accumulator is live at
  exit (an accumulator the query never reads may still be the query's
  *output* — ``repro run`` prints final accumulator values), ``=``
  kills and ``+=`` both generates and kills (it reads the old value);
* a **reachability** sweep using the constant-folded edges.

On top of the fixed points sit the finding primitives the flow-sensitive
rules (E030–W034 in :mod:`.rules`) report, and the per-SELECT-block
:class:`~repro.core.tractable.TractabilityCertificate` that the planner
uses to pick the counting engine under ``EngineMode.auto()``.

Everything is memoised on the model (`analyze_dataflow`), so five rules
plus certificate attachment cost one CFG build and one solve.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.exprs import NameRef
from ..core.query import Foreach, If, Statement, While
from ..core.stmts import AttributeUpdate, walk_acc_statements
from ..core.tractable import TractabilityCertificate, TractabilityStatus
from .cfg import CFG, CFGNode, DECL, READ, WRITE, build_cfg
from .model import (
    AccumReadFact,
    AccumWriteFact,
    BlockFact,
    DeclFact,
    QueryModel,
    WhileFact,
    _assigned_set_names,
    _block_exprs,
)

# An accumulator key: (is_global, name).  Vertex accumulators are
# summarised across all vertices — one abstract cell per declaration,
# which is sound for may/must reasoning.
AccKey = Tuple[bool, str]

# Abstract states reported per accumulator (ISSUE wording).
UNWRITTEN = "unwritten"
WRITTEN = "written"
READ_STATE = "read"
LOOP_CARRIED = "loop-carried"


def _decl_key(decl: DeclFact) -> AccKey:
    return (decl.scope == "global", decl.name)


def _fact_key(fact: Any) -> Optional[AccKey]:
    """The accumulator key of a read/write fact, or None if unresolved.

    Unresolved names (undeclared at that point — E001/E002's territory)
    stay out of the dataflow lattice entirely.
    """
    if isinstance(fact, (AccumReadFact, AccumWriteFact)):
        if fact.is_global:
            return (True, fact.name) if fact.declared_global else None
        return (False, fact.name) if fact.declared_vertex else None
    return None


class DataflowResult:
    """Fixed points plus the derived findings, memoised per model."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.converged: bool = True
        self.iterations: int = 0
        self.keys: Set[AccKey] = set()
        # node id -> {key: (may_written, must_written)} at node *entry*.
        self.in_states: Dict[int, Dict[AccKey, Tuple[bool, bool]]] = {}
        # node id -> keys live at node *exit*.
        self.live_out: Dict[int, Set[AccKey]] = {}
        self.reachable: Set[int] = set()
        # Findings consumed by the registered rules.
        self.reads_before_write: List[AccumReadFact] = []
        self.dead_writes: List[AccumWriteFact] = []
        self.loop_invariant_blocks: List[Tuple[BlockFact, While]] = []
        self.nonterminating_whiles: List[WhileFact] = []
        self.unreachable_nodes: List[CFGNode] = []
        # key -> subset of {unwritten, written, read, loop-carried}.
        self.accum_states: Dict[AccKey, Set[str]] = {}

    def state_names(self, key: AccKey) -> List[str]:
        order = [UNWRITTEN, WRITTEN, READ_STATE, LOOP_CARRIED]
        states = self.accum_states.get(key, set())
        return [s for s in order if s in states]


# ----------------------------------------------------------------------
# Forward pass: may/must-written


def _join(states: List[Dict[AccKey, Tuple[bool, bool]]],
          keys: Set[AccKey]) -> Dict[AccKey, Tuple[bool, bool]]:
    if not states:
        return {}
    out: Dict[AccKey, Tuple[bool, bool]] = {}
    for key in keys:
        cells = [s.get(key, (False, False)) for s in states]
        out[key] = (
            any(may for may, _ in cells),
            all(must for _, must in cells),
        )
    return out


def _transfer_forward(node: CFGNode,
                      state: Dict[AccKey, Tuple[bool, bool]]
                      ) -> Dict[AccKey, Tuple[bool, bool]]:
    out = dict(state)
    for kind, fact in node.events:
        if kind == DECL:
            has_init = getattr(fact.node, "initial", None) is not None
            out[_decl_key(fact)] = (has_init, has_init)
        elif kind == WRITE:
            key = _fact_key(fact)
            if key is not None:
                out[key] = (True, True)
    return out


def _solve_forward(result: DataflowResult) -> None:
    cfg = result.cfg
    keys = result.keys
    in_states = result.in_states
    out_states: Dict[int, Dict[AccKey, Tuple[bool, bool]]] = {}
    in_states[cfg.entry.id] = {}
    worklist = [cfg.entry]
    queued = {cfg.entry.id}
    # Each node can be revisited once per lattice step of each key (two
    # boolean components) plus slack for join churn; far above any real
    # query yet a hard stop against a non-monotone bug.
    budget = max(64, 8 * len(cfg.nodes) * (len(keys) + 1))
    while worklist:
        result.iterations += 1
        if result.iterations > budget:
            result.converged = False
            break
        node = worklist.pop(0)
        queued.discard(node.id)
        preds = [p for p, _ in node.preds]
        if node is not cfg.entry:
            known = [
                out_states[p.id] for p in preds if p.id in out_states
            ]
            in_states[node.id] = _join(known, keys) if known else {}
        new_out = _transfer_forward(node, in_states.get(node.id, {}))
        if out_states.get(node.id) != new_out:
            out_states[node.id] = new_out
            for succ, _ in node.succs:
                if succ.id not in queued:
                    worklist.append(succ)
                    queued.add(succ.id)


# ----------------------------------------------------------------------
# Backward pass: liveness


def _transfer_backward(node: CFGNode, live: Set[AccKey]) -> Set[AccKey]:
    out = set(live)
    for kind, fact in reversed(node.events):
        if kind == WRITE:
            key = _fact_key(fact)
            if key is None:
                continue
            if fact.op == "=":
                out.discard(key)
            else:
                out.add(key)  # += reads the old value
        elif kind == READ:
            key = _fact_key(fact)
            if key is not None:
                out.add(key)
        elif kind == DECL:
            out.discard(_decl_key(fact))
    return out


def _solve_backward(result: DataflowResult) -> None:
    cfg = result.cfg
    all_keys = set(result.keys)
    live_out = result.live_out
    live_in: Dict[int, Set[AccKey]] = {}
    live_out[cfg.exit.id] = set(all_keys)
    worklist = [cfg.exit]
    queued = {cfg.exit.id}
    budget = max(64, 8 * len(cfg.nodes) * (len(all_keys) + 1))
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > budget:
            result.converged = False
            break
        node = worklist.pop(0)
        queued.discard(node.id)
        if node is not cfg.exit:
            live_out[node.id] = set()
            for succ, _ in node.succs:
                live_out[node.id] |= live_in.get(succ.id, set())
            if not node.succs:
                # Dangling node (e.g. tail of an unreachable region):
                # assume everything live, never report against it.
                live_out[node.id] = set(all_keys)
        new_in = _transfer_backward(node, live_out[node.id])
        if live_in.get(node.id) != new_in:
            live_in[node.id] = new_in
            for pred, _ in node.preds:
                if pred.id not in queued:
                    worklist.append(pred)
                    queued.add(pred.id)
    result.iterations += iterations


# ----------------------------------------------------------------------
# Findings


def _collect_findings(result: DataflowResult, model: QueryModel) -> None:
    cfg = result.cfg
    result.reachable = cfg.reachable()
    keys_written_anywhere: Set[AccKey] = set()
    keys_init: Set[AccKey] = set()
    for node in cfg.nodes:
        for kind, fact in node.events:
            if kind == WRITE:
                key = _fact_key(fact)
                if key is not None:
                    keys_written_anywhere.add(key)
            elif kind == DECL and getattr(fact.node, "initial", None) is not None:
                keys_init.add(_decl_key(fact))

    for node in cfg.nodes:
        if node.id not in result.reachable:
            continue
        # E030: walk the node forward from its entry state.
        state = dict(result.in_states.get(node.id, {}))
        for kind, fact in node.events:
            if kind == READ:
                key = _fact_key(fact)
                if (
                    key is not None
                    and not fact.primed
                    and key in keys_written_anywhere
                    and key not in keys_init
                    and not state.get(key, (False, False))[0]
                ):
                    result.reads_before_write.append(fact)
            elif kind == WRITE:
                key = _fact_key(fact)
                if key is not None:
                    state[key] = (True, True)
            elif kind == DECL:
                has_init = getattr(fact.node, "initial", None) is not None
                state[_decl_key(fact)] = (has_init, has_init)
        # W031: walk the node backward from its exit liveness.
        live = set(result.live_out.get(node.id, result.keys))
        for kind, fact in reversed(node.events):
            if kind == WRITE:
                key = _fact_key(fact)
                if key is None:
                    continue
                if key not in live:
                    result.dead_writes.append(fact)
                if fact.op == "=":
                    live.discard(key)
                else:
                    live.add(key)
            elif kind == READ:
                key = _fact_key(fact)
                if key is not None:
                    live.add(key)
        # Keep findings in source order regardless of walk order.
    result.reads_before_write.sort(key=lambda f: f.seq)
    result.dead_writes.sort(key=lambda f: f.seq)

    # W034: region entries only — an unreachable node whose predecessors
    # are all reachable (or that has none: a branch the builder proved
    # dead), so nested statements do not cascade one diagnostic each.
    for node in cfg.nodes:
        if node.kind in ("entry", "exit") or node.id in result.reachable:
            continue
        preds = [p for p, _ in node.preds]
        if not preds or any(p.id in result.reachable for p in preds):
            result.unreachable_nodes.append(node)

    _collect_loop_findings(result, model)
    _summarise_states(result)


def _stmts_in(statements: List[Statement]) -> Set[int]:
    """ids of every statement nested anywhere under ``statements``."""
    found: Set[int] = set()
    for stmt in statements:
        found.add(id(stmt))
        if isinstance(stmt, While):
            found |= _stmts_in(stmt.body)
        elif isinstance(stmt, Foreach):
            found |= _stmts_in(stmt.body)
        elif isinstance(stmt, If):
            found |= _stmts_in(stmt.then)
            found |= _stmts_in(stmt.otherwise)
        else:
            inner = getattr(stmt, "statements", None)
            if inner is not None:
                found |= _stmts_in(inner)
    return found


def _block_name_refs(block) -> Set[str]:
    """Every bare identifier a SELECT block's expressions mention."""
    names: Set[str] = set()

    def scan(expr) -> None:
        for node in expr.walk():
            if isinstance(node, NameRef):
                names.add(node.name)

    for expr in _block_exprs(block):
        scan(expr)
    for acc in walk_acc_statements(list(block.accum) + list(block.post_accum)):
        for attr in ("expr", "cond", "collection"):
            sub = getattr(acc, attr, None)
            if sub is not None:
                scan(sub)
    return names


def _block_source_sets(block) -> Set[str]:
    from ..core.pattern import TableSource

    names: Set[str] = set()
    for chain in block.pattern.chains:
        if isinstance(chain, TableSource):
            continue
        for spec in [chain.source] + [hop.target for hop in chain.hops]:
            names.add(spec.name)
    return names


def _collect_loop_findings(result: DataflowResult, model: QueryModel) -> None:
    writes_by_owner: Dict[int, List[AccumWriteFact]] = {}
    for w in model.writes:
        if w.owner is not None:
            writes_by_owner.setdefault(id(w.owner), []).append(w)
    blocks_by_owner = {id(b.owner): b for b in model.blocks if b.owner is not None}
    whiles_by_owner = {id(wf.owner): wf for wf in model.whiles if wf.owner is not None}

    def loop_written_keys(body: List[Statement]) -> Set[AccKey]:
        body_ids = _stmts_in(body)
        keys: Set[AccKey] = set()
        for owner_id, facts in writes_by_owner.items():
            if owner_id in body_ids:
                for w in facts:
                    key = _fact_key(w)
                    if key is not None:
                        keys.add(key)
        return keys

    def body_has_attribute_update(body: List[Statement]) -> bool:
        body_ids = _stmts_in(body)
        for block_fact in model.blocks:
            if block_fact.owner is None or id(block_fact.owner) not in body_ids:
                continue
            block = block_fact.block
            for acc in walk_acc_statements(
                list(block.accum) + list(block.post_accum)
            ):
                if isinstance(acc, AttributeUpdate):
                    return True
        return False

    # --- E033: WHILE whose condition can never change -----------------
    for wf in model.whiles:
        stmt = wf.node
        if wf.has_limit:
            continue
        cond_keys: Set[AccKey] = set()
        for read in model.reads:
            if read.owner is stmt and read.context == "cond":
                key = _fact_key(read)
                if key is not None:
                    cond_keys.add(key)
        if not cond_keys:
            continue  # W020's territory (no accumulator in the condition)
        if wf.cond_set_names & wf.body_assigned_sets:
            continue  # set-driven convergence can still terminate it
        if cond_keys & loop_written_keys(stmt.body):
            continue
        result.nonterminating_whiles.append(wf)

    # --- W032: loop-invariant SELECT block ----------------------------
    def visit(statements: List[Statement], while_stack: List[While],
              foreach_vars: Set[str]) -> None:
        for stmt in statements:
            if isinstance(stmt, While):
                visit(stmt.body, while_stack + [stmt], foreach_vars)
            elif isinstance(stmt, Foreach):
                visit(stmt.body, while_stack, foreach_vars | {stmt.var})
            elif isinstance(stmt, If):
                visit(stmt.then, while_stack, foreach_vars)
                visit(stmt.otherwise, while_stack, foreach_vars)
            elif id(stmt) in blocks_by_owner and while_stack:
                _check_invariant(
                    blocks_by_owner[id(stmt)], while_stack[-1], foreach_vars
                )
            else:
                inner = getattr(stmt, "statements", None)
                if inner is not None:
                    visit(inner, while_stack, foreach_vars)

    def _check_invariant(block_fact: BlockFact, loop: While,
                         foreach_vars: Set[str]) -> None:
        block = block_fact.block
        if body_has_attribute_update(loop.body):
            return  # graph mutation: nothing is invariant
        for write in block_fact.writes:
            if write.op != "=":
                return  # += side effects accumulate across iterations
        written = loop_written_keys(loop.body)
        for read in block_fact.reads:
            key = _fact_key(read)
            if key is None or key in written:
                return
        loop_sets = _assigned_set_names(loop.body)
        if _block_source_sets(block) & loop_sets:
            return
        if _block_name_refs(block) & foreach_vars:
            return  # varies with an enclosing FOREACH variable
        result.loop_invariant_blocks.append((block_fact, loop))

    visit(model.query.statements, [], set())


def _summarise_states(result: DataflowResult) -> None:
    cfg = result.cfg
    loop_nodes: Set[int] = set()
    for loop in cfg.loops:
        for node in loop.body_nodes:
            loop_nodes.add(node.id)
        loop_nodes.add(loop.head.id)
    for key in result.keys:
        states: Set[str] = set()
        for node in cfg.nodes:
            if node.id not in result.reachable:
                continue
            in_state = result.in_states.get(node.id, {})
            may, _must = in_state.get(key, (False, False))
            for kind, fact in node.events:
                if _fact_key(fact) != key and (
                    kind != DECL or _decl_key(fact) != key
                ):
                    continue
                if kind == READ:
                    states.add(READ_STATE)
                    if not may:
                        states.add(UNWRITTEN)
                elif kind == WRITE:
                    states.add(WRITTEN)
                    if node.id in loop_nodes:
                        states.add(LOOP_CARRIED)
        result.accum_states[key] = states


# ----------------------------------------------------------------------
# Certificates


def block_certificates(
    model: QueryModel,
) -> List[Tuple[BlockFact, TractabilityCertificate]]:
    """One :class:`TractabilityCertificate` per SELECT block.

    The classification mirrors the runtime guard in
    ``SelectBlock._check_tractability``: only ACCUM-clause writes see
    per-path multiplicities, so only they can make a Kleene-starred
    pattern intractable (POST_ACCUM runs once per distinct vertex).
    """
    decls: Dict[AccKey, DeclFact] = {}
    for d in model.decls:
        decls.setdefault(_decl_key(d), d)

    out: List[Tuple[BlockFact, TractabilityCertificate]] = []
    for block_fact in model.blocks:
        out.append((block_fact, _certify_block(block_fact, decls)))
    return out


def _certify_block(
    block_fact: BlockFact, decls: Dict[AccKey, DeclFact]
) -> TractabilityCertificate:
    if not block_fact.has_kleene:
        return TractabilityCertificate(
            TractabilityStatus.TRACTABLE,
            ("FROM pattern has no Kleene star: the binding table is "
             "bounded by the graph, not the path count",),
        )
    accum_writes = [
        w for w in block_fact.writes if w.context == "accum"
    ]
    if not accum_writes:
        return TractabilityCertificate(
            TractabilityStatus.TRACTABLE,
            ("Kleene-starred pattern feeds no ACCUM-clause accumulator: "
             "multiplicities are never materialised per path",),
        )
    witnesses: List[str] = []
    for write in accum_writes:
        key = _fact_key(write)
        sigil = "@@" if write.is_global else "@"
        if key is None:
            return TractabilityCertificate(
                TractabilityStatus.UNKNOWN,
                (f"{sigil}{write.name} is not declared; its combine "
                 f"order cannot be classified",),
            )
        decl = decls.get(key)
        if decl is None:
            return TractabilityCertificate(
                TractabilityStatus.UNKNOWN,
                (f"{sigil}{write.name} has no visible declaration",),
            )
        if decl.order_dependent is None:
            return TractabilityCertificate(
                TractabilityStatus.UNKNOWN,
                (f"{sigil}{write.name}: {decl.type_text} could not be "
                 f"probed for order-invariance",),
            )
        if decl.order_dependent:
            return TractabilityCertificate(
                TractabilityStatus.ENUMERATION_REQUIRED,
                (f"order-dependent accumulator {sigil}{write.name} "
                 f"({decl.type_text}) accumulates across a Kleene star — "
                 f"outside the Section 7 tractable class",),
            )
        witnesses.append(
            f"{sigil}{write.name} ({decl.type_text}) is order-invariant"
        )
    return TractabilityCertificate(
        TractabilityStatus.TRACTABLE,
        tuple(witnesses) + (
            "every accumulator fed by the Kleene star commutes, so the "
            "compressed binding table suffices",
        ),
    )


# ----------------------------------------------------------------------
# Entry point


def analyze_dataflow(model: QueryModel) -> DataflowResult:
    """The full dataflow result for a model, memoised on the model."""
    cached = getattr(model, "_dataflow", None)
    if cached is not None:
        return cached
    cfg = build_cfg(model)
    result = DataflowResult(cfg)
    result.keys = {_decl_key(d) for d in model.decls}
    _solve_forward(result)
    _solve_backward(result)
    _collect_findings(result, model)
    model._dataflow = result
    return result


__all__ = [
    "AccKey",
    "DataflowResult",
    "analyze_dataflow",
    "block_certificates",
    "UNWRITTEN",
    "WRITTEN",
    "READ_STATE",
    "LOOP_CARRIED",
]
