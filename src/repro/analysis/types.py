"""Expression type inference for the accumulator lattice.

A deliberately shallow, *conservative* inference: every expression maps
to a scalar family name (``"INT"``, ``"FLOAT"``, ``"STRING"``,
``"BOOL"``, ``"VERTEX"``, ...) or ``None`` for "unknown".  Rules only
fire when two *known* types land in different families, so dynamic
constructs the analyzer cannot see through never produce noise.

The interesting consumers are the accumulator-input checks: the ``+=``
operator is the paper's polymorphic fold (Section 3), and each
accumulator kind constrains what it folds —

* ``SumAccum<INT> += "a"`` mixes the numeric and string families
  (GSQL-E101);
* ``MapAccum<STRING, SumAccum<FLOAT>>`` fed ``(v.age -> x)`` mis-keys
  the map (GSQL-E102);
* ``HeapAccum<Pair>`` fed a tuple of the wrong arity or field types
  cannot be ordered (GSQL-E103).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.acctypes import (
    AccumTypeInfo,
    COLLECTION_KINDS,
    SCALAR_INPUT_KINDS,
)
from ..core.exprs import (
    AggCall,
    ArrowExpr,
    AttrRef,
    Binary,
    Call,
    CaseExpr,
    Expr,
    GlobalAccumRef,
    Literal,
    Method,
    NameRef,
    TupleExpr,
    Unary,
    VertexAccumRef,
)

#: Scalar families: types within one family mix freely, across families
#: they do not.
_FAMILIES = {
    "INT": "numeric",
    "UINT": "numeric",
    "FLOAT": "numeric",
    "DOUBLE": "numeric",
    "DATETIME": "numeric",
    "TIMESTAMP": "numeric",
    "DATE": "numeric",
    "STRING": "string",
    "BOOL": "bool",
    "VERTEX": "vertex",
    "EDGE": "edge",
}

_COMPARISONS = {"==", "!=", "<>", "<", "<=", ">", ">=", "IN", "NOT IN"}


def family(type_name: Optional[str]) -> Optional[str]:
    """The mixing family of a scalar type name (None = unknown)."""
    if type_name is None:
        return None
    return _FAMILIES.get(type_name.upper())


def compatible(expected: Optional[str], actual: Optional[str]) -> bool:
    """Whether ``actual`` may flow into a slot declared ``expected``.

    Unknown on either side is compatible (benefit of the doubt); known
    types are compatible exactly when their families coincide.
    """
    exp_family, act_family = family(expected), family(actual)
    if exp_family is None or act_family is None:
        return True
    return exp_family == act_family


class TypeEnv:
    """Name-to-type bindings visible to an expression.

    ``accums`` maps ``(is_global, name)`` to the declared
    :class:`AccumTypeInfo`; ``names`` maps parameters and typed locals to
    scalar type names; ``vertex_vars`` are pattern aliases and FOREACH
    loop variables known to range over vertices.
    """

    def __init__(
        self,
        accums: Optional[Dict[Tuple[bool, str], AccumTypeInfo]] = None,
        names: Optional[Dict[str, str]] = None,
        vertex_vars: Optional[set] = None,
    ):
        self.accums = accums or {}
        self.names = names or {}
        self.vertex_vars = vertex_vars or set()

    def accum_info(self, is_global: bool, name: str) -> Optional[AccumTypeInfo]:
        return self.accums.get((is_global, name))


def accum_value_type(info: Optional[AccumTypeInfo]) -> Optional[str]:
    """The scalar type reading an accumulator yields, when determinable."""
    if info is None:
        return None
    kind = info.kind
    if kind == "AvgAccum":
        return "FLOAT"
    if kind in ("OrAccum", "AndAccum"):
        return "BOOL"
    if kind in ("SumAccum", "MinAccum", "MaxAccum"):
        return info.element or ("FLOAT" if kind == "SumAccum" else None)
    return None  # collections/maps/heaps read as containers


def infer_type(expr: Expr, env: TypeEnv) -> Optional[str]:
    """Best-effort scalar type of ``expr`` (None = unknown/container)."""
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, bool):
            return "BOOL"
        if isinstance(value, int):
            return "INT"
        if isinstance(value, float):
            return "FLOAT"
        if isinstance(value, str):
            return "STRING"
        return None
    if isinstance(expr, NameRef):
        if expr.name in env.names:
            declared = env.names[expr.name].upper()
            if declared.startswith("VERTEX"):
                return "VERTEX"
            return declared
        if expr.name in env.vertex_vars:
            return "VERTEX"
        return None
    if isinstance(expr, GlobalAccumRef):
        return accum_value_type(env.accum_info(True, expr.name))
    if isinstance(expr, VertexAccumRef):
        return accum_value_type(env.accum_info(False, expr.name))
    if isinstance(expr, Unary):
        if expr.op == "NOT":
            return "BOOL"
        return infer_type(expr.operand, env)
    if isinstance(expr, Binary):
        if expr.op in ("AND", "OR") or expr.op in _COMPARISONS:
            return "BOOL"
        left = infer_type(expr.left, env)
        right = infer_type(expr.right, env)
        if expr.op == "+" and (family(left) == "string" or family(right) == "string"):
            return "STRING"
        if expr.op == "/":
            return "FLOAT"
        if family(left) == "numeric" and family(right) == "numeric":
            if "FLOAT" in (left, right) or "DOUBLE" in (left, right):
                return "FLOAT"
            return left
        if left is not None and left == right:
            return left
        return None
    if isinstance(expr, AggCall):
        if expr.func == "count":
            return "INT"
        if expr.func == "avg":
            return "FLOAT"
        if expr.arg is not None:
            return infer_type(expr.arg, env)
        return None
    if isinstance(expr, Method):
        if expr.name.lower() in ("size", "count"):
            return "INT"
        if expr.name.lower() in ("contains",):
            return "BOOL"
        return None
    if isinstance(expr, CaseExpr):
        branch_types = {infer_type(value, env) for _, value in expr.whens}
        if expr.default is not None:
            branch_types.add(infer_type(expr.default, env))
        branch_types.discard(None)
        if len(branch_types) == 1:
            return branch_types.pop()
        return None
    if isinstance(expr, (TupleExpr, ArrowExpr, Call, AttrRef)):
        # Tuples/arrows are structural (handled by the rules directly);
        # attribute types would need per-alias vertex-type tracking.
        return None
    return None


# ----------------------------------------------------------------------
# Accumulator-input checks (shared by the E101/E102/E103 rules)
# ----------------------------------------------------------------------
def check_scalar_input(
    info: AccumTypeInfo, expr: Expr, env: TypeEnv
) -> Optional[str]:
    """A mismatch message when ``expr`` cannot feed a scalar-input
    accumulator of type ``info`` (None = fine)."""
    expected = info.element
    if expected is None:
        if info.kind in ("OrAccum", "AndAccum"):
            expected = "BOOL"
        elif info.kind == "AvgAccum":
            expected = None  # any numeric; flag only string/bool below
    actual = infer_type(expr, env)
    if isinstance(expr, (TupleExpr, ArrowExpr)):
        return (
            f"{info.describe()} folds scalar inputs but receives a "
            f"{'tuple' if isinstance(expr, TupleExpr) else 'key->value pair'}"
        )
    if info.kind in ("SumAccum", "AvgAccum") and expected is None:
        # Default SumAccum/AvgAccum element is numeric.
        if family(actual) in ("string", "bool"):
            return (
                f"{info.describe()} accumulates numbers but receives a "
                f"{family(actual)} value"
            )
        return None
    if not compatible(expected, actual):
        return (
            f"{info.describe()} accumulates {family(expected)} values "
            f"but receives a {family(actual)} value"
        )
    return None


def check_collection_input(
    info: AccumTypeInfo, expr: Expr, env: TypeEnv
) -> Optional[str]:
    """Element-type mismatch for Set/Bag/List/Array inputs (None = fine)."""
    actual = infer_type(expr, env)
    if not compatible(info.element, actual):
        return (
            f"{info.describe()} collects {family(info.element)} elements "
            f"but receives a {family(actual)} value"
        )
    return None


def check_map_input(
    info: AccumTypeInfo, expr: Expr, env: TypeEnv
) -> Optional[str]:
    """Key/value mismatch for MapAccum ``+=`` inputs (None = fine)."""
    if isinstance(expr, ArrowExpr):
        keys, values = expr.keys, expr.values
    elif isinstance(expr, TupleExpr) and len(expr.items) == 2:
        keys, values = [expr.items[0]], [expr.items[1]]
    else:
        actual = infer_type(expr, env)
        if actual is not None:
            return (
                f"{info.describe()} needs a (key -> value) input but "
                f"receives a bare {family(actual)} value"
            )
        return None  # opaque expression: may be a map merge
    for key in keys:
        key_type = infer_type(key, env)
        if not compatible(info.key, key_type):
            return (
                f"{info.describe()} keys are {family(info.key)} but the "
                f"input key is a {family(key_type)} value"
            )
    declared_value = info.value
    if isinstance(declared_value, AccumTypeInfo):
        nested = declared_value
        for value in values:
            if nested.kind in SCALAR_INPUT_KINDS:
                message = check_scalar_input(nested, value, env)
            elif nested.kind in COLLECTION_KINDS:
                message = check_collection_input(nested, value, env)
            else:
                message = None
            if message:
                return f"map value mismatch: {message}"
    elif isinstance(declared_value, str):
        for value in values:
            value_type = infer_type(value, env)
            if not compatible(declared_value, value_type):
                return (
                    f"{info.describe()} values are {family(declared_value)} "
                    f"but the input value is a {family(value_type)} value"
                )
    return None


def check_heap_input(
    info: AccumTypeInfo, expr: Expr, env: TypeEnv
) -> Optional[str]:
    """Arity/field-type mismatch for HeapAccum ``+=`` inputs."""
    fields: List[Tuple[str, str]] = info.tuple_fields or []
    if not fields:
        return None
    if isinstance(expr, Call) and expr.name == info.tuple_name:
        args = expr.args
    elif isinstance(expr, TupleExpr):
        args = expr.items
    else:
        actual = infer_type(expr, env)
        if actual is not None:
            return (
                f"{info.describe()} collects {info.tuple_name} tuples but "
                f"receives a bare {family(actual)} value"
            )
        return None
    if len(args) != len(fields):
        return (
            f"{info.tuple_name} has {len(fields)} fields but the input "
            f"supplies {len(args)}"
        )
    for arg, (fname, ftype) in zip(args, fields):
        arg_type = infer_type(arg, env)
        if not compatible(ftype, arg_type):
            return (
                f"{info.tuple_name}.{fname} is {ftype} but receives a "
                f"{family(arg_type)} value"
            )
    return None


def check_accum_input(
    info: Optional[AccumTypeInfo], expr: Expr, env: TypeEnv
) -> Optional[Tuple[str, str]]:
    """Dispatch an ``+=`` input check; returns ``(code, message)``."""
    if info is None:
        return None
    if info.kind in SCALAR_INPUT_KINDS:
        message = check_scalar_input(info, expr, env)
        return ("GSQL-E101", message) if message else None
    if info.kind in COLLECTION_KINDS:
        message = check_collection_input(info, expr, env)
        return ("GSQL-E101", message) if message else None
    if info.kind == "MapAccum":
        message = check_map_input(info, expr, env)
        return ("GSQL-E102", message) if message else None
    if info.kind == "HeapAccum":
        message = check_heap_input(info, expr, env)
        return ("GSQL-E103", message) if message else None
    return None


__all__ = [
    "TypeEnv",
    "family",
    "compatible",
    "infer_type",
    "accum_value_type",
    "check_accum_input",
    "check_scalar_input",
    "check_collection_input",
    "check_map_input",
    "check_heap_input",
]
