"""Diagnostics: what the analyzer reports and how it is rendered.

Every finding is a :class:`Diagnostic` — a stable rule code
(``GSQL-E001``, ``GSQL-W012``, ...), a severity, a human message and an
optional :class:`~repro.core.span.Span` locating it in the query text.
When the source text is available a diagnostic renders as a
compiler-style excerpt with a caret underline::

    queries.gsql:7:13: error[GSQL-E001]: @@total updated but never declared
      |
    7 |       ACCUM @@total += 1
      |             ^^^^^^^

Inline suppressions use ``// lint: disable=GSQL-W012`` (or a
comma-separated list) on the offending line or the line just above it;
``// lint: disable-file=CODE`` silences a code for the whole text.
"""

from __future__ import annotations

import enum
import re
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.span import Span


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering puts errors above warnings."""

    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return "error" if self is Severity.ERROR else "warning"


class Diagnostic:
    """One analyzer finding.

    ``seq`` is the emission sequence number the analyzer assigns; it
    keeps output deterministic for programmatically built queries whose
    nodes carry no spans.
    """

    __slots__ = ("code", "severity", "message", "span", "rule_name", "seq")

    def __init__(
        self,
        code: str,
        severity: Severity,
        message: str,
        span: Optional[Span] = None,
        rule_name: str = "",
        seq: int = 0,
    ):
        self.code = code
        self.severity = severity
        self.message = message
        self.span = span
        self.rule_name = rule_name
        self.seq = seq

    # ------------------------------------------------------------------
    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def sort_key(self) -> Tuple[int, int, str, int]:
        line = self.span.line if self.span is not None else 1 << 30
        column = self.span.column if self.span is not None else 0
        return (line, column, self.code, self.seq)

    def location(self) -> str:
        if self.span is None:
            return ""
        return f"{self.span.line}:{self.span.column}"

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "rule": self.rule_name,
        }
        if self.span is not None:
            data["line"] = self.span.line
            data["column"] = self.span.column
            data["end_line"] = self.span.end_line
            data["end_column"] = self.span.end_column
        return data

    def render(self, source: Optional[str] = None, filename: str = "<query>") -> str:
        """Compiler-style text: header line plus a caret excerpt when the
        source text and span are available."""
        where = f"{filename}:{self.location()}: " if self.span else f"{filename}: "
        header = f"{where}{self.severity.label}[{self.code}]: {self.message}"
        excerpt = caret_excerpt(source, self.span) if source else ""
        return header + (("\n" + excerpt) if excerpt else "")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Diagnostic({self.code}, {self.message!r}, {self.location() or 'nospan'})"


def caret_excerpt(source: Optional[str], span: Optional[Span]) -> str:
    """The source line(s) a span covers, caret-underlined.

    Multi-line spans underline from the start column to the end of the
    first line only — enough to anchor the eye without quoting the whole
    construct.
    """
    if source is None or span is None:
        return ""
    lines = source.splitlines()
    if not 1 <= span.line <= len(lines):
        return ""
    text = lines[span.line - 1]
    gutter = str(span.line)
    pad = " " * len(gutter)
    start = max(span.column - 1, 0)
    if span.end_line == span.line:
        width = max(span.end_column - span.column, 1)
    else:
        width = max(len(text) - start, 1)
    width = min(width, max(len(text) - start, 1))
    underline = " " * start + "^" * width
    return f"{pad} |\n{gutter} | {text}\n{pad} | {underline}"


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------
_SUPPRESS_RE = re.compile(
    r"//\s*lint:\s*disable(?P<file>-file)?\s*=\s*(?P<codes>[A-Za-z0-9_,\s-]+)"
)


def collect_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and file-level suppressed rule codes in ``source``.

    A line-level suppression applies to its own line and to the line
    directly below it (so it can sit on its own comment line above the
    flagged statement).
    """
    per_line: Dict[int, Set[str]] = {}
    file_level: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = {c.strip() for c in match.group("codes").split(",") if c.strip()}
        if match.group("file"):
            file_level |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
            per_line.setdefault(lineno + 1, set()).update(codes)
    return per_line, file_level


def is_suppressed(
    diag: Diagnostic,
    per_line: Dict[int, Set[str]],
    file_level: Set[str],
) -> bool:
    if diag.code in file_level:
        return True
    if diag.span is None:
        return False
    return diag.code in per_line.get(diag.span.line, set())


def apply_suppressions(
    diagnostics: Sequence[Diagnostic], source: Optional[str]
) -> List[Diagnostic]:
    """Diagnostics that survive the source's inline suppressions."""
    if not source:
        return list(diagnostics)
    per_line, file_level = collect_suppressions(source)
    if not per_line and not file_level:
        return list(diagnostics)
    return [d for d in diagnostics if not is_suppressed(d, per_line, file_level)]


__all__ = [
    "Severity",
    "Diagnostic",
    "caret_excerpt",
    "collect_suppressions",
    "is_suppressed",
    "apply_suppressions",
]
