"""Static cost & cardinality analysis — interval abstract interpretation.

This is the third static analysis stacked on the PR 3 CFG (after
dataflow/tractability and effects/determinism): an abstract
interpretation that propagates **cardinality intervals** through each
query — frontier sizes, SDMC product states, materialized paths, ACCUM
executions, accumulator bytes — and stamps every SELECT block (and the
whole query) with a :class:`~repro.core.tractable.CostCertificate`.

The abstract domain is :class:`~repro.core.tractable.Interval`:
``[lo, hi]`` with ``hi=None`` meaning +inf.  Soundness contract: every
interval **brackets** the corresponding runtime obs counter
(``block.acc_executions``, ``sdmc.product_states``,
``enum.paths_emitted``, governor byte estimates) — the calibration
harness ``benchmarks/check_cost_calibration.py`` enforces this against
the committed ``cost_baseline.json``, so the estimator cannot silently
drift optimistic.

Two modes:

* **structural** (``stats=None``, what the parser stamps): bounds that
  depend only on the query shape.  Graph-dependent quantities stay open
  (``hi=None``) and the certificate's confidence is UNBOUNDED (or
  ESTIMATED when loop caps still bound the work).
* **statistics-aware** (``stats=`` a :class:`~repro.graph.stats.
  GraphStatsSnapshot`): per-type vertex/edge counts, degree maxima and
  attribute value frequencies close the bounds.  This is where Theorem
  7.1 becomes visible *statically*: on the Qn diamond chain, the
  predicted ACCUM-execution interval is linear in n (seeds are pinned
  to 1 by the ``name`` equality filter, and a counting run touches each
  of the 3n+1 reachable vertices at most once) while the predicted path
  interval grows as 2^Θ(n) (per-level fan-out compounds through the
  Kleene hop).

Confidence tiers (weakest-wins across blocks):

* ``CLOSED_FORM`` — every upper bound derives from exact snapshot
  counts (type cardinalities, degree maxima, attribute frequencies, NFA
  sizes) with no heuristic fallback;
* ``ESTIMATED`` — bounded, but some component used a fallback (unknown
  table size, non-constant LIMIT, widened loop);
* ``UNBOUNDED`` — a core metric (frontier / product states / ACCUM
  executions / accumulator bytes) has no finite upper bound.

The analysis is memoised on the model per stats fingerprint
(``model._cost``), so parser stamping, ``repro check --cost``, the
planner, the governor and server admission share one pass; the
PlanCache additionally persists the certificate across parses keyed by
the same fingerprint.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..obs import metrics as _obs
from ..core.query import (
    Foreach,
    GOVERNED_WHILE_CAP,
    If,
    RunBlock,
    SetAssign,
    While,
)
from ..core.tractable import (
    COST_CAP,
    CostCertificate,
    CostConfidence,
    Interval,
)
from .cfg import const_value
from .dataflow import AccKey, _decl_key, _fact_key, analyze_dataflow
from .model import BlockFact, DeclFact, QueryModel

#: Bytes charged for one accumulator instance's fixed state (scalars
#: stay at this size no matter how many inputs fold in).
ACCUM_BASE_BYTES = 64


class BlockCost:
    """Mutable scratch for one block's metric intervals + witnesses."""

    __slots__ = (
        "frontier", "product_states", "paths", "acc_executions",
        "accum_bytes", "witnesses", "estimated",
    )

    def __init__(self) -> None:
        self.frontier = Interval.exact(0)
        self.product_states = Interval.exact(0)
        self.paths = Interval.exact(0)
        self.acc_executions = Interval.exact(0)
        self.accum_bytes = Interval.exact(0)
        self.witnesses: List[str] = []
        self.estimated = False


class CostResult:
    """Everything one cost pass produced."""

    def __init__(self, stats=None) -> None:
        self.stats = stats
        #: (block fact, certificate) per SELECT block, in source order.
        self.blocks: List[Tuple[BlockFact, CostCertificate]] = []
        #: (While statement, predicted iteration interval) per loop.
        self.whiles: List[Tuple[Any, Interval]] = []
        self.query_certificate: Optional[CostCertificate] = None

    def certificate_for(self, block) -> Optional[CostCertificate]:
        for fact, cert in self.blocks:
            if fact.block is block:
                return cert
        return None


# ---------------------------------------------------------------------------
# helpers over the snapshot
# ---------------------------------------------------------------------------


def _type_count(stats, schema, name: str) -> Optional[int]:
    """Vertex count of a *type* position, None when unknowable."""
    if stats is None:
        return None
    if name in ("_", "ANY"):
        return stats.total_vertices
    if schema is not None and not schema.has_vertex_type(name):
        return None  # a set reference, resolved by the frontier env
    return stats.vertices_of(name)


def _is_type_position(schema, name: str) -> bool:
    if name in ("_", "ANY"):
        return True
    return schema is not None and schema.has_vertex_type(name)


def _geometric_sum(base: int, length: int) -> int:
    """sum_{l=0..length} base**l, clamped to COST_CAP."""
    if base <= 0:
        return 1
    if base == 1:
        return min(length + 1, COST_CAP)
    total = 0
    power = 1
    for _ in range(length + 1):
        total += power
        if total >= COST_CAP:
            return COST_CAP
        power *= base
    return total


def _equality_bounds(where, pattern_vars) -> Dict[str, str]:
    """var -> attribute pinned by a WHERE equality conjunct.

    Walks the top-level AND spine of the WHERE clause looking for
    ``var.attr == <expr>`` (either side) where ``<expr>`` references no
    pattern variable (a literal or parameter).  The snapshot's
    per-(type, attribute) maximum value frequency is then a sound bound
    on how many vertices any single comparison value can select.
    """
    if where is None:
        return {}
    from ..core.exprs import AttrRef, Binary, NameRef

    vars_ = set(pattern_vars)

    def conjuncts(expr):
        if isinstance(expr, Binary) and expr.op == "AND":
            yield from conjuncts(expr.left)
            yield from conjuncts(expr.right)
        else:
            yield expr

    def attr_of(expr):
        if isinstance(expr, AttrRef) and isinstance(expr.base, NameRef):
            if expr.base.name in vars_:
                return expr.base.name, expr.attr
        return None

    def mentions_pattern_var(expr) -> bool:
        if isinstance(expr, NameRef):
            return expr.name in vars_
        for slot in getattr(expr, "__slots__", ()):
            child = getattr(expr, slot, None)
            if isinstance(child, (list, tuple)):
                if any(
                    mentions_pattern_var(c)
                    for c in child
                    if hasattr(c, "__slots__")
                ):
                    return True
            elif hasattr(child, "__slots__") and mentions_pattern_var(child):
                return True
        return False

    bounds: Dict[str, str] = {}
    for conj in conjuncts(where):
        if not (isinstance(conj, Binary) and conj.op == "=="):
            continue
        for lhs, rhs in ((conj.left, conj.right), (conj.right, conj.left)):
            ref = attr_of(lhs)
            if ref is not None and not mentions_pattern_var(rhs):
                bounds[ref[0]] = ref[1]
                break
    return bounds


# ---------------------------------------------------------------------------
# the per-block walk
# ---------------------------------------------------------------------------


def _certify_block(
    block_fact: BlockFact,
    model: QueryModel,
    env: Dict[str, Interval],
    loop_factor: Interval,
    decls: Dict[AccKey, DeclFact],
    stats,
) -> Tuple[CostCertificate, Interval]:
    """One block's certificate plus the result-set frontier interval."""
    schema = model.schema
    block = block_fact.block
    cost = BlockCost()
    vertex_params = {
        p.name for p in model.query.params if p.vertex_type is not None
    }
    eq_attrs = _equality_bounds(block.where, block.pattern.variables())
    total_v = None if stats is None else stats.total_vertices

    def position_interval(name: str, var: str, seed: bool = False) -> Interval:
        """Admissible vertices at one pattern position.

        Equality-filter selectivity applies only at *seed* positions —
        that is where the engine pushes the filter down, and where the
        bound drives seeds-times-reachability products.
        """
        if var in vertex_params:
            # The ``Customer:c`` idiom — pinned to one parameter vertex.
            cost.witnesses.append(f"{var} pinned by vertex parameter")
            return Interval(0, 1)
        if _is_type_position(schema, name):
            count = _type_count(stats, schema, name)
            iv = Interval.upto(count)
            vtype = name if name not in ("_", "ANY") else None
            attr = eq_attrs.get(var) if seed else None
            if attr is not None and stats is not None and vtype is not None:
                freq = stats.max_value_frequency(vtype, attr)
                if freq is not None:
                    cost.witnesses.append(
                        f"{var}.{attr} equality selects <= {freq} "
                        f"{vtype} vertices (max value frequency)"
                    )
                    iv = iv.cap(freq)
            return iv
        # A set reference: the frontier environment's interval.
        iv = env.get(name)
        if iv is None:
            iv = Interval.upto(total_v)
            if stats is not None:
                cost.witnesses.append(
                    f"set {name!r} bounded by |V|={total_v}"
                )
        return iv

    result_frontier = Interval.exact(0)
    rows_total = Interval.exact(1)
    any_chain = False
    var_frontiers: Dict[str, Interval] = {}

    for chain in block.pattern.chains:
        source = getattr(chain, "source", None)
        if source is None:
            # A relational TableSource conjunct: size unknown to the
            # graph snapshot.
            cost.witnesses.append("table conjunct of unknown size")
            cost.estimated = True
            rows_total = rows_total.mul(Interval(0, None))
            continue
        any_chain = True
        frontier = position_interval(source.name, source.var, seed=True)
        var_frontiers[source.var] = frontier
        rows = frontier
        paths = frontier
        for hop in chain.hops:
            tgt = position_interval(hop.target.name, hop.target.var)
            nfa_states = hop.darpe.nfa.num_states
            if hop.is_single_symbol:
                sym = hop.darpe.ast
                fan_hi = (
                    None if stats is None
                    else stats.fan_out(sym.edge_type, sym.direction)
                )
                fan = Interval.upto(fan_hi)
                frontier = frontier.mul(fan).cap(tgt.hi)
                rows = rows.mul(fan).cap(
                    None if rows.hi is None or tgt.hi is None
                    else rows.hi * tgt.hi
                )
                paths = paths.mul(fan)
            else:
                # A DARPE hop runs SDMC per source: each run visits at
                # most |V| x nfa-states product states (Theorem 6.1).
                per_seed = (
                    None if total_v is None else total_v * nfa_states
                )
                cost.product_states = cost.product_states.add(
                    rows.mul(Interval.upto(per_seed))
                )
                if total_v is not None:
                    cost.witnesses.append(
                        f"DARPE {hop.darpe.text or '*'} visits <= "
                        f"|V|*{nfa_states}={per_seed} product states "
                        f"per seed"
                    )
                if stats is None:
                    fan_base = None
                else:
                    fan_base = max(
                        (
                            stats.fan_out(s.edge_type, s.direction)
                            for s in _symbols(hop.darpe.ast)
                        ),
                        default=0,
                    )
                if hop.has_kleene:
                    # Paths of every length up to |V| edges are
                    # admissible under all-shortest-paths semantics.
                    per_source_paths = (
                        None
                        if fan_base is None or total_v is None
                        else _geometric_sum(fan_base, total_v)
                    )
                else:
                    # Bounded repeat: path length capped by the NFA size.
                    per_source_paths = (
                        None
                        if fan_base is None
                        else _geometric_sum(fan_base, nfa_states)
                    )
                paths = paths.mul(Interval.upto(per_source_paths))
                # Each source resolves to at most |targets| rows in the
                # compressed binding table.
                rows = rows.mul(Interval.upto(tgt.hi))
                frontier = tgt
            var_frontiers[hop.target.var] = frontier
        rows_total = rows_total.mul(rows)
        cost.paths = cost.paths.add(paths)
        result_frontier = result_frontier.join(frontier)

    if not any_chain:
        rows_total = rows_total.mul(Interval(0, None))

    if block.select_var is not None and block.select_var in var_frontiers:
        result_frontier = var_frontiers[block.select_var]

    cost.frontier = result_frontier
    if block.accum:
        # One ACCUM execution per compressed binding row.
        cost.acc_executions = cost.acc_executions.add(rows_total)
    if block.post_accum:
        cost.acc_executions = cost.acc_executions.add(result_frontier)

    # Accumulator byte growth: algebra table's unit-bytes column.
    from ..accum.algebra import classify

    seen_accums = set()
    for write in block_fact.writes:
        key = _fact_key(write)
        if key is None or key in seen_accums:
            continue
        seen_accums.add(key)
        decl = decls.get(key)
        alg = classify(decl.type_info) if decl is not None else None
        unit = alg.unit_bytes if alg is not None else ACCUM_BASE_BYTES
        instances = Interval.exact(1) if write.is_global else cost.frontier
        growth = cost.acc_executions.mul(Interval.upto(unit)) if unit else (
            Interval.exact(0)
        )
        fixed = instances.mul(Interval.exact(ACCUM_BASE_BYTES))
        cost.accum_bytes = cost.accum_bytes.add(fixed).add(growth)
        if alg is not None and unit:
            cost.witnesses.append(
                f"@{'@' if write.is_global else ''}{write.name} grows "
                f"{unit} B per folded input ({alg.kind}, merge "
                f"{alg.merge_cost})"
            )

    # Loop context multiplies the per-execution work.
    if loop_factor != Interval.exact(1):
        cost.acc_executions = cost.acc_executions.mul(loop_factor)
        cost.product_states = cost.product_states.mul(loop_factor)
        cost.paths = cost.paths.mul(loop_factor)
        cost.accum_bytes = cost.accum_bytes.mul(loop_factor)
        cost.witnesses.append(
            f"inside loop: x{loop_factor.describe()} iterations"
        )
        if loop_factor.hi is None:
            cost.estimated = True

    core = (
        cost.frontier, cost.product_states, cost.acc_executions,
        cost.accum_bytes,
    )
    if any(iv.hi is None for iv in core):
        confidence = CostConfidence.UNBOUNDED
        if stats is None:
            cost.witnesses.append(
                "no statistics snapshot: graph-dependent bounds are open"
            )
    elif cost.estimated or cost.paths.hi is None:
        confidence = CostConfidence.ESTIMATED
    else:
        confidence = CostConfidence.CLOSED_FORM

    cert = CostCertificate(
        confidence=confidence,
        frontier=cost.frontier,
        product_states=cost.product_states,
        paths=cost.paths,
        acc_executions=cost.acc_executions,
        accum_bytes=cost.accum_bytes,
        witnesses=tuple(cost.witnesses),
        stats_fingerprint=None if stats is None else stats.fingerprint,
    )
    return cert, result_frontier


def _symbols(node):
    """Every direction-adorned edge symbol of a DARPE AST."""
    from ..darpe.ast import Symbol

    if isinstance(node, Symbol):
        yield node
        return
    for slot in getattr(node, "__slots__", ()):
        child = getattr(node, slot, None)
        if isinstance(child, (list, tuple)):
            for c in child:
                yield from _symbols(c)
        elif child is not None and hasattr(child, "__slots__"):
            yield from _symbols(child)


# ---------------------------------------------------------------------------
# the statement walk (frontier environment + loop factors)
# ---------------------------------------------------------------------------


def _loop_iterations(stmt) -> Interval:
    """Predicted iteration interval for a While statement."""
    if stmt.limit is not None:
        limit = const_value(stmt.limit)
        if isinstance(limit, (int, float)) and not isinstance(limit, bool):
            return Interval(0, max(int(limit), 0))
        return Interval(0, None)  # LIMIT from a parameter
    if getattr(stmt, "governed_cap", False):
        # E033 loops execute under the mandatory governed soft cap.
        return Interval(0, GOVERNED_WHILE_CAP)
    return Interval(0, None)


class _Walker:
    def __init__(self, model: QueryModel, decls, stats, result: CostResult):
        self.model = model
        self.decls = decls
        self.stats = stats
        self.result = result
        self.env: Dict[str, Interval] = {}
        self.facts_by_block = {id(bf.block): bf for bf in model.blocks}
        self.total_v = None if stats is None else stats.total_vertices

    def run(self) -> None:
        self.walk(self.model.query.statements, Interval.exact(1))

    def walk(self, statements, loop_factor: Interval) -> None:
        for stmt in statements:
            self.visit(stmt, loop_factor)

    def visit(self, stmt, loop_factor: Interval) -> None:
        if isinstance(stmt, RunBlock):
            self.visit_block(stmt.block, stmt.assign_to, loop_factor)
        elif isinstance(stmt, SetAssign):
            source = stmt.source
            if hasattr(source, "pattern"):
                self.visit_block(source, stmt.name, loop_factor)
            elif isinstance(source, str):
                self.env[stmt.name] = self.env.get(
                    source, Interval.upto(self.total_v)
                )
            else:  # a literal vertex-id list
                try:
                    self.env[stmt.name] = Interval(0, len(list(source)))
                except TypeError:
                    self.env[stmt.name] = Interval.upto(self.total_v)
        elif isinstance(stmt, While):
            iters = _loop_iterations(stmt)
            self.result.whiles.append((stmt, iters))
            factor = loop_factor.mul(iters)
            # Two passes propagate loop-carried set growth; sets
            # reassigned in the body are widened to the graph bound.
            before = dict(self.env)
            self.walk(stmt.body, factor)
            for name in set(self.env) - set(before):
                self.env[name] = Interval.upto(self.total_v)
            for name, iv in before.items():
                if self.env.get(name) != iv:
                    self.env[name] = Interval.upto(self.total_v)
            self.walk(stmt.body, factor)
        elif isinstance(stmt, Foreach):
            name = getattr(stmt.collection, "name", None)
            iters = self.env.get(name) if name is not None else None
            if iters is None:
                # A parameter list / literal collection: size unknown.
                iters = Interval(0, None)
            self.walk(stmt.body, loop_factor.mul(iters))
        elif isinstance(stmt, If):
            before = dict(self.env)
            self.walk(stmt.then, loop_factor)
            then_env = self.env
            self.env = before
            self.walk(stmt.otherwise, loop_factor)
            for name, iv in then_env.items():
                if name in self.env:
                    self.env[name] = iv.join(self.env[name])
                else:
                    self.env[name] = iv

    def visit_block(self, block, assign_to, loop_factor: Interval) -> None:
        block_fact = self.facts_by_block.get(id(block))
        if block_fact is None:
            return
        cert, frontier = _certify_block(
            block_fact, self.model, self.env, loop_factor, self.decls,
            self.stats,
        )
        self.result.blocks.append((block_fact, cert))
        if assign_to is not None:
            self.env[assign_to] = frontier


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def analyze_cost(model: QueryModel, stats=None) -> CostResult:
    """The cost analysis for a model, memoised per stats fingerprint.

    Shares the CFG with :func:`~repro.analysis.dataflow.analyze_dataflow`
    (loop regions come from there) and reuses the cached model, so one
    parse pays for at most one cost pass per distinct statistics
    snapshot.
    """
    fingerprint = None if stats is None else stats.fingerprint
    cache = getattr(model, "_cost", None)
    if cache is None:
        cache = {}
        model._cost = cache
    cached = cache.get(fingerprint)
    if cached is not None:
        return cached

    analyze_dataflow(model)  # stamps governed caps' prerequisite info
    decls: Dict[AccKey, DeclFact] = {}
    for d in model.decls:
        decls.setdefault(_decl_key(d), d)

    result = CostResult(stats=stats)
    walker = _Walker(model, decls, stats, result)
    walker.run()

    # Restore source order: the double loop pass may append a block
    # twice — keep the *last* (fixpoint) certificate per block.
    latest: Dict[int, Tuple[BlockFact, CostCertificate]] = {}
    for fact, cert in result.blocks:
        latest[id(fact)] = (fact, cert)
    result.blocks = sorted(latest.values(), key=lambda fc: fc[0].seq)

    confidence = CostConfidence.CLOSED_FORM
    frontier = Interval.exact(0)
    product_states = Interval.exact(0)
    paths = Interval.exact(0)
    acc_executions = Interval.exact(0)
    accum_bytes = Interval.exact(0)
    witnesses: List[str] = []
    for _fact, cert in result.blocks:
        confidence = confidence.meet(cert.confidence)
        frontier = frontier.join(cert.frontier)
        product_states = product_states.add(cert.product_states)
        paths = paths.add(cert.paths)
        acc_executions = acc_executions.add(cert.acc_executions)
        accum_bytes = accum_bytes.add(cert.accum_bytes)
    if stats is None and result.blocks:
        witnesses.append("structural bounds only (no statistics snapshot)")
    elif stats is not None:
        witnesses.append(
            f"statistics snapshot {stats.fingerprint} "
            f"(|V|={stats.total_vertices}, |E|={stats.total_edges})"
        )
    result.query_certificate = CostCertificate(
        confidence=confidence,
        frontier=frontier,
        product_states=product_states,
        paths=paths,
        acc_executions=acc_executions,
        accum_bytes=accum_bytes,
        witnesses=tuple(witnesses),
        stats_fingerprint=fingerprint,
    )

    cache[fingerprint] = result
    col = _obs._ACTIVE
    if col is not None:
        col.count("cost.analyses")
        col.count("cost.blocks", len(result.blocks))
        for _fact, cert in result.blocks:
            col.count(f"cost.tier.{cert.confidence.value}")
    return result


def block_cost_certificates(
    model: QueryModel, stats=None
) -> List[Tuple[BlockFact, CostCertificate]]:
    """(block fact, cost certificate) pairs in source order."""
    return analyze_cost(model, stats=stats).blocks


#: Engine-mode names (CLI and server spellings) that *materialize*
#: paths, so a predicted path-count breach actually threatens them.
ENUMERATION_ENGINES = frozenset(
    {"nre", "nrv", "asp-enum", "enumeration", "asp", "enum"}
)


def budget_breaches(
    cert: CostCertificate,
    budget: Dict[str, Any],
    engine: Optional[str] = None,
) -> List[Tuple[str, int, int]]:
    """Which budget caps the *predicted* cost provably threatens.

    Returns ``(metric, predicted_hi, cap)`` triples for every finite
    predicted upper bound exceeding the corresponding budget limit.
    Path-count caps only apply to enumeration engines (``engine`` in
    :data:`ENUMERATION_ENGINES`): the counting engine never materializes
    paths, so its predicted path explosion is not a breach.
    """
    checks = [
        ("acc_executions", cert.acc_executions, "max_acc_executions"),
        ("product_states", cert.product_states, "max_product_states"),
        ("accum_bytes", cert.accum_bytes, "max_accum_bytes"),
    ]
    if engine in ENUMERATION_ENGINES:
        checks.append(("paths", cert.paths, "max_paths"))
    breaches = []
    for metric, interval, cap_name in checks:
        cap = budget.get(cap_name)
        if cap is None or interval.hi is None:
            continue
        if interval.hi > cap:
            breaches.append((metric, interval.hi, cap))
    return breaches


__all__ = [
    "ACCUM_BASE_BYTES",
    "ENUMERATION_ENGINES",
    "BlockCost",
    "CostResult",
    "analyze_cost",
    "block_cost_certificates",
    "budget_breaches",
]
