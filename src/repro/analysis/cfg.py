"""Control-flow graph over query statements.

The graph the flow-sensitive rules run over (:mod:`.dataflow`) is built
from a :class:`~repro.analysis.model.QueryModel`, one node per
statement: plain statements and whole ``SELECT`` blocks are single
nodes, ``IF``/``WHILE``/``FOREACH`` conditions get their own node with
labelled out-edges (``true``/``false``/``back``), and ``WHILE`` bodies
close a back-edge onto the loop header.  ``RETURN`` falls through — the
runtime (:meth:`repro.core.query.Return.execute`) only records the
value and keeps executing, so the CFG must too.

Each node carries an ordered list of *events* — the model's facts in
evaluation order, not source order.  Inside a SELECT block that means:
FROM-pattern set uses, then WHERE reads, then ACCUM-clause reads
(snapshot semantics: every ACCUM read sees pre-block values, so all
reads precede all writes), then ACCUM writes, then POST_ACCUM
reads/writes interleaved with each update's right-hand-side reads
*before* its write (``@x = @x + 1`` reads the old value first), then
output-expression reads, then the result-set definition.

Literal ``IF``/``WHILE`` conditions are constant-folded: the impossible
edge is dropped, which is what makes W034 (unreachable statement) a
reachability query and keeps ``WHILE (FALSE)`` bodies out of the
loop-carried states.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.exprs import Binary, Literal, Unary
from ..core.query import (
    DeclareAccum,
    Foreach,
    GlobalAccumUpdate,
    If,
    Print,
    Return,
    RunBlock,
    SetAssign,
    SetOpAssign,
    Statement,
    While,
)
from ..core.span import Span, span_of
from .model import (
    AccumReadFact,
    AccumWriteFact,
    BlockFact,
    DeclFact,
    QueryModel,
    SetDefFact,
    SetUseFact,
    _Fact,
)

# Event kinds, in the order the transfer functions interpret them.
DECL = "decl"
READ = "read"
WRITE = "write"
SET_DEF = "set_def"
SET_USE = "set_use"

Event = Tuple[str, _Fact]


class CFGNode:
    """One statement (or condition) in the control-flow graph."""

    __slots__ = ("id", "kind", "stmt", "label", "events", "succs", "preds",
                 "span", "block_fact")

    def __init__(self, node_id: int, kind: str, stmt: Optional[Statement],
                 label: str, span: Optional[Span]):
        self.id = node_id
        self.kind = kind  # "entry" | "exit" | "stmt" | "cond" | "loop"
        self.stmt = stmt
        self.label = label
        self.span = span
        self.events: List[Event] = []
        self.succs: List[Tuple["CFGNode", str]] = []
        self.preds: List[Tuple["CFGNode", str]] = []
        self.block_fact: Optional[BlockFact] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CFGNode {self.id} {self.kind} {self.label!r}>"


class LoopInfo:
    """A ``WHILE``/``FOREACH`` region: header node plus its body nodes."""

    __slots__ = ("stmt", "kind", "head", "body_nodes")

    def __init__(self, stmt: Statement, kind: str, head: CFGNode):
        self.stmt = stmt
        self.kind = kind  # "while" | "foreach"
        self.head = head
        self.body_nodes: List[CFGNode] = []


class CFG:
    """The built graph: entry/exit sentinels, nodes, loops."""

    def __init__(self, query_name: str):
        self.query_name = query_name
        self.nodes: List[CFGNode] = []
        self.entry: CFGNode = self._new("entry", None, "ENTRY", None)
        self.exit: CFGNode = self._new("exit", None, "EXIT", None)
        self.loops: List[LoopInfo] = []

    # ------------------------------------------------------------------
    def _new(self, kind: str, stmt: Optional[Statement], label: str,
             span: Optional[Span]) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, stmt, label, span)
        self.nodes.append(node)
        return node

    def _edge(self, src: CFGNode, dst: CFGNode, label: str) -> None:
        src.succs.append((dst, label))
        dst.preds.append((src, label))

    # ------------------------------------------------------------------
    def reachable(self) -> Set[int]:
        """Node ids reachable from entry along CFG edges."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            node = stack.pop()
            if node.id in seen:
                continue
            seen.add(node.id)
            for succ, _ in node.succs:
                if succ.id not in seen:
                    stack.append(succ)
        return seen

    def node_for(self, stmt: Statement) -> Optional[CFGNode]:
        for node in self.nodes:
            if node.stmt is stmt:
                return node
        return None

    # ------------------------------------------------------------------
    def to_dot(self, name: Optional[str] = None) -> str:
        """Graphviz rendering (``repro check --dot``)."""
        title = name or self.query_name or "query"
        out = [f'digraph "{title}" {{']
        out.append('  rankdir=TB; node [fontname="monospace" fontsize=10];')
        reachable = self.reachable()
        for node in self.nodes:
            shape = {
                "entry": "circle", "exit": "doublecircle",
                "cond": "diamond", "loop": "diamond",
            }.get(node.kind, "box")
            label = node.label.replace("\\", "\\\\").replace('"', '\\"')
            if node.span is not None:
                label += f"\\nL{node.span.line}"
            style = "" if node.id in reachable else ' style=dashed color=gray'
            out.append(f'  n{node.id} [shape={shape} label="{label}"{style}];')
        for node in self.nodes:
            for succ, edge_label in node.succs:
                attrs = ""
                if edge_label != "seq":
                    attrs = f' [label="{edge_label}"'
                    if edge_label == "back":
                        attrs += " style=dashed"
                    attrs += "]"
                out.append(f"  n{node.id} -> n{succ.id}{attrs};")
        out.append("}")
        return "\n".join(out)


def const_value(expr: Any) -> Optional[Any]:
    """Statically evaluate an expression, or None when it is not constant.

    Only literal-driven boolean structure folds — enough to prove
    ``IF (FALSE)`` bodies dead without pretending to know runtime data.
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Unary) and expr.op == "NOT":
        inner = const_value(expr.operand)
        return None if inner is None else (not inner)
    if isinstance(expr, Binary) and expr.op in ("AND", "OR"):
        left = const_value(expr.left)
        right = const_value(expr.right)
        if expr.op == "AND":
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
        else:
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
    return None


# ----------------------------------------------------------------------
# Event assembly


def _rhs_reorder(facts: List[_Fact]) -> List[Event]:
    """Interleaved write/read facts -> events with RHS reads first.

    The model records an :class:`AccumWriteFact` *before* the reads its
    right-hand side produces; evaluation order is the reverse (the RHS
    is computed, then stored).  Without this, ``@@x += 1; @@x = @@x * 2``
    would make the first write look dead.
    """
    events: List[Event] = []
    pending: Optional[Tuple[AccumWriteFact, Set[int]]] = None

    def flush() -> None:
        nonlocal pending
        if pending is not None:
            events.append((WRITE, pending[0]))
            pending = None

    for fact in facts:
        if isinstance(fact, AccumWriteFact):
            flush()
            pending = (fact, {id(n) for n in fact.expr.walk()})
        elif isinstance(fact, AccumReadFact):
            if pending is not None and id(fact.node) in pending[1]:
                events.append((READ, fact))
            else:
                flush()
                events.append((READ, fact))
        else:
            flush()
            events.append((_plain_kind(fact), fact))
    flush()
    return events


def _plain_kind(fact: _Fact) -> str:
    if isinstance(fact, DeclFact):
        return DECL
    if isinstance(fact, AccumWriteFact):
        return WRITE
    if isinstance(fact, AccumReadFact):
        return READ
    if isinstance(fact, SetDefFact):
        return SET_DEF
    if isinstance(fact, SetUseFact):
        return SET_USE
    return "info"


def _where_nodes(block) -> Set[int]:
    if block.where is None:
        return set()
    return {id(n) for n in block.where.walk()}


def _block_events(stmt: Statement, facts: List[_Fact]) -> List[Event]:
    """Evaluation-order events for a SELECT-block statement."""
    block_fact = next((f for f in facts if isinstance(f, BlockFact)), None)
    block = block_fact.block if block_fact is not None else None
    where_ids = _where_nodes(block) if block is not None else set()

    set_uses: List[_Fact] = []
    where_reads: List[_Fact] = []
    accum_reads: List[_Fact] = []
    accum_writes: List[_Fact] = []
    post_facts: List[_Fact] = []
    output_reads: List[_Fact] = []
    set_defs: List[_Fact] = []
    rest: List[Event] = []

    for fact in facts:
        if isinstance(fact, SetUseFact):
            set_uses.append(fact)
        elif isinstance(fact, SetDefFact):
            set_defs.append(fact)
        elif isinstance(fact, AccumReadFact):
            if fact.context == "accum":
                accum_reads.append(fact)
            elif fact.context == "post_accum":
                post_facts.append(fact)
            elif id(fact.node) in where_ids:
                where_reads.append(fact)
            else:
                output_reads.append(fact)
        elif isinstance(fact, AccumWriteFact):
            if fact.context == "post_accum":
                post_facts.append(fact)
            else:
                accum_writes.append(fact)
        elif isinstance(fact, BlockFact):
            continue
        else:
            rest.append((_plain_kind(fact), fact))

    events: List[Event] = []
    events.extend((SET_USE, f) for f in set_uses)
    events.extend((READ, f) for f in where_reads)
    # ACCUM snapshot semantics (Section 4): reads before writes.
    events.extend((READ, f) for f in accum_reads)
    events.extend((WRITE, f) for f in accum_writes)
    # POST_ACCUM runs sequentially per vertex: keep statement order but
    # put each update's RHS reads before its write.
    events.extend(_rhs_reorder(post_facts))
    events.extend((READ, f) for f in output_reads)
    events.extend((SET_DEF, f) for f in set_defs)
    events.extend(rest)
    return events


def _stmt_events(stmt: Statement, facts: List[_Fact]) -> List[Event]:
    if isinstance(stmt, (RunBlock,)) or (
        isinstance(stmt, SetAssign) and any(
            isinstance(f, BlockFact) for f in facts
        )
    ):
        return _block_events(stmt, facts)
    if isinstance(stmt, GlobalAccumUpdate):
        return _rhs_reorder(facts)
    return [(_plain_kind(f), f) for f in facts]


def _stmt_label(stmt: Statement) -> str:
    if isinstance(stmt, DeclareAccum):
        sigil = "@@" if stmt.scope == "global" else "@"
        return f"DECL {sigil}{stmt.name}"
    if isinstance(stmt, SetAssign):
        from ..core.block import SelectBlock
        if isinstance(stmt.source, SelectBlock):
            return f"{stmt.name} = SELECT"
        return f"{stmt.name} = ..."
    if isinstance(stmt, SetOpAssign):
        return f"{stmt.name} = {stmt.left} {stmt.op} {stmt.right}"
    if isinstance(stmt, RunBlock):
        if stmt.assign_to:
            return f"{stmt.assign_to} = SELECT"
        return "SELECT"
    if isinstance(stmt, GlobalAccumUpdate):
        return f"@@{stmt.name} {stmt.op} ..."
    if isinstance(stmt, Print):
        return "PRINT"
    if isinstance(stmt, Return):
        return "RETURN"
    return type(stmt).__name__


# ----------------------------------------------------------------------
# Builder


class _CFGBuilder:
    def __init__(self, model: QueryModel):
        self.model = model
        self.cfg = CFG(getattr(model.query, "name", "") or "query")
        self._open_loops: List[LoopInfo] = []
        self.facts_by_owner: Dict[int, List[_Fact]] = {}
        for fact in model.facts:
            if fact.owner is not None:
                self.facts_by_owner.setdefault(id(fact.owner), []).append(fact)

    # A *frontier* is the set of dangling (node, edge-label) pairs that
    # flow into whatever comes next.
    Frontier = List[Tuple[CFGNode, str]]

    def build(self) -> CFG:
        frontier: _CFGBuilder.Frontier = [(self.cfg.entry, "seq")]
        frontier = self._build_seq(self.model.query.statements, frontier)
        self._connect(frontier, self.cfg.exit, default="seq")
        return self.cfg

    def _connect(self, frontier: Frontier, dst: CFGNode,
                 default: str = "seq") -> None:
        for src, label in frontier:
            self.cfg._edge(src, dst, label or default)

    def _own_facts(self, stmt: Statement) -> List[_Fact]:
        return self.facts_by_owner.get(id(stmt), [])

    def _build_seq(self, statements: Iterable[Statement],
                   frontier: Frontier) -> Frontier:
        for stmt in statements:
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    def _build_stmt(self, stmt: Statement, frontier: Frontier) -> Frontier:
        inner = getattr(stmt, "statements", None)
        if inner is not None and not isinstance(
            stmt, (While, Foreach, If)
        ):
            # Statement groups (e.g. multi-declaration lines) flatten.
            return self._build_seq(inner, frontier)
        if isinstance(stmt, If):
            return self._build_if(stmt, frontier)
        if isinstance(stmt, While):
            return self._build_while(stmt, frontier)
        if isinstance(stmt, Foreach):
            return self._build_foreach(stmt, frontier)

        node = self.cfg._new("stmt", stmt, _stmt_label(stmt), span_of(stmt))
        facts = self._own_facts(stmt)
        node.events = _stmt_events(stmt, facts)
        node.block_fact = next(
            (f for f in facts if isinstance(f, BlockFact)), None
        )
        self._connect(frontier, node)
        for loop in self._open_loops:
            loop.body_nodes.append(node)
        return [(node, "seq")]

    def _build_if(self, stmt: If, frontier: Frontier) -> Frontier:
        cond = self.cfg._new("cond", stmt, "IF", span_of(stmt))
        cond.events = [
            (_plain_kind(f), f) for f in self._own_facts(stmt)
        ]
        self._connect(frontier, cond)
        for loop in self._open_loops:
            loop.body_nodes.append(cond)
        value = const_value(stmt.cond)
        then_start: _CFGBuilder.Frontier = (
            [(cond, "true")] if value is not False else []
        )
        else_start: _CFGBuilder.Frontier = (
            [(cond, "false")] if value is not True else []
        )
        out: _CFGBuilder.Frontier = []
        out.extend(self._build_seq(stmt.then, then_start))
        if stmt.otherwise:
            out.extend(self._build_seq(stmt.otherwise, else_start))
        else:
            out.extend(else_start)
        return out

    def _build_while(self, stmt: While, frontier: Frontier) -> Frontier:
        head = self.cfg._new("loop", stmt, "WHILE", span_of(stmt))
        head.events = [
            (_plain_kind(f), f) for f in self._own_facts(stmt)
        ]
        self._connect(frontier, head)
        for loop in self._open_loops:
            loop.body_nodes.append(head)
        info = LoopInfo(stmt, "while", head)
        self.cfg.loops.append(info)
        value = const_value(stmt.cond)
        body_start: _CFGBuilder.Frontier = (
            [(head, "true")] if value is not False else []
        )
        self._open_loops.append(info)
        try:
            body_end = self._build_seq(stmt.body, body_start)
        finally:
            self._open_loops.pop()
        for src, _ in body_end:
            self.cfg._edge(src, head, "back")
        # A statically-TRUE condition only exits through LIMIT.
        if value is not True or stmt.limit is not None:
            return [(head, "false")]
        return []

    def _build_foreach(self, stmt: Foreach, frontier: Frontier) -> Frontier:
        head = self.cfg._new("loop", stmt, f"FOREACH {stmt.var}", span_of(stmt))
        head.events = [
            (_plain_kind(f), f) for f in self._own_facts(stmt)
        ]
        self._connect(frontier, head)
        for loop in self._open_loops:
            loop.body_nodes.append(head)
        info = LoopInfo(stmt, "foreach", head)
        self.cfg.loops.append(info)
        self._open_loops.append(info)
        try:
            body_end = self._build_seq(stmt.body, [(head, "true")])
        finally:
            self._open_loops.pop()
        for src, _ in body_end:
            self.cfg._edge(src, head, "back")
        return [(head, "false")]

def build_cfg(model: QueryModel) -> CFG:
    """The control-flow graph for a model (cached by :mod:`.dataflow`)."""
    return _CFGBuilder(model).build()


__all__ = [
    "CFG",
    "CFGNode",
    "LoopInfo",
    "build_cfg",
    "const_value",
    "DECL",
    "READ",
    "WRITE",
    "SET_DEF",
    "SET_USE",
]
