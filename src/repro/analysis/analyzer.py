"""The analyzer entry point: run every rule over a compiled query.

:func:`analyze` is the programmatic API (the ``repro lint`` CLI and the
``core.validate``/``core.tractable`` compatibility shims all sit on top
of it)::

    from repro.analysis import analyze
    diagnostics = analyze(query, schema=schema)
    for diag in diagnostics:
        print(diag.render(query.source))

Inline suppressions in the query text (``// lint: disable=GSQL-W012``)
are honored automatically when the query carries its source (the GSQL
parser sets ``query.source``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .diagnostics import Diagnostic, apply_suppressions
from .model import QueryModel, cached_model
from .rules import Rule, all_rules


def run_rules(
    model: QueryModel, rules: Optional[Sequence[Rule]] = None
) -> List[Diagnostic]:
    """All diagnostics from ``rules`` (default: the full registry) over a
    prebuilt model, unsorted and unsuppressed.  Each diagnostic's ``seq``
    is the source-order sequence of the fact it anchors to, so sorting by
    ``seq`` reproduces walk order — the compatibility shims rely on it.
    """
    diagnostics: List[Diagnostic] = []
    for rule in rules if rules is not None else all_rules():
        diagnostics.extend(rule.check(model))
    return diagnostics


def analyze(
    query,
    schema=None,
    source: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    stats=None,
) -> List[Diagnostic]:
    """Analyze a compiled :class:`~repro.core.query.Query`.

    Returns diagnostics sorted for display (by source position, then
    code), with the source text's inline suppressions applied.  Pass
    ``source`` explicitly for queries whose ``.source`` is unset.
    ``stats`` (a :class:`~repro.graph.stats.GraphStatsSnapshot`) gives
    the cost rules (W050-W052) closed-form predictions instead of
    structural bounds.
    """
    model = cached_model(query, schema)
    model.lint_stats = stats
    diagnostics = run_rules(model, rules)
    text = source if source is not None else model.source
    diagnostics = apply_suppressions(diagnostics, text)
    diagnostics.sort(key=lambda d: d.sort_key())
    return diagnostics


def error_count(diagnostics: Sequence[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if d.is_error)


__all__ = ["analyze", "run_rules", "error_count"]
