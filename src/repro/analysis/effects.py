"""Flow-sensitive accumulator effect & commutativity analysis.

For every SELECT block this pass computes an :class:`EffectSummary` —
which accumulators the ACCUM/POST_ACCUM clauses read and write (global
vs vertex-attached, per-target vs cross-target), which combine operators
are applied, and what the update algebra of each write is, looked up in
the declarative op-algebra table (:mod:`repro.accum.algebra`) that the
runtime property tests check against the live accumulator classes.

The summary is stamped as a :class:`~repro.core.tractable.
DeterminismCertificate` next to the PR 3 tractability certificate:

``COMMUTATIVE``
    Every update commutes — binding rows may be folded in any order,
    across any partitioning, with identical results.  This is the
    licence :func:`repro.core.parallel.parallel_accum` requires.
``ORDER_DEPENDENT``
    Some update observes input order (ListAccum append, SumAccum<STRING>
    concatenation, last-write-wins ``=`` over unordered rows).  Parallel
    or partitioned execution would be nondeterministic.
``UNKNOWN``
    An update could not be classified (undeclared accumulator,
    unprobeable factory, user type outside the algebra table).

COMMUTATIVE summaries whose writes are all *monotone* (Sum/Min/Max/Or/
Set-style semilattice inserts) with no accumulator reads are
additionally flagged ``delta_maintainable`` — the precondition for the
ROADMAP's incremental evaluation (item 4a): a new input can be folded
into the previous result without recomputation.

The pass is flow-sensitive where it matters: per-target ``=`` writes
whose right-hand side depends only on the target vertex are recognised
as idempotent (connected-components ``v.@cc = v.id()``), and blocks
inside WHILE/FOREACH loops are annotated via the PR 3 CFG's loop
regions.  Everything is memoised on the model, sharing the CFG and
fixed points with :mod:`.dataflow`.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from ..core.exprs import GlobalAccumRef, Literal, NameRef, VertexAccumRef
from ..core.tractable import DeterminismCertificate, DeterminismStatus
from ..obs import metrics as _obs
from .dataflow import AccKey, _decl_key, _fact_key, analyze_dataflow
from .model import (
    AccumReadFact,
    AccumWriteFact,
    BlockFact,
    DeclFact,
    QueryModel,
)


class AccumEffect(NamedTuple):
    """One accumulator write, with its resolved update algebra."""

    name: str
    is_global: bool
    context: str  # "accum" | "post_accum"
    op: str  # "+=" | "="
    type_text: str
    target_var: Optional[str]  # pattern variable for vertex targets
    commutative: Optional[bool]  # None = unknown
    idempotent: bool
    monotone: bool
    mergeable: bool


class ReadEffect(NamedTuple):
    """One accumulator read inside an ACCUM/POST_ACCUM clause."""

    name: str
    is_global: bool
    primed: bool
    context: str
    target_var: Optional[str]


class EffectSummary(NamedTuple):
    """Per-block effect footprint: what is read, what is written, how."""

    writes: Tuple[AccumEffect, ...]
    reads: Tuple[ReadEffect, ...]
    #: Vertex accumulators updated through more than one pattern variable
    #: in the same ACCUM clause (cross-target writes).
    cross_target: Tuple[str, ...]
    in_loop: bool

    @property
    def written_keys(self) -> Set[AccKey]:
        return {(e.is_global, e.name) for e in self.writes}

    @property
    def read_keys(self) -> Set[AccKey]:
        return {(r.is_global, r.name) for r in self.reads}


class Interference(NamedTuple):
    """A W042 finding: an unprimed ACCUM-clause read of a vertex
    accumulator the same clause writes through a *different* variable."""

    read: AccumReadFact
    name: str
    read_var: Optional[str]
    write_vars: Tuple[str, ...]


class EffectsResult:
    """All per-block summaries and certificates, memoised per model."""

    def __init__(self) -> None:
        self.blocks: List[
            Tuple[BlockFact, EffectSummary, DeterminismCertificate]
        ] = []
        #: E040: plain '=' into a global accumulator from an ACCUM clause
        #: with a row-dependent right-hand side.
        self.unsafe_writes: List[AccumWriteFact] = []
        #: W042 findings.
        self.interference: List[Interference] = []

    def certificate_for(self, block) -> Optional[DeterminismCertificate]:
        for block_fact, _summary, cert in self.blocks:
            if block_fact.block is block:
                return cert
        return None


def _sigil(is_global: bool) -> str:
    return "@@" if is_global else "@"


def _target_var(write: AccumWriteFact) -> Optional[str]:
    base = getattr(write.node.target, "base", None)
    return base.name if isinstance(base, NameRef) else None


def _read_var(read: AccumReadFact) -> Optional[str]:
    base = getattr(read.node, "base", None)
    return base.name if isinstance(base, NameRef) else None


def _expr_names(expr) -> Set[str]:
    return {n.name for n in expr.walk() if isinstance(n, NameRef)}


def _expr_reads_accum(expr) -> bool:
    return any(
        isinstance(n, (GlobalAccumRef, VertexAccumRef)) for n in expr.walk()
    )


def _decl_kind(decl: DeclFact) -> Tuple[str, Optional[str]]:
    """(kind, element) of a declaration, via the parsed type when
    available, else the probe's type name recorded in ``type_text``."""
    info = decl.type_info
    if info is not None:
        return info.kind, info.element
    return decl.type_text.split("<", 1)[0], None


def _write_algebra(
    write: AccumWriteFact, decl: Optional[DeclFact]
) -> Tuple[Optional[bool], bool, bool, bool, str, Optional[str]]:
    """(commutative, idempotent, monotone, mergeable, type_text, caveat)
    for a ``+=`` write.  ``commutative=None`` means unclassifiable."""
    from ..accum.algebra import algebra_for, classify

    if decl is None:
        return None, False, False, False, "?", "no visible declaration"
    if decl.order_dependent is None:
        return (None, False, False, False, decl.type_text,
                f"{decl.type_text} could not be probed")
    if decl.order_dependent:
        return (False, False, False, False, decl.type_text,
                "fold order is observable")
    info = decl.type_info
    alg = classify(info) if info is not None else None
    if alg is None:
        kind, element = _decl_kind(decl)
        alg = algebra_for(kind, element=element)
    if alg is None:
        # A user-registered type outside the table: trust the probed
        # order-invariance flag, claim nothing stronger.
        return (True, False, False, False, decl.type_text,
                "user-registered type declares order-invariance")
    return (alg.commutative, alg.idempotent, alg.monotone, alg.mergeable,
            decl.type_text, None)


def _certify_block(
    block_fact: BlockFact,
    decls: Dict[AccKey, DeclFact],
    in_loop: bool,
    result: EffectsResult,
) -> Tuple[EffectSummary, DeterminismCertificate]:
    effects: List[AccumEffect] = []
    witnesses: List[str] = []
    order_witnesses: List[str] = []
    unknown_witnesses: List[str] = []

    for write in block_fact.writes:
        key = _fact_key(write)
        decl = decls.get(key) if key is not None else None
        sigil = _sigil(write.is_global)
        target_var = None if write.is_global else _target_var(write)
        type_text = decl.type_text if decl is not None else "?"

        if write.op == "=":
            if write.context == "post_accum" and not write.is_global:
                commutative, idempotent = True, True
                witnesses.append(
                    f"{sigil}{write.name} = … in POST_ACCUM executes once "
                    f"per selected vertex"
                )
            elif isinstance(write.expr, Literal):
                commutative, idempotent = True, True
                witnesses.append(
                    f"{sigil}{write.name} = constant: every row writes the "
                    f"same value, last-write-wins is idempotent"
                )
            elif (
                target_var is not None
                and _expr_names(write.expr) <= {target_var}
                and not _expr_reads_accum(write.expr)
            ):
                commutative, idempotent = True, True
                witnesses.append(
                    f"{target_var}.{sigil}{write.name} = … depends only on "
                    f"the target vertex: each target receives one value"
                )
            else:
                commutative, idempotent = False, False
                order_witnesses.append(
                    f"{sigil}{write.name} = … in {write.context.upper()} is "
                    f"last-write-wins over unordered rows"
                )
                if write.is_global and write.context == "accum":
                    result.unsafe_writes.append(write)
            effects.append(AccumEffect(
                write.name, write.is_global, write.context, write.op,
                type_text, target_var, commutative, idempotent,
                monotone=False, mergeable=False,
            ))
            continue

        commutative, idempotent, monotone, mergeable, type_text, caveat = (
            _write_algebra(write, decl)
        )
        effects.append(AccumEffect(
            write.name, write.is_global, write.context, write.op,
            type_text, target_var, commutative, idempotent, monotone,
            mergeable,
        ))
        if commutative is None:
            unknown_witnesses.append(
                f"{sigil}{write.name}: {caveat}"
            )
        elif not commutative:
            order_witnesses.append(
                f"{sigil}{write.name} ({type_text}): {caveat}"
            )
        else:
            note = f" ({caveat})" if caveat else ""
            witnesses.append(
                f"{sigil}{write.name} += over {type_text} commutes{note}"
            )

    reads: List[ReadEffect] = []
    for read in block_fact.reads:
        if read.context not in ("accum", "post_accum"):
            continue
        reads.append(ReadEffect(
            read.name, read.is_global, read.primed, read.context,
            None if read.is_global else _read_var(read),
        ))

    # Cross-target writes + W042 cross-variable read/write interference.
    vertex_write_vars: Dict[str, Set[Optional[str]]] = {}
    for effect in effects:
        if not effect.is_global and effect.context == "accum":
            vertex_write_vars.setdefault(effect.name, set()).add(
                effect.target_var
            )
    cross_target = tuple(sorted(
        name for name, vars_ in vertex_write_vars.items() if len(vars_) > 1
    ))
    for read in block_fact.reads:
        if read.context != "accum" or read.primed or read.is_global:
            continue
        write_vars = vertex_write_vars.get(read.name)
        if not write_vars:
            continue
        var = _read_var(read)
        others = {v for v in write_vars if v is not None and v != var}
        if others and var not in write_vars:
            result.interference.append(Interference(
                read, read.name, var, tuple(sorted(others))
            ))

    summary = EffectSummary(tuple(effects), tuple(reads), cross_target, in_loop)

    if order_witnesses:
        status = DeterminismStatus.ORDER_DEPENDENT
        body = order_witnesses
    elif unknown_witnesses:
        status = DeterminismStatus.UNKNOWN
        body = unknown_witnesses
    else:
        status = DeterminismStatus.COMMUTATIVE
        body = witnesses or [
            "the block updates no accumulator: any evaluation order "
            "produces the same (empty) effect"
        ]
    if in_loop and status is DeterminismStatus.COMMUTATIVE:
        body = body + [
            "block runs inside a loop: the certificate holds per iteration"
        ]

    accum_effects = [e for e in effects if e.context == "accum"]
    delta = bool(
        status is DeterminismStatus.COMMUTATIVE
        and accum_effects
        and all(e.op == "+=" and e.monotone for e in accum_effects)
        and not reads
    )
    if delta:
        body = body + [
            "all updates are monotone semilattice inserts with no "
            "accumulator reads: delta-maintainable (ROADMAP 4a)"
        ]
    return summary, DeterminismCertificate(status, tuple(body), delta)


def analyze_effects(model: QueryModel) -> EffectsResult:
    """The effect analysis for a model, memoised on the model.

    Shares the CFG (and therefore the cost of building it) with
    :func:`repro.analysis.dataflow.analyze_dataflow`.
    """
    cached = getattr(model, "_effects", None)
    if cached is not None:
        return cached

    dataflow = analyze_dataflow(model)
    loop_nodes: Set[int] = set()
    for loop in dataflow.cfg.loops:
        loop_nodes.add(loop.head.id)
        for node in loop.body_nodes:
            loop_nodes.add(node.id)
    block_in_loop: Dict[int, bool] = {}
    for node in dataflow.cfg.nodes:
        if node.block_fact is not None:
            block_in_loop[id(node.block_fact)] = node.id in loop_nodes

    decls: Dict[AccKey, DeclFact] = {}
    for d in model.decls:
        decls.setdefault(_decl_key(d), d)

    result = EffectsResult()
    for block_fact in model.blocks:
        summary, cert = _certify_block(
            block_fact, decls, block_in_loop.get(id(block_fact), False),
            result,
        )
        result.blocks.append((block_fact, summary, cert))

    col = _obs._ACTIVE
    if col is not None:
        col.count("effects.analyses")
        col.count("effects.blocks", len(result.blocks))
        col.count("effects.commutative", sum(
            1 for _, _, c in result.blocks
            if c.status is DeterminismStatus.COMMUTATIVE
        ))
        col.count("effects.order_dependent", sum(
            1 for _, _, c in result.blocks
            if c.status is DeterminismStatus.ORDER_DEPENDENT
        ))
        col.count("effects.delta_maintainable", sum(
            1 for _, _, c in result.blocks if c.delta_maintainable
        ))

    model._effects = result
    return result


def block_effects(
    model: QueryModel,
) -> List[Tuple[BlockFact, EffectSummary, DeterminismCertificate]]:
    """(block fact, summary, certificate) per SELECT block of the model."""
    return list(analyze_effects(model).blocks)


__all__ = [
    "AccumEffect",
    "ReadEffect",
    "EffectSummary",
    "Interference",
    "EffectsResult",
    "analyze_effects",
    "block_effects",
]
