"""Command-line interface: run GSQL files against graphs on disk.

Subcommands::

    python -m repro run QUERY.gsql --graph graph.json [--param k=5] [--no-compile] ...
    python -m repro explain QUERY.gsql [--no-compile]
    python -m repro profile QUERY.gsql --graph graph.json [--format json] [--no-compile]
    python -m repro lint PATH... [--graph graph.json] [--format json]
    python -m repro check PATH... [--graph graph.json] [--format json] [--dot cfg.dot] [--effects]
    python -m repro generate-snb out.json --scale 0.5 --seed 42
    python -m repro semantics GRAPH.json SOURCE DARPE [--semantics ...]
    python -m repro serve --graph [NAME=]graph.json [--port 8080] [--workers 4]
    python -m repro ingest BATCH.json --graph graph.json [--wal-dir DIR]
    python -m repro fsck --graph graph.json [--wal-dir DIR] [--format json]

``run`` executes a ``CREATE QUERY`` file against a JSON graph (see
``repro.graph.io``), prints PRINT output and result tables, and can
switch engines with ``--engine counting|nre|nrv|asp-enum``.  By default
the query goes through :mod:`repro.compile` — the process-wide plan
cache plus closure-compiled execution — which is result-identical to
the interpreter; ``--no-compile`` is the escape hatch back to the
interpreted path.

``profile`` is EXPLAIN ANALYZE: it runs the query under the
:mod:`repro.obs` collector and renders the span tree (per-block,
per-hop timings with binding-table rows/multiplicity) plus the engine
counter table, as text or JSON (``--output`` also writes the JSON trace
to a file for offline analysis).  The report's ``execution`` line/field
says whether the compiled or interpreted path ran and whether the plan
cache hit.

``lint`` runs the :mod:`repro.analysis` rule set over ``.gsql`` files,
Python files embedding GSQL in triple-quoted strings, or directories of
either; it exits non-zero when any *error*-severity diagnostic (or parse
failure) is found, so it slots into CI.

``check`` is ``lint`` plus the flow-sensitive layer: it builds each
query's control-flow graph, solves the accumulator dataflow to a fixed
point (E030–W034), prints one tractability certificate per SELECT
block, and can export the CFGs as Graphviz dot (``--dot``).  The JSON
payload adds ``certificates`` and per-query solver summaries to the
lint shape.

``serve`` starts the fault-tolerant HTTP query service
(:mod:`repro.server`): admission control with budget classes, a
process/thread worker pool with crash detection, and bounded
deterministic retry.  With ``--wal-dir`` every served graph becomes a
durable :class:`~repro.graph.mutation.GraphStore` — ``POST /ingest``
batches are WAL-committed and survive crashes.

``ingest`` applies a JSON batch of mutation operations (an array of op
documents, or ``{"ops": [...]}``) to a graph: with ``--wal-dir`` the
batch is WAL-committed (recovering any existing log first); without it
the updated graph is written back atomically.  A batch the graph's
state rejects (e.g. an edge whose endpoint is missing) exits 1 without
applying anything.

``fsck`` runs the durability invariant checker
(:mod:`repro.graph.fsck`) over a graph — optionally the graph
recovered from ``--wal-dir`` — and exits non-zero on any violation.

Exit codes are the shared taxonomy from :mod:`repro.errors`:
0 ok, 1 usage-or-lint, 2 governor-abort, 3 accsan-violation.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Any, List, Optional, Tuple

from .core.explain import explain_query
from .core.validate import validate_query
from .core.pattern import EngineMode
from .core.values import Table
from .darpe.automaton import CompiledDarpe
from .enumeration import match_counts
from .errors import EXIT_ABORT, EXIT_ACCSAN, EXIT_OK, EXIT_USAGE
from .graph.io import load_graph_json, save_graph_json
from .gsql import parse_query
from .ldbc import generate_snb_graph
from .paths import PathSemantics, single_source_sdmc

_ENGINES = {
    "counting": lambda: EngineMode.counting(),
    "auto": lambda: EngineMode.auto(),
    "nre": lambda: EngineMode.enumeration(PathSemantics.NO_REPEATED_EDGE),
    "nrv": lambda: EngineMode.enumeration(PathSemantics.NO_REPEATED_VERTEX),
    "asp-enum": lambda: EngineMode.enumeration(PathSemantics.ALL_SHORTEST),
}


def _parse_param(text: str) -> tuple:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"parameters take the form name=value, got {text!r}"
        )
    name, raw = text.split("=", 1)
    for caster in (int, float):
        try:
            return name, caster(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return name, raw.lower() == "true"
    return name, raw


def _read_source(path: str) -> str:
    """Read a file, or exit 1 with a one-line error on an unreadable
    path (no traceback) — the shared error path for every subcommand."""
    try:
        with open(path) as fh:
            return fh.read()
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"{path}: {reason}", file=sys.stderr)
        raise SystemExit(EXIT_USAGE)


def _load_query(path: str):
    """Read and parse a ``CREATE QUERY`` file via :func:`_read_source`."""
    return parse_query(_read_source(path))


def _load_graph(path: str):
    """Load a JSON graph, or exit 1 with a one-line diagnostic on a
    missing or malformed file (no traceback) — the graph-side twin of
    :func:`_read_source`.  :func:`~repro.graph.io.load_graph_json`
    raises :class:`~repro.errors.GraphError` with the offending
    path/line already in the message, so this just routes it to stderr.
    """
    from .errors import GraphError

    try:
        return load_graph_json(path)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"{path}: {reason}", file=sys.stderr)
        raise SystemExit(EXIT_USAGE)
    except GraphError as exc:
        print(f"{path}: {exc}", file=sys.stderr)
        raise SystemExit(EXIT_USAGE)


def _recover_graph_or_exit(wal_dir: str, base: Any):
    """Replay ``wal_dir`` over ``base`` for read-only subcommands, or
    exit 1 on a corrupt/unreplayable log (no traceback).  ``heal=False``
    keeps these subcommands strictly read-only: a torn tail is skipped
    during replay but only a writer open truncates it on disk."""
    from .errors import MutationError, WalCorruptionError
    from .graph.mutation import recover_graph

    try:
        graph, _report = recover_graph(wal_dir, base=base, heal=False)
    except (OSError, MutationError, WalCorruptionError) as exc:
        print(f"{wal_dir}: {exc}", file=sys.stderr)
        raise SystemExit(EXIT_USAGE)
    return graph


def _load_runnable(path: str, graph: Any, no_compile: bool, fresh: bool = False):
    """The runnable for ``run``/``profile``: the interpreted query under
    ``--no-compile``, else the compiled plan from the process-wide plan
    cache (a cold CLI process always misses; ``repro serve`` is where
    the cache pays off across requests).  The miss path lowers the
    query object :func:`_load_query` returns, so anything stamped on it
    (certificates, test fixtures) reaches the compiled plan.

    ``fresh=True`` skips the cache lookup (the new plan still replaces
    the cached entry): sanitized runs cross-examine the certificates
    stamped on *this* invocation's parsed query, so they must never
    reuse a plan carrying another invocation's stamps."""
    if no_compile:
        return _load_query(path)
    from .compile import compile_query, plan_cache

    text = _read_source(path)
    schema = getattr(graph, "schema", None)
    cache = plan_cache()
    plan = None if fresh else cache.lookup(text, schema=schema)
    if plan is None:
        plan = compile_query(_load_query(path), schema=schema)
        plan.cache_status = "miss"
        cache.insert(text, plan, schema=schema)
    return plan


def _print_value(value: Any) -> str:
    if isinstance(value, Table):
        lines = ["  " + " | ".join(value.columns)]
        for row in value:
            lines.append("  " + " | ".join(str(c) for c in row))
        return "\n".join(lines)
    return f"  {value!r}"


def _build_governor(args: argparse.Namespace, graph: Any = None, query: Any = None):
    """An :class:`ExecutionGovernor` from the budget flags, or None when
    no flag was given (so ungoverned runs stay on the zero-cost path).

    Under ``--auto-budget`` the caps derive from the query's cost
    certificate re-stamped with ``graph``'s statistics (predicted upper
    bound x ``--headroom``); explicit flags still win slot-by-slot, so
    ``--auto-budget --max-paths N`` pins paths at N while the remaining
    caps stay predicted.
    """
    from .governor import Budget, ExecutionGovernor

    auto = Budget()
    if getattr(args, "auto_budget", False) and graph is not None:
        from .core.tractable import attach_cost_certificates
        from .graph.stats import stats_snapshot

        target = getattr(query, "query", query)  # unwrap CompiledQuery
        attach_cost_certificates(
            target, schema=getattr(graph, "schema", None),
            stats=stats_snapshot(graph),
        )
        auto = ExecutionGovernor.from_certificate(
            target.cost_certificate, headroom=args.headroom
        ).budget

    def pick(explicit, slot):
        return explicit if explicit is not None else getattr(auto, slot)

    budget = Budget(
        deadline_seconds=args.timeout,
        max_acc_executions=pick(args.max_acc_execs, "max_acc_executions"),
        max_product_states=pick(
            args.max_product_states, "max_product_states"
        ),
        max_paths=pick(args.max_paths, "max_paths"),
        max_accum_bytes=pick(args.max_accum_bytes, "max_accum_bytes"),
        max_while_iterations=args.max_while_iters,
    )
    if budget.is_unlimited:
        return None
    return ExecutionGovernor(budget)


def _print_abort(exc) -> None:
    reason = getattr(exc.reason, "value", exc.reason)
    print(
        f"aborted: reason={reason} limit={exc.limit_name}="
        f"{exc.limit_value} observed={exc.observed} "
        f"elapsed={exc.elapsed_seconds:.3f}s",
        file=sys.stderr,
    )


def cmd_run(args: argparse.Namespace) -> int:
    import contextlib

    from .errors import AccSanViolation, QueryAbortedError
    from .governor import govern

    graph = _load_graph(args.graph)
    if args.wal_dir:
        graph = _recover_graph_or_exit(args.wal_dir, graph)
    query = _load_runnable(
        args.query_file, graph, args.no_compile, fresh=args.sanitize
    )
    mode = _ENGINES[args.engine]()
    params = dict(args.param or [])
    governor = _build_governor(args, graph=graph, query=query)
    sanitizer_scope: Any = contextlib.nullcontext(None)
    if args.sanitize:
        from . import accsan

        sanitizer_scope = accsan.sanitize(schedules=args.sanitize_schedules)
    try:
        with govern(governor), sanitizer_scope as sanitizer:
            result = query.run(graph, mode=mode, **params)
    except QueryAbortedError as exc:
        _print_abort(exc)
        return EXIT_ABORT
    except AccSanViolation as exc:
        print(f"AccSan violation: {exc}", file=sys.stderr)
        return EXIT_ACCSAN
    if sanitizer is not None:
        print(sanitizer.report(), file=sys.stderr)
    for record in result.printed:
        for key, value in record.items():
            print(f"{key}:")
            if isinstance(value, list):
                for row in value:
                    print(f"  {row}")
            else:
                print(f"  {value}")
    for name, table in result.tables.items():
        print(f"table {name} ({len(table)} rows):")
        print(_print_value(table))
    if result.returned is not None:
        print("returned:")
        print(_print_value(result.returned))
    return EXIT_OK


def cmd_explain(args: argparse.Namespace) -> int:
    from .analysis.cost import analyze_cost
    from .analysis.model import cached_model

    schema, stats = _load_lint_schema(
        getattr(args, "graph", None), with_stats=True
    )
    query = _load_query(args.query_file)
    print(explain_query(query))
    cost = analyze_cost(cached_model(query, schema), stats=stats)
    print()
    print(f"COST query: {cost.query_certificate.describe()}")
    for block_fact, cert in cost.blocks:
        at = f"L{block_fact.span.line}" if block_fact.span else "block"
        print(f"COST {at}: {cert.describe()}")
    if not args.no_compile:
        from .compile import compile_query

        print()
        print(compile_query(query).describe())
    issues = validate_query(query)
    if issues:
        print("\nvalidation issues:")
        for issue in issues:
            print(f"  {issue}")
        return EXIT_USAGE
    return EXIT_OK


def cmd_profile(args: argparse.Namespace) -> int:
    from .obs import profile_query

    graph = _load_graph(args.graph)
    query = _load_runnable(args.query_file, graph, args.no_compile)
    mode = _ENGINES[args.engine]()
    params = dict(args.param or [])
    governor = _build_governor(args, graph=graph, query=query)
    # Stamp closed-form cost certificates so the report's predicted-vs-
    # observed section compares against this graph's statistics.
    from .core.tractable import attach_cost_certificates
    from .graph.stats import stats_snapshot

    attach_cost_certificates(
        getattr(query, "query", query),
        schema=getattr(graph, "schema", None), stats=stats_snapshot(graph),
    )
    report = profile_query(query, graph, mode=mode, governor=governor, **params)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    if governor is not None and governor.aborted is not None:
        _print_abort(governor.aborted)
        return EXIT_ABORT
    return EXIT_OK


def cmd_validate(args: argparse.Namespace) -> int:
    schema = None
    if args.graph:
        # JSON graphs are schema-free; synthesize a schema from the types
        # actually present so pattern positions can be checked.
        from .graph.schema import GraphSchema

        graph = _load_graph(args.graph)
        schema = graph.schema or GraphSchema(graph.name)
        if graph.schema is None:
            for vtype in graph.vertex_types():
                schema.vertex(vtype)
            for etype in graph.edge_types():
                schema.edge(etype)
    query = _load_query(args.query_file)
    issues = validate_query(query, schema)
    for issue in issues:
        print(issue)
    if not issues:
        print("ok")
    return EXIT_USAGE if issues else EXIT_OK


# ----------------------------------------------------------------------
# lint
# ----------------------------------------------------------------------
_TRIPLE_QUOTED = re.compile(r'("""|\'\'\')(.*?)\1', re.S)


def _gsql_units(path: str) -> List[Tuple[str, str]]:
    """(label, gsql_text) units found at ``path``.

    ``.gsql`` files contribute their whole text; ``.py`` files contribute
    every triple-quoted string containing ``CREATE QUERY``; directories
    are walked recursively for both.
    """
    units: List[Tuple[str, str]] = []
    if os.path.isdir(path):
        for root, _dirs, files in sorted(os.walk(path)):
            for fname in sorted(files):
                if fname.endswith((".gsql", ".py")):
                    units.extend(_gsql_units(os.path.join(root, fname)))
        return units
    text = _read_source(path)
    if path.endswith(".py"):
        for index, match in enumerate(_TRIPLE_QUOTED.finditer(text)):
            body = match.group(2)
            if "CREATE QUERY" in body:
                units.append((f"{path}[{index}]", body))
    elif "CREATE QUERY" in text:
        units.append((path, text))
    return units


def _collect_units(paths: List[str]) -> List[Tuple[str, str]]:
    """All GSQL units under ``paths``; a missing path exits 1 with a
    one-line message (via :func:`_read_source`), like every subcommand."""
    units: List[Tuple[str, str]] = []
    for path in paths:
        found = _gsql_units(path)
        if not found and not os.path.isdir(path):
            print(f"{path}: no GSQL found", file=sys.stderr)
        units.extend(found)
    return units


def _load_lint_schema(graph_path: Optional[str], with_stats: bool = False):
    """Schema synthesized from a JSON graph — and, with ``with_stats``,
    the :class:`~repro.graph.stats.GraphStatsSnapshot` the cost analysis
    turns into closed-form bounds (one graph load covers both)."""
    if not graph_path:
        return (None, None) if with_stats else None
    from .graph.schema import GraphSchema

    graph = _load_graph(graph_path)
    schema = graph.schema or GraphSchema(graph.name)
    if graph.schema is None:
        for vtype in graph.vertex_types():
            schema.vertex(vtype)
        for etype in graph.edge_types():
            schema.edge(etype)
    if with_stats:
        from .graph.stats import stats_snapshot

        return schema, stats_snapshot(graph)
    return schema


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import Severity, analyze
    from .analysis.diagnostics import Diagnostic
    from .core.span import Span
    from .errors import GSQLSyntaxError, QueryCompileError
    from .gsql import parse_queries

    schema, stats = _load_lint_schema(args.graph, with_stats=True)
    units = _collect_units(args.paths)

    records: List[dict] = []
    errors = warnings = 0
    rendered: List[str] = []
    for label, source in units:
        try:
            queries = parse_queries(source)
        except (GSQLSyntaxError, QueryCompileError) as exc:
            span = None
            if isinstance(exc, GSQLSyntaxError) and exc.line > 0:
                span = Span.at(exc.line, max(exc.column, 1))
            diag = Diagnostic(
                "GSQL-E000", Severity.ERROR, str(exc), span,
                rule_name="syntax-error",
            )
            errors += 1
            rendered.append(diag.render(source, label))
            records.append({"file": label, "query": None, **diag.to_dict()})
            continue
        for name, query in queries.items():
            for diag in analyze(
                query, schema=schema, source=source, stats=stats
            ):
                if diag.is_error:
                    errors += 1
                else:
                    warnings += 1
                rendered.append(diag.render(source, f"{label}:{name}"))
                records.append(
                    {"file": label, "query": name, **diag.to_dict()}
                )

    if args.format == "json":
        print(json.dumps(
            {"errors": errors, "warnings": warnings, "diagnostics": records},
            indent=2,
        ))
    else:
        for text in rendered:
            print(text)
        checked = len(units)
        print(
            f"{checked} source{'s' if checked != 1 else ''} checked: "
            f"{errors} error{'s' if errors != 1 else ''}, "
            f"{warnings} warning{'s' if warnings != 1 else ''}"
        )
    return EXIT_USAGE if errors else EXIT_OK


# ----------------------------------------------------------------------
# check (flow-sensitive analysis + certificates)
# ----------------------------------------------------------------------
def _fmt_interval(pair) -> str:
    """``[lo, hi]`` rendering for a serialized interval (None = inf)."""
    lo, hi = pair
    return f"[{lo}, {'inf' if hi is None else hi}]"
def check_units(
    units: List[Tuple[str, str]], schema=None, stats=None
) -> Tuple[dict, List[str], List[str]]:
    """Run the full analyzer + dataflow over GSQL units.

    Returns ``(payload, rendered_diagnostics, dot_graphs)`` where
    ``payload`` is the JSON document ``repro check --format json``
    prints; the CI baseline guard (``benchmarks/check_dataflow_baseline``)
    imports this directly.  ``stats`` (a
    :class:`~repro.graph.stats.GraphStatsSnapshot`) turns the payload's
    ``cost`` certificates from structural bounds into closed-form ones.
    """
    from .analysis import Severity, analyze
    from .analysis.cost import analyze_cost
    from .analysis.dataflow import analyze_dataflow, block_certificates
    from .analysis.diagnostics import Diagnostic
    from .analysis.effects import analyze_effects
    from .analysis.model import cached_model
    from .core.span import Span
    from .errors import GSQLSyntaxError, QueryCompileError
    from .gsql import parse_queries

    records: List[dict] = []
    certificates: List[dict] = []
    effects: List[dict] = []
    costs: List[dict] = []
    query_summaries: List[dict] = []
    rendered: List[str] = []
    dot_graphs: List[str] = []
    errors = warnings = 0
    for label, source in units:
        try:
            queries = parse_queries(source)
        except (GSQLSyntaxError, QueryCompileError) as exc:
            span = None
            if isinstance(exc, GSQLSyntaxError) and exc.line > 0:
                span = Span.at(exc.line, max(exc.column, 1))
            diag = Diagnostic(
                "GSQL-E000", Severity.ERROR, str(exc), span,
                rule_name="syntax-error",
            )
            errors += 1
            rendered.append(diag.render(source, label))
            records.append({"file": label, "query": None, **diag.to_dict()})
            continue
        for name, query in queries.items():
            for diag in analyze(
                query, schema=schema, source=source, stats=stats
            ):
                if diag.is_error:
                    errors += 1
                else:
                    warnings += 1
                rendered.append(diag.render(source, f"{label}:{name}"))
                records.append(
                    {"file": label, "query": name, **diag.to_dict()}
                )
            model = cached_model(query, schema)
            flow = analyze_dataflow(model)
            for block_fact, cert in block_certificates(model):
                certificates.append({
                    "file": label,
                    "query": name,
                    "line": block_fact.span.line if block_fact.span else None,
                    "pattern": repr(block_fact.block.pattern),
                    "status": cert.status.value,
                    "witnesses": list(cert.witnesses),
                })
            for block_fact, summary, cert in analyze_effects(model).blocks:
                effects.append({
                    "file": label,
                    "query": name,
                    "line": block_fact.span.line if block_fact.span else None,
                    "pattern": repr(block_fact.block.pattern),
                    "status": cert.status.value,
                    "delta_maintainable": cert.delta_maintainable,
                    "witnesses": list(cert.witnesses),
                    "writes": sorted(
                        ("@@" if g else "@") + n
                        for g, n in summary.written_keys
                    ),
                })
            cost = analyze_cost(model, stats=stats)
            for block_fact, cost_cert in cost.blocks:
                costs.append({
                    "file": label,
                    "query": name,
                    "line": block_fact.span.line if block_fact.span else None,
                    "pattern": repr(block_fact.block.pattern),
                    **cost_cert.to_dict(),
                })
            query_summaries.append({
                "file": label,
                "query": name,
                "converged": flow.converged,
                "iterations": flow.iterations,
                "cfg_nodes": len(flow.cfg.nodes),
                "accumulators": {
                    ("@@" if key[0] else "@") + key[1]: flow.state_names(key)
                    for key in sorted(flow.keys, key=lambda k: (not k[0], k[1]))
                },
                "cost": cost.query_certificate.to_dict(),
            })
            dot_graphs.append(flow.cfg.to_dot(f"{name}"))
    payload = {
        "errors": errors,
        "warnings": warnings,
        "diagnostics": records,
        "certificates": certificates,
        "effects": effects,
        "cost": costs,
        "queries": query_summaries,
    }
    return payload, rendered, dot_graphs


def cmd_check(args: argparse.Namespace) -> int:
    schema, stats = _load_lint_schema(args.graph, with_stats=True)
    units = _collect_units(args.paths)
    payload, rendered, dot_graphs = check_units(units, schema, stats=stats)

    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write("\n".join(dot_graphs))
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for text in rendered:
            print(text)
        for cert in payload["certificates"]:
            line = f":{cert['line']}" if cert["line"] else ""
            print(
                f"{cert['file']}:{cert['query']}{line}: certificate "
                f"{cert['status']} [{cert['pattern']}]"
            )
            for witness in cert["witnesses"]:
                print(f"  * {witness}")
        if getattr(args, "effects", False):
            for eff in payload["effects"]:
                line = f":{eff['line']}" if eff["line"] else ""
                delta = " delta-maintainable" if eff["delta_maintainable"] else ""
                print(
                    f"{eff['file']}:{eff['query']}{line}: effects "
                    f"{eff['status']}{delta} [{eff['pattern']}] "
                    f"writes {', '.join(eff['writes']) or '(none)'}"
                )
                for witness in eff["witnesses"]:
                    print(f"  * {witness}")
        if getattr(args, "cost", False):
            for row in payload["cost"]:
                line = f":{row['line']}" if row["line"] else ""
                bounds = " ".join(
                    f"{metric}={_fmt_interval(row[metric])}"
                    for metric in (
                        "frontier", "product_states", "paths",
                        "acc_executions", "accum_bytes",
                    )
                )
                print(
                    f"{row['file']}:{row['query']}{line}: cost "
                    f"{row['confidence']} {bounds} [{row['pattern']}]"
                )
                for witness in row["witnesses"]:
                    print(f"  * {witness}")
        diverged = [q for q in payload["queries"] if not q["converged"]]
        for q in diverged:
            print(
                f"{q['file']}:{q['query']}: dataflow solver did NOT "
                f"converge after {q['iterations']} iterations",
                file=sys.stderr,
            )
        checked = len(units)
        errors, warnings = payload["errors"], payload["warnings"]
        print(
            f"{checked} source{'s' if checked != 1 else ''} checked: "
            f"{errors} error{'s' if errors != 1 else ''}, "
            f"{warnings} warning{'s' if warnings != 1 else ''}, "
            f"{len(payload['certificates'])} certificate"
            f"{'s' if len(payload['certificates']) != 1 else ''}"
        )
    return EXIT_USAGE if payload["errors"] else EXIT_OK


def cmd_generate_snb(args: argparse.Namespace) -> int:
    graph = generate_snb_graph(scale_factor=args.scale, seed=args.seed)
    save_graph_json(graph, args.output)
    summary = graph.summary()
    print(json.dumps(summary))
    return EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    """Start the fault-tolerant query service (see repro.server)."""
    from .errors import GraphError, WalCorruptionError
    from .server import QueryService, RetryPolicy
    from .server.app import serve

    graph_paths = {}
    for spec in args.graph or []:
        name, _, path = spec.rpartition("=")
        if not name:
            name, path = "default", spec
        graph_paths[name] = path
    if not graph_paths:
        print("serve needs at least one --graph [name=]PATH", file=sys.stderr)
        return EXIT_USAGE
    graphs = None
    if args.pool_mode == "thread":
        graphs = {
            name: _load_graph(path)
            for name, path in sorted(graph_paths.items())
        }
    try:
        service = QueryService(
            graphs=graphs,
            graph_paths=graph_paths,
            pool_size=args.workers,
            pool_mode=args.pool_mode,
            max_queue_depth=args.max_queue_depth,
            max_tenant_inflight=args.max_tenant_inflight,
            retry=RetryPolicy(
                max_attempts=args.max_attempts, seed=args.retry_seed
            ),
            compile_enabled=not args.no_compile,
            wal_dir=args.wal_dir,
            wal_fsync=not args.no_fsync,
        )
    except (OSError, ValueError, GraphError, WalCorruptionError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(
        f"repro serve: {args.pool_mode} pool x{args.workers} on "
        f"http://{args.host}:{args.port} "
        f"(graphs: {', '.join(sorted(graph_paths))})",
        file=sys.stderr,
    )
    serve(service, host=args.host, port=args.port)
    return EXIT_OK


def cmd_semantics(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    darpe = CompiledDarpe.parse(args.darpe)
    source: Any = args.source
    if source not in graph:
        try:
            source = int(args.source)
        except ValueError:
            pass
    if args.semantics == "all-shortest-paths":
        found = single_source_sdmc(graph, source, darpe)
        rows = {vid: res.count for vid, res in found.items()}
    else:
        semantics = PathSemantics(args.semantics)
        rows = match_counts(
            graph, source, darpe, semantics,
            max_length=args.max_length, budget=args.budget,
        )
    for target, count in sorted(rows.items(), key=lambda kv: str(kv[0])):
        print(f"{target}\t{count}")
    return EXIT_OK


def cmd_ingest(args: argparse.Namespace) -> int:
    """Apply a JSON mutation batch to a graph, WAL-committed when
    ``--wal-dir`` is given (see docs/robustness.md, "Durability &
    mutation")."""
    from .errors import (
        GraphError,
        MutationConflictError,
        MutationError,
        WalCorruptionError,
    )
    from .graph.mutation import GraphStore, MutationBatch

    if not args.graph and not args.wal_dir:
        print("ingest needs --graph and/or --wal-dir", file=sys.stderr)
        return EXIT_USAGE
    base = _load_graph(args.graph) if args.graph else None
    try:
        doc = json.loads(_read_source(args.batch))
    except ValueError as exc:
        print(f"{args.batch}: invalid JSON: {exc}", file=sys.stderr)
        return EXIT_USAGE
    ops = doc.get("ops") if isinstance(doc, dict) else doc
    if not isinstance(ops, list) or not ops:
        print(
            f'{args.batch}: expected a JSON array of ops or {{"ops": [...]}}',
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        batch = MutationBatch.from_ops(ops)
    except (TypeError, ValueError) as exc:
        print(f"{args.batch}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        if args.wal_dir:
            store = GraphStore.open(
                args.wal_dir, base=base, fsync=not args.no_fsync
            )
        else:
            store = GraphStore(base)
        with store:
            result = store.apply(batch)
            # Without a WAL the only durable artifact is the JSON graph
            # itself, so write it back (atomically) unless redirected.
            out = args.out or (None if args.wal_dir else args.graph)
            if out:
                save_graph_json(store.live, out)
    except MutationConflictError as exc:
        print(f"conflict: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (OSError, MutationError, WalCorruptionError, GraphError) as exc:
        print(f"ingest: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(json.dumps({
        "epoch": result.epoch, "ops": result.ops, "durable": result.durable,
    }))
    return EXIT_OK


def cmd_fsck(args: argparse.Namespace) -> int:
    """Run the durability invariant checker; exit 1 on any violation."""
    from .errors import MutationError, WalCorruptionError
    from .graph.fsck import fsck_graph

    if not args.graph and not args.wal_dir:
        print("fsck needs --graph and/or --wal-dir", file=sys.stderr)
        return EXIT_USAGE
    graph = _load_graph(args.graph) if args.graph else None
    if args.wal_dir:
        graph = _recover_graph_or_exit(args.wal_dir, graph)
    try:
        report = fsck_graph(graph, wal_dir=args.wal_dir)
    except (OSError, MutationError, WalCorruptionError) as exc:
        print(f"fsck: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for violation in report.violations:
            print(f"{violation.check}: {violation.detail}")
        verdict = (
            "ok" if report.ok
            else f"{len(report.violations)} violation"
                 f"{'s' if len(report.violations) != 1 else ''}"
        )
        print(
            f"fsck: {len(report.checks)} checks over {report.vertices} "
            f"vertices / {report.edges} edges: {verdict}"
        )
    return EXIT_OK if report.ok else EXIT_USAGE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_no_compile_flag(p: argparse.ArgumentParser, help_text: str) -> None:
        p.add_argument("--no-compile", action="store_true", help=help_text)

    def add_governor_flags(p: argparse.ArgumentParser) -> None:
        gov = p.add_argument_group(
            "execution governor",
            "per-query budget; exceeding a limit aborts with exit code 2 "
            "(certified-tractable blocks degrade instead — see "
            "docs/robustness.md)",
        )
        gov.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="wall-clock deadline for the whole query",
        )
        gov.add_argument(
            "--max-paths", type=int, default=None, metavar="N",
            help="cap on paths materialized by the enumeration engine",
        )
        gov.add_argument(
            "--max-acc-execs", type=int, default=None, metavar="N",
            help="cap on ACCUM acc-executions across the query",
        )
        gov.add_argument(
            "--max-product-states", type=int, default=None, metavar="N",
            help="cap on SDMC product states visited",
        )
        gov.add_argument(
            "--max-accum-bytes", type=int, default=None, metavar="N",
            help="cap on estimated accumulator memory",
        )
        gov.add_argument(
            "--max-while-iters", type=int, default=None, metavar="N",
            help="soft per-loop WHILE iteration cap (stops with a warning)",
        )
        gov.add_argument(
            "--auto-budget", action="store_true",
            help="derive the caps from the query's static cost "
                 "certificate against this graph's statistics "
                 "(predicted upper bound x headroom; explicit flags "
                 "win slot-by-slot)",
        )
        gov.add_argument(
            "--headroom", type=float, default=2.0, metavar="X",
            help="--auto-budget multiplier over the predicted bound "
                 "(default 2.0)",
        )

    run_p = sub.add_parser("run", help="run a GSQL query file against a JSON graph")
    run_p.add_argument("query_file")
    run_p.add_argument("--graph", required=True)
    run_p.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="replay this write-ahead log over the graph before running "
             "(read-only: a torn tail is skipped, not healed)",
    )
    run_p.add_argument("--engine", choices=sorted(_ENGINES), default="counting")
    run_p.add_argument(
        "--param", action="append", type=_parse_param, metavar="NAME=VALUE"
    )
    run_p.add_argument(
        "--sanitize", action="store_true",
        help="run under AccSan: replay every Reduce phase under permuted "
             "schedules; exit 3 if a COMMUTATIVE-certified block diverges",
    )
    run_p.add_argument(
        "--sanitize-schedules", type=int, default=8, metavar="K",
        help="number of permuted schedules per Reduce phase (default 8)",
    )
    add_no_compile_flag(
        run_p,
        "execute through the interpreter instead of the plan cache + "
        "compiled path (result-identical; see docs/compilation.md)",
    )
    add_governor_flags(run_p)
    run_p.set_defaults(fn=cmd_run)

    explain_p = sub.add_parser("explain", help="print a query's evaluation plan")
    explain_p.add_argument("query_file")
    explain_p.add_argument(
        "--graph", default=None,
        help="JSON graph whose statistics turn the COST lines from "
             "structural bounds into closed-form predictions",
    )
    add_no_compile_flag(
        explain_p, "omit the COMPILED plan summary from the output"
    )
    explain_p.set_defaults(fn=cmd_explain)

    profile_p = sub.add_parser(
        "profile",
        help="EXPLAIN ANALYZE: run a query and report per-block timings "
             "and engine counters",
    )
    profile_p.add_argument("query_file")
    profile_p.add_argument("--graph", required=True)
    profile_p.add_argument("--engine", choices=sorted(_ENGINES), default="counting")
    profile_p.add_argument(
        "--param", action="append", type=_parse_param, metavar="NAME=VALUE"
    )
    profile_p.add_argument("--format", choices=("text", "json"), default="text")
    profile_p.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON trace to PATH",
    )
    add_no_compile_flag(
        profile_p,
        "profile the interpreted path instead of the compiled one "
        "(the report's execution field says which ran)",
    )
    add_governor_flags(profile_p)
    profile_p.set_defaults(fn=cmd_profile)

    validate_p = sub.add_parser(
        "validate", help="statically check a query (optionally against a graph)"
    )
    validate_p.add_argument("query_file")
    validate_p.add_argument("--graph", default=None)
    validate_p.set_defaults(fn=cmd_validate)

    lint_p = sub.add_parser(
        "lint",
        help="run the static-analysis rules over GSQL files or directories",
    )
    lint_p.add_argument(
        "paths", nargs="+", metavar="PATH",
        help=".gsql file, .py file with embedded GSQL, or a directory",
    )
    lint_p.add_argument("--graph", default=None,
                        help="JSON graph for schema-aware checks")
    lint_p.add_argument("--format", choices=("text", "json"), default="text")
    lint_p.set_defaults(fn=cmd_lint)

    check_p = sub.add_parser(
        "check",
        help="flow-sensitive dataflow analysis: lint diagnostics plus "
             "per-block tractability certificates and CFG export",
    )
    check_p.add_argument(
        "paths", nargs="+", metavar="PATH",
        help=".gsql file, .py file with embedded GSQL, or a directory",
    )
    check_p.add_argument("--graph", default=None,
                         help="JSON graph for schema-aware checks")
    check_p.add_argument("--format", choices=("text", "json"), default="text")
    check_p.add_argument(
        "--dot", default=None, metavar="PATH",
        help="write the control-flow graphs as Graphviz dot to PATH",
    )
    check_p.add_argument(
        "--effects", action="store_true",
        help="also print the per-block effect/commutativity certificates "
             "(always present in the JSON payload)",
    )
    check_p.add_argument(
        "--cost", action="store_true",
        help="also print the per-block cost certificates — predicted "
             "cardinality/memory intervals, closed-form when --graph "
             "supplies statistics (always present in the JSON payload)",
    )
    check_p.set_defaults(fn=cmd_check)

    gen_p = sub.add_parser("generate-snb", help="write an SNB-like graph as JSON")
    gen_p.add_argument("output")
    gen_p.add_argument("--scale", type=float, default=0.1)
    gen_p.add_argument("--seed", type=int, default=42)
    gen_p.set_defaults(fn=cmd_generate_snb)

    serve_p = sub.add_parser(
        "serve",
        help="run the fault-tolerant HTTP query service (see docs/robustness.md)",
    )
    serve_p.add_argument(
        "--graph",
        action="append",
        metavar="[NAME=]PATH",
        help="JSON graph to serve (repeatable; bare PATH mounts as 'default')",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8080)
    serve_p.add_argument(
        "--workers", type=int, default=4, help="worker pool size"
    )
    serve_p.add_argument(
        "--pool-mode",
        choices=["process", "thread"],
        default="process",
        help="worker transport: isolated processes (default) or in-process threads",
    )
    serve_p.add_argument("--max-queue-depth", type=int, default=16)
    serve_p.add_argument("--max-tenant-inflight", type=int, default=8)
    serve_p.add_argument(
        "--max-attempts", type=int, default=3, help="retry attempt cap"
    )
    serve_p.add_argument(
        "--retry-seed", type=int, default=0, help="jitter determinism seed"
    )
    serve_p.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="durable ingestion: each graph gets a write-ahead log under "
             "DIR/<name>; POST /ingest batches survive crashes",
    )
    serve_p.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on WAL commit (faster, loses the power-failure "
             "guarantee; process-crash durability is unaffected)",
    )
    add_no_compile_flag(
        serve_p,
        "disable the worker-side plan cache + compiled execution for "
        "every request (requests cannot re-enable it)",
    )
    serve_p.set_defaults(fn=cmd_serve)

    ingest_p = sub.add_parser(
        "ingest",
        help="apply a JSON mutation batch to a graph (WAL-committed "
             "with --wal-dir; see docs/robustness.md)",
    )
    ingest_p.add_argument(
        "batch", metavar="BATCH",
        help='JSON file: an array of op documents or {"ops": [...]}',
    )
    ingest_p.add_argument(
        "--graph", default=None,
        help="base JSON graph (updated in place — atomically — unless "
             "--wal-dir or --out is given)",
    )
    ingest_p.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="write-ahead log directory: recover it first, then commit "
             "the batch durably",
    )
    ingest_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the post-batch graph as JSON to PATH",
    )
    ingest_p.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on WAL commit",
    )
    ingest_p.set_defaults(fn=cmd_ingest)

    fsck_p = sub.add_parser(
        "fsck",
        help="check graph/WAL durability invariants; exit 1 on violations",
    )
    fsck_p.add_argument(
        "--graph", default=None, help="JSON graph to check"
    )
    fsck_p.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="replay this write-ahead log over the graph (read-only) "
             "and cross-check its epoch",
    )
    fsck_p.add_argument("--format", choices=("text", "json"), default="text")
    fsck_p.set_defaults(fn=cmd_fsck)

    sem_p = sub.add_parser(
        "semantics", help="per-target match counts for a DARPE from a source"
    )
    sem_p.add_argument("graph")
    sem_p.add_argument("source")
    sem_p.add_argument("darpe")
    sem_p.add_argument(
        "--semantics",
        choices=[s.value for s in PathSemantics],
        default="all-shortest-paths",
    )
    sem_p.add_argument("--max-length", type=int, default=None)
    sem_p.add_argument("--budget", type=int, default=None)
    sem_p.set_defaults(fn=cmd_semantics)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
