"""Command-line interface: run GSQL files against graphs on disk.

Subcommands::

    python -m repro run QUERY.gsql --graph graph.json [--param k=5] ...
    python -m repro explain QUERY.gsql
    python -m repro generate-snb out.json --scale 0.5 --seed 42
    python -m repro semantics GRAPH.json SOURCE DARPE [--semantics ...]

``run`` executes a ``CREATE QUERY`` file against a JSON graph (see
``repro.graph.io``), prints PRINT output and result tables, and can
switch engines with ``--engine counting|nre|nrv|asp-enum``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from .core.explain import explain_query
from .core.validate import validate_query
from .core.pattern import EngineMode
from .core.values import Table
from .darpe.automaton import CompiledDarpe
from .enumeration import match_counts
from .graph.io import load_graph_json, save_graph_json
from .gsql import parse_query
from .ldbc import generate_snb_graph
from .paths import PathSemantics, single_source_sdmc

_ENGINES = {
    "counting": lambda: EngineMode.counting(),
    "nre": lambda: EngineMode.enumeration(PathSemantics.NO_REPEATED_EDGE),
    "nrv": lambda: EngineMode.enumeration(PathSemantics.NO_REPEATED_VERTEX),
    "asp-enum": lambda: EngineMode.enumeration(PathSemantics.ALL_SHORTEST),
}


def _parse_param(text: str) -> tuple:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"parameters take the form name=value, got {text!r}"
        )
    name, raw = text.split("=", 1)
    for caster in (int, float):
        try:
            return name, caster(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return name, raw.lower() == "true"
    return name, raw


def _print_value(value: Any) -> str:
    if isinstance(value, Table):
        lines = ["  " + " | ".join(value.columns)]
        for row in value:
            lines.append("  " + " | ".join(str(c) for c in row))
        return "\n".join(lines)
    return f"  {value!r}"


def cmd_run(args: argparse.Namespace) -> int:
    graph = load_graph_json(args.graph)
    with open(args.query_file) as fh:
        query = parse_query(fh.read())
    mode = _ENGINES[args.engine]()
    params = dict(args.param or [])
    result = query.run(graph, mode=mode, **params)
    for record in result.printed:
        for key, value in record.items():
            print(f"{key}:")
            if isinstance(value, list):
                for row in value:
                    print(f"  {row}")
            else:
                print(f"  {value}")
    for name, table in result.tables.items():
        print(f"table {name} ({len(table)} rows):")
        print(_print_value(table))
    if result.returned is not None:
        print("returned:")
        print(_print_value(result.returned))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    with open(args.query_file) as fh:
        query = parse_query(fh.read())
    print(explain_query(query))
    issues = validate_query(query)
    if issues:
        print("\nvalidation issues:")
        for issue in issues:
            print(f"  {issue}")
        return 1
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    schema = None
    if args.graph:
        # JSON graphs are schema-free; synthesize a schema from the types
        # actually present so pattern positions can be checked.
        from .graph.schema import GraphSchema

        graph = load_graph_json(args.graph)
        schema = graph.schema or GraphSchema(graph.name)
        if graph.schema is None:
            for vtype in graph.vertex_types():
                schema.vertex(vtype)
            for etype in graph.edge_types():
                schema.edge(etype)
    with open(args.query_file) as fh:
        query = parse_query(fh.read())
    issues = validate_query(query, schema)
    for issue in issues:
        print(issue)
    if not issues:
        print("ok")
    return 1 if issues else 0


def cmd_generate_snb(args: argparse.Namespace) -> int:
    graph = generate_snb_graph(scale_factor=args.scale, seed=args.seed)
    save_graph_json(graph, args.output)
    summary = graph.summary()
    print(json.dumps(summary))
    return 0


def cmd_semantics(args: argparse.Namespace) -> int:
    graph = load_graph_json(args.graph)
    darpe = CompiledDarpe.parse(args.darpe)
    source: Any = args.source
    if source not in graph:
        try:
            source = int(args.source)
        except ValueError:
            pass
    if args.semantics == "all-shortest-paths":
        found = single_source_sdmc(graph, source, darpe)
        rows = {vid: res.count for vid, res in found.items()}
    else:
        semantics = PathSemantics(args.semantics)
        rows = match_counts(
            graph, source, darpe, semantics,
            max_length=args.max_length, budget=args.budget,
        )
    for target, count in sorted(rows.items(), key=lambda kv: str(kv[0])):
        print(f"{target}\t{count}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a GSQL query file against a JSON graph")
    run_p.add_argument("query_file")
    run_p.add_argument("--graph", required=True)
    run_p.add_argument("--engine", choices=sorted(_ENGINES), default="counting")
    run_p.add_argument(
        "--param", action="append", type=_parse_param, metavar="NAME=VALUE"
    )
    run_p.set_defaults(fn=cmd_run)

    explain_p = sub.add_parser("explain", help="print a query's evaluation plan")
    explain_p.add_argument("query_file")
    explain_p.set_defaults(fn=cmd_explain)

    validate_p = sub.add_parser(
        "validate", help="statically check a query (optionally against a graph)"
    )
    validate_p.add_argument("query_file")
    validate_p.add_argument("--graph", default=None)
    validate_p.set_defaults(fn=cmd_validate)

    gen_p = sub.add_parser("generate-snb", help="write an SNB-like graph as JSON")
    gen_p.add_argument("output")
    gen_p.add_argument("--scale", type=float, default=0.1)
    gen_p.add_argument("--seed", type=int, default=42)
    gen_p.set_defaults(fn=cmd_generate_snb)

    sem_p = sub.add_parser(
        "semantics", help="per-target match counts for a DARPE from a source"
    )
    sem_p.add_argument("graph")
    sem_p.add_argument("source")
    sem_p.add_argument("darpe")
    sem_p.add_argument(
        "--semantics",
        choices=[s.value for s in PathSemantics],
        default="all-shortest-paths",
    )
    sem_p.add_argument("--max-length", type=int, default=None)
    sem_p.add_argument("--budget", type=int, default=None)
    sem_p.set_defaults(fn=cmd_semantics)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
