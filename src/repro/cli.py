"""Command-line interface: run GSQL files against graphs on disk.

Subcommands::

    python -m repro run QUERY.gsql --graph graph.json [--param k=5] ...
    python -m repro explain QUERY.gsql
    python -m repro profile QUERY.gsql --graph graph.json [--format json]
    python -m repro lint PATH... [--graph graph.json] [--format json]
    python -m repro generate-snb out.json --scale 0.5 --seed 42
    python -m repro semantics GRAPH.json SOURCE DARPE [--semantics ...]

``run`` executes a ``CREATE QUERY`` file against a JSON graph (see
``repro.graph.io``), prints PRINT output and result tables, and can
switch engines with ``--engine counting|nre|nrv|asp-enum``.

``profile`` is EXPLAIN ANALYZE: it runs the query under the
:mod:`repro.obs` collector and renders the span tree (per-block,
per-hop timings with binding-table rows/multiplicity) plus the engine
counter table, as text or JSON (``--output`` also writes the JSON trace
to a file for offline analysis).

``lint`` runs the :mod:`repro.analysis` rule set over ``.gsql`` files,
Python files embedding GSQL in triple-quoted strings, or directories of
either; it exits non-zero when any *error*-severity diagnostic (or parse
failure) is found, so it slots into CI.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Any, List, Optional, Tuple

from .core.explain import explain_query
from .core.validate import validate_query
from .core.pattern import EngineMode
from .core.values import Table
from .darpe.automaton import CompiledDarpe
from .enumeration import match_counts
from .graph.io import load_graph_json, save_graph_json
from .gsql import parse_query
from .ldbc import generate_snb_graph
from .paths import PathSemantics, single_source_sdmc

_ENGINES = {
    "counting": lambda: EngineMode.counting(),
    "nre": lambda: EngineMode.enumeration(PathSemantics.NO_REPEATED_EDGE),
    "nrv": lambda: EngineMode.enumeration(PathSemantics.NO_REPEATED_VERTEX),
    "asp-enum": lambda: EngineMode.enumeration(PathSemantics.ALL_SHORTEST),
}


def _parse_param(text: str) -> tuple:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"parameters take the form name=value, got {text!r}"
        )
    name, raw = text.split("=", 1)
    for caster in (int, float):
        try:
            return name, caster(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return name, raw.lower() == "true"
    return name, raw


def _load_query(path: str):
    """Read and parse a ``CREATE QUERY`` file, or exit 1 with a one-line
    error on an unreadable path (no traceback — mirrors ``repro lint``)."""
    try:
        with open(path) as fh:
            source = fh.read()
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"{path}: {reason}", file=sys.stderr)
        raise SystemExit(1)
    return parse_query(source)


def _print_value(value: Any) -> str:
    if isinstance(value, Table):
        lines = ["  " + " | ".join(value.columns)]
        for row in value:
            lines.append("  " + " | ".join(str(c) for c in row))
        return "\n".join(lines)
    return f"  {value!r}"


def cmd_run(args: argparse.Namespace) -> int:
    graph = load_graph_json(args.graph)
    query = _load_query(args.query_file)
    mode = _ENGINES[args.engine]()
    params = dict(args.param or [])
    result = query.run(graph, mode=mode, **params)
    for record in result.printed:
        for key, value in record.items():
            print(f"{key}:")
            if isinstance(value, list):
                for row in value:
                    print(f"  {row}")
            else:
                print(f"  {value}")
    for name, table in result.tables.items():
        print(f"table {name} ({len(table)} rows):")
        print(_print_value(table))
    if result.returned is not None:
        print("returned:")
        print(_print_value(result.returned))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    query = _load_query(args.query_file)
    print(explain_query(query))
    issues = validate_query(query)
    if issues:
        print("\nvalidation issues:")
        for issue in issues:
            print(f"  {issue}")
        return 1
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .obs import profile_query

    graph = load_graph_json(args.graph)
    query = _load_query(args.query_file)
    mode = _ENGINES[args.engine]()
    params = dict(args.param or [])
    report = profile_query(query, graph, mode=mode, **params)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    schema = None
    if args.graph:
        # JSON graphs are schema-free; synthesize a schema from the types
        # actually present so pattern positions can be checked.
        from .graph.schema import GraphSchema

        graph = load_graph_json(args.graph)
        schema = graph.schema or GraphSchema(graph.name)
        if graph.schema is None:
            for vtype in graph.vertex_types():
                schema.vertex(vtype)
            for etype in graph.edge_types():
                schema.edge(etype)
    query = _load_query(args.query_file)
    issues = validate_query(query, schema)
    for issue in issues:
        print(issue)
    if not issues:
        print("ok")
    return 1 if issues else 0


# ----------------------------------------------------------------------
# lint
# ----------------------------------------------------------------------
_TRIPLE_QUOTED = re.compile(r'("""|\'\'\')(.*?)\1', re.S)


def _gsql_units(path: str) -> List[Tuple[str, str]]:
    """(label, gsql_text) units found at ``path``.

    ``.gsql`` files contribute their whole text; ``.py`` files contribute
    every triple-quoted string containing ``CREATE QUERY``; directories
    are walked recursively for both.
    """
    units: List[Tuple[str, str]] = []
    if os.path.isdir(path):
        for root, _dirs, files in sorted(os.walk(path)):
            for fname in sorted(files):
                if fname.endswith((".gsql", ".py")):
                    units.extend(_gsql_units(os.path.join(root, fname)))
        return units
    with open(path) as fh:
        text = fh.read()
    if path.endswith(".py"):
        for index, match in enumerate(_TRIPLE_QUOTED.finditer(text)):
            body = match.group(2)
            if "CREATE QUERY" in body:
                units.append((f"{path}[{index}]", body))
    elif "CREATE QUERY" in text:
        units.append((path, text))
    return units


def _load_lint_schema(graph_path: Optional[str]):
    if not graph_path:
        return None
    from .graph.schema import GraphSchema

    graph = load_graph_json(graph_path)
    schema = graph.schema or GraphSchema(graph.name)
    if graph.schema is None:
        for vtype in graph.vertex_types():
            schema.vertex(vtype)
        for etype in graph.edge_types():
            schema.edge(etype)
    return schema


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import Severity, analyze
    from .analysis.diagnostics import Diagnostic
    from .core.span import Span
    from .errors import GSQLSyntaxError, QueryCompileError
    from .gsql import parse_queries

    schema = _load_lint_schema(args.graph)
    units: List[Tuple[str, str]] = []
    missing = False
    for path in args.paths:
        if not os.path.exists(path):
            print(f"{path}: no such file or directory", file=sys.stderr)
            missing = True
            continue
        found = _gsql_units(path)
        if not found and not os.path.isdir(path):
            print(f"{path}: no GSQL found", file=sys.stderr)
        units.extend(found)
    if missing:
        return 2

    records: List[dict] = []
    errors = warnings = 0
    rendered: List[str] = []
    for label, source in units:
        try:
            queries = parse_queries(source)
        except (GSQLSyntaxError, QueryCompileError) as exc:
            span = None
            if isinstance(exc, GSQLSyntaxError) and exc.line > 0:
                span = Span.at(exc.line, max(exc.column, 1))
            diag = Diagnostic(
                "GSQL-E000", Severity.ERROR, str(exc), span,
                rule_name="syntax-error",
            )
            errors += 1
            rendered.append(diag.render(source, label))
            records.append({"file": label, "query": None, **diag.to_dict()})
            continue
        for name, query in queries.items():
            for diag in analyze(query, schema=schema, source=source):
                if diag.is_error:
                    errors += 1
                else:
                    warnings += 1
                rendered.append(diag.render(source, f"{label}:{name}"))
                records.append(
                    {"file": label, "query": name, **diag.to_dict()}
                )

    if args.format == "json":
        print(json.dumps(
            {"errors": errors, "warnings": warnings, "diagnostics": records},
            indent=2,
        ))
    else:
        for text in rendered:
            print(text)
        checked = len(units)
        print(
            f"{checked} source{'s' if checked != 1 else ''} checked: "
            f"{errors} error{'s' if errors != 1 else ''}, "
            f"{warnings} warning{'s' if warnings != 1 else ''}"
        )
    return 1 if errors else 0


def cmd_generate_snb(args: argparse.Namespace) -> int:
    graph = generate_snb_graph(scale_factor=args.scale, seed=args.seed)
    save_graph_json(graph, args.output)
    summary = graph.summary()
    print(json.dumps(summary))
    return 0


def cmd_semantics(args: argparse.Namespace) -> int:
    graph = load_graph_json(args.graph)
    darpe = CompiledDarpe.parse(args.darpe)
    source: Any = args.source
    if source not in graph:
        try:
            source = int(args.source)
        except ValueError:
            pass
    if args.semantics == "all-shortest-paths":
        found = single_source_sdmc(graph, source, darpe)
        rows = {vid: res.count for vid, res in found.items()}
    else:
        semantics = PathSemantics(args.semantics)
        rows = match_counts(
            graph, source, darpe, semantics,
            max_length=args.max_length, budget=args.budget,
        )
    for target, count in sorted(rows.items(), key=lambda kv: str(kv[0])):
        print(f"{target}\t{count}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a GSQL query file against a JSON graph")
    run_p.add_argument("query_file")
    run_p.add_argument("--graph", required=True)
    run_p.add_argument("--engine", choices=sorted(_ENGINES), default="counting")
    run_p.add_argument(
        "--param", action="append", type=_parse_param, metavar="NAME=VALUE"
    )
    run_p.set_defaults(fn=cmd_run)

    explain_p = sub.add_parser("explain", help="print a query's evaluation plan")
    explain_p.add_argument("query_file")
    explain_p.set_defaults(fn=cmd_explain)

    profile_p = sub.add_parser(
        "profile",
        help="EXPLAIN ANALYZE: run a query and report per-block timings "
             "and engine counters",
    )
    profile_p.add_argument("query_file")
    profile_p.add_argument("--graph", required=True)
    profile_p.add_argument("--engine", choices=sorted(_ENGINES), default="counting")
    profile_p.add_argument(
        "--param", action="append", type=_parse_param, metavar="NAME=VALUE"
    )
    profile_p.add_argument("--format", choices=("text", "json"), default="text")
    profile_p.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON trace to PATH",
    )
    profile_p.set_defaults(fn=cmd_profile)

    validate_p = sub.add_parser(
        "validate", help="statically check a query (optionally against a graph)"
    )
    validate_p.add_argument("query_file")
    validate_p.add_argument("--graph", default=None)
    validate_p.set_defaults(fn=cmd_validate)

    lint_p = sub.add_parser(
        "lint",
        help="run the static-analysis rules over GSQL files or directories",
    )
    lint_p.add_argument(
        "paths", nargs="+", metavar="PATH",
        help=".gsql file, .py file with embedded GSQL, or a directory",
    )
    lint_p.add_argument("--graph", default=None,
                        help="JSON graph for schema-aware checks")
    lint_p.add_argument("--format", choices=("text", "json"), default="text")
    lint_p.set_defaults(fn=cmd_lint)

    gen_p = sub.add_parser("generate-snb", help="write an SNB-like graph as JSON")
    gen_p.add_argument("output")
    gen_p.add_argument("--scale", type=float, default=0.1)
    gen_p.add_argument("--seed", type=int, default=42)
    gen_p.set_defaults(fn=cmd_generate_snb)

    sem_p = sub.add_parser(
        "semantics", help="per-target match counts for a DARPE from a source"
    )
    sem_p.add_argument("graph")
    sem_p.add_argument("source")
    sem_p.add_argument("darpe")
    sem_p.add_argument(
        "--semantics",
        choices=[s.value for s in PathSemantics],
        default="all-shortest-paths",
    )
    sem_p.add_argument("--max-length", type=int, default=None)
    sem_p.add_argument("--budget", type=int, default=None)
    sem_p.set_defaults(fn=cmd_semantics)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
