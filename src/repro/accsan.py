"""AccSan — the opt-in accumulator-schedule sanitizer.

The effect analysis (:mod:`repro.analysis.effects`) stamps every SELECT
block with a :class:`~repro.core.tractable.DeterminismCertificate`; this
module is the *dynamic* cross-examination of that stamp.  When a
sanitizer is active, the engine records one event per accumulator write
(site, target, op, value digest) and, at each Reduce phase, replays the
block's buffered inputs under ``K`` deterministically-permuted schedules
into scratch copies of the accumulators:

* a block certified COMMUTATIVE must produce bit-identical value digests
  under every permutation — a divergence raises
  :class:`~repro.errors.AccSanViolation` (the certificate is wrong);
* a block certified ORDER_DEPENDENT (or uncertified) is *expected* to
  diverge — divergences are recorded as detections, confirming the
  static verdict dynamically.

The same check covers the parallel Reduce: ``parallel_accum`` hands the
sanitizer its per-partition partials, and merge order is permuted the
same way.

The hook pattern mirrors :mod:`repro.obs.metrics` exactly: a
module-global :data:`_ACTIVE` binding plus a guarded no-op fast path at
every site (``if _accsan._ACTIVE is not None: ...``), so a disabled
sanitizer costs one global load and one comparison per write — measured
below 5% end-to-end by ``benchmarks/check_accsan_overhead.py``.

Usage::

    from repro import accsan

    with accsan.sanitize(schedules=8) as san:
        run_query(query, graph)
    print(san.report())
"""

from __future__ import annotations

import contextlib
import copy
import random
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

from ._activation import ActivationState as _ActivationState
from .accum.algebra import digest_value
from .errors import AccSanViolation
from .obs import metrics as _obs

#: The active sanitizer, or None.  Write sites guard on this; only
#: :func:`sanitize` (and tests) should rebind it.
_ACTIVE: Optional["Sanitizer"] = None

#: Cross-thread ownership guard (see repro/_activation.py): a second
#: thread activating a sanitizer while one is live would attribute one
#: query's write events to another's replay — raise instead.
_GUARD = _ActivationState("accsan")


class AccSanEvent(NamedTuple):
    """One recorded accumulator write."""

    site: str  # "accum" | "post_accum" | "parallel"
    target: str  # "@@name" or "v.@name" (the statement's spelling)
    accum: str  # accumulator type name
    op: str  # "+=" or "="
    digest: str  # canonical digest of the written value


class AccSanDetection(NamedTuple):
    """One *expected* divergence: an uncertified/order-dependent block
    whose replay produced schedule-dependent results."""

    block_label: str
    accumulator: str
    schedule: int
    expected_digest: str
    observed_digest: str
    status: str  # certificate status at the site, or "uncertified"


class Sanitizer:
    """Recording + replay state for one sanitized run.

    ``schedules`` is K, the number of permuted replays per Reduce phase;
    ``seed`` makes the permutations deterministic, so a detected
    divergence reproduces exactly.
    """

    def __init__(self, schedules: int = 8, seed: int = 0xACC5):
        if schedules < 1:
            raise ValueError("AccSan needs at least one permuted schedule")
        self.schedules = schedules
        self.seed = seed
        self.events: List[AccSanEvent] = []
        self.detections: List[AccSanDetection] = []
        #: Number of (accumulator, Reduce-phase) pairs whose permuted
        #: replays all agreed — the dynamic confirmations of COMMUTATIVE.
        self.verified = 0
        #: Accumulators whose pre-state could not be cloned for replay.
        self.unreplayable = 0
        # id(acc) -> (spelled target, accumulator type name); rebuilt as
        # events stream in, consumed by check_flush to label findings.
        self._names: Dict[int, Tuple[str, str]] = {}

    # -- recording -----------------------------------------------------
    def record(
        self, site: str, target: Any, acc: Any, op: str, value: Any
    ) -> None:
        """Record one accumulator write (called from the Map phase)."""
        spelled = repr(target)
        type_name = getattr(type(acc), "type_name", type(acc).__name__)
        self._names[id(acc)] = (spelled, type_name)
        self.events.append(
            AccSanEvent(site, spelled, type_name, op, digest_value(value))
        )
        col = _obs._ACTIVE
        if col is not None:
            col.count("accsan.events")

    # -- replay --------------------------------------------------------
    def check_flush(self, block: Any, buffer: Any) -> None:
        """Replay a Reduce phase's buffered inputs under permuted
        schedules, immediately before the real flush.

        ``block`` may be None (POST_ACCUM and programmatic callers):
        divergences are then recorded as detections, never violations,
        since there is no certificate to contradict.
        """
        adds: List[Tuple[Any, Any, int]] = list(buffer._adds)
        sets: List[Tuple[Any, Any]] = list(buffer._sets)
        if not adds and not sets:
            return
        cert = getattr(block, "effect_certificate", None) if block else None
        label = self._block_label(block)
        self._check_sets(sets, cert, label)
        groups: Dict[int, Tuple[Any, List[Tuple[Any, int]]]] = {}
        order: List[int] = []
        for acc, value, multiplicity in adds:
            key = id(acc)
            if key not in groups:
                groups[key] = (acc, [])
                order.append(key)
            groups[key][1].append((value, multiplicity))
        for key in order:
            acc, inputs = groups[key]
            if len(inputs) < 2:
                continue  # every permutation is the identity
            self._check_replay(key, acc, inputs, cert, label)

    def check_merge(
        self, name: str, live: Any, partials: List[Any], cert: Any, label: str
    ) -> None:
        """Permute the parallel Reduce's partition merge order.

        ``partials`` are one worker partial accumulator per partition,
        in partition-index order; ``live`` is the context accumulator
        they are about to be merged into (cloned, never touched).
        """
        if len(partials) < 2:
            return
        type_name = getattr(type(live), "type_name", type(live).__name__)
        self._names[id(live)] = (name, type_name)
        base_clone = self._clone(live)
        if base_clone is None:
            return
        for partial in partials:
            base_clone.merge(partial)
        base = digest_value(base_clone.value)
        rng = random.Random(self.seed)
        for schedule in range(self.schedules):
            clone = self._clone(live)
            if clone is None:
                return
            permuted = list(partials)
            rng.shuffle(permuted)
            for partial in permuted:
                clone.merge(partial)
            observed = digest_value(clone.value)
            if observed != base:
                self._diverged(
                    id(live), live, cert, label, schedule, base, observed,
                    site="parallel merge",
                )
                return
        self.verified += 1
        self._count("accsan.verified")

    # -- internals -----------------------------------------------------
    def _check_replay(
        self, key: int, acc: Any, inputs: List[Tuple[Any, int]],
        cert: Any, label: str,
    ) -> None:
        base = self._replay(acc, inputs)
        if base is None:
            return
        rng = random.Random(self.seed ^ key % 7919)
        for schedule in range(self.schedules):
            permuted = list(inputs)
            rng.shuffle(permuted)
            observed = self._replay(acc, permuted)
            if observed is None:
                return
            if observed != base:
                self._diverged(key, acc, cert, label, schedule, base, observed)
                return
        self.verified += 1
        self._count("accsan.verified")

    def _check_sets(self, sets: List[Tuple[Any, Any]], cert, label) -> None:
        """Two plain assignments with different values to one accumulator
        in one Reduce phase are last-write-wins over unordered rows — the
        dynamic face of rule GSQL-E040."""
        digests: Dict[int, Tuple[Any, set]] = {}
        for acc, value in sets:
            entry = digests.setdefault(id(acc), (acc, set()))
            entry[1].add(digest_value(value))
        for key, (acc, seen) in digests.items():
            if len(seen) > 1:
                first, second = sorted(seen)[:2]
                self._diverged(
                    key, acc, cert, label, -1, first, second,
                    site="conflicting assignments",
                )

    def _replay(self, acc: Any, inputs: List[Tuple[Any, int]]) -> Optional[str]:
        clone = self._clone(acc)
        if clone is None:
            return None
        for value, multiplicity in inputs:
            clone.combine_weighted(value, multiplicity)
        return digest_value(clone.value)

    def _clone(self, acc: Any) -> Optional[Any]:
        try:
            # Accumulators already expose a snapshot copy (primed reads
            # use it); fall back to deepcopy for foreign objects.
            snap = getattr(acc, "copy", None)
            return snap() if callable(snap) else copy.deepcopy(acc)
        except Exception:
            self.unreplayable += 1
            self._count("accsan.unreplayable")
            return None

    def _diverged(
        self, key, acc, cert, label, schedule, expected, observed,
        site: str = "permuted replay",
    ) -> None:
        spelled, _ = self._names.get(
            key, (getattr(type(acc), "type_name", type(acc).__name__), "")
        )
        if cert is not None and cert.commutative:
            self._count("accsan.violations")
            raise AccSanViolation(
                f"AccSan: {label}: {site} of {spelled} diverged on "
                f"schedule {schedule} ({expected} != {observed}) but the "
                f"block is certified COMMUTATIVE — the certificate is "
                f"wrong; witnesses: {'; '.join(cert.witnesses)}",
                block_label=label,
                accumulator=spelled,
                schedule=schedule,
                expected_digest=expected,
                observed_digest=observed,
            )
        status = cert.status.value if cert is not None else "uncertified"
        self.detections.append(
            AccSanDetection(label, spelled, schedule, expected, observed, status)
        )
        self._count("accsan.detections")

    @staticmethod
    def _block_label(block: Any) -> str:
        if block is None:
            return "<unattributed reduce>"
        pattern = getattr(block, "pattern", None)
        return f"SELECT FROM {pattern!r}" if pattern is not None else repr(block)

    @staticmethod
    def _count(name: str) -> None:
        col = _obs._ACTIVE
        if col is not None:
            col.count(name)

    # -- reporting -----------------------------------------------------
    def report(self) -> str:
        lines = [
            f"AccSan: {len(self.events)} events, {self.verified} "
            f"reduce phases verified under {self.schedules} schedules, "
            f"{len(self.detections)} order-dependence detections, "
            f"{self.unreplayable} unreplayable"
        ]
        for d in self.detections:
            lines.append(
                f"  DETECTED {d.accumulator} in {d.block_label} "
                f"[{d.status}] schedule {d.schedule}: "
                f"{d.expected_digest} != {d.observed_digest}"
            )
        return "\n".join(lines)


@contextlib.contextmanager
def sanitize(
    schedules: int = 8, seed: int = 0xACC5
) -> Iterator[Sanitizer]:
    """Install a :class:`Sanitizer` for the duration of the block.

    Nested scopes shadow (and then restore) the previous binding, like
    :func:`repro.obs.metrics.collect`.  Activation from a different
    thread while a sanitizer is live raises
    :class:`~repro.errors.ReentrantActivationError` (the binding is
    process-global — cross-thread re-entry would cross-wire events).
    """
    global _ACTIVE
    sanitizer = Sanitizer(schedules=schedules, seed=seed)
    _GUARD.acquire()
    previous = _ACTIVE
    _ACTIVE = sanitizer
    try:
        yield sanitizer
    finally:
        _ACTIVE = previous
        _GUARD.release()


__all__ = [
    "AccSanEvent",
    "AccSanDetection",
    "Sanitizer",
    "sanitize",
]
