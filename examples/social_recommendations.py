#!/usr/bin/env python
"""Social-network analytics on the SNB-like graph.

Exercises the composition features of Section 5 on a realistic workload:

* the TopKToys recommender (Figure 3) — two query blocks composing
  through vertex accumulators;
* an LDBC IC query analogue with a variable-length KNOWS pattern;
* iterative analytics (PageRank / connected components / triangles)
  written in GSQL with WHILE loops over accumulators (Figure 4 style).
"""

from repro.algorithms import (
    pagerank,
    recommend,
    triangle_count,
    weakly_connected_components,
)
from repro.graph import Graph
from repro.graph.builders import likes_graph
from repro.ldbc import generate_snb_graph, ic9_query

# ----------------------------------------------------------------------
# 1. The Figure 3 recommender on the toy likes graph.
# ----------------------------------------------------------------------
likes = likes_graph()
print("TopKToys recommendations for customer 'ann' (Figure 3):")
for name, rank in recommend(likes, "c0", k=3):
    print(f"  {name:>8}  rank={rank:.3f}")
print()

# ----------------------------------------------------------------------
# 2. A variable-length friend query on the SNB-like graph: the 20 most
#    recent messages by friends within 3 KNOWS hops (IC9 analogue).
#    The KNOWS hop is a DARPE with bounded repetition: Knows*1..3.
# ----------------------------------------------------------------------
snb = generate_snb_graph(scale_factor=0.3, seed=42)
print(f"SNB-like graph: {snb.num_vertices} vertices, {snb.num_edges} edges")
result = ic9_query(3).run(snb, p="person:0", maxDate=20120601)
heap = result.printed[0]["recent"]
print("Most recent messages by friends within 3 hops (HeapAccum top-k):")
for message in heap[:5]:
    print(f"  {message.creationDate}  {message.length:4d} chars  by {message.author}")
print(f"  ... {len(heap)} retained by the capacity-20 heap\n")

# ----------------------------------------------------------------------
# 3. Iterative analytics over the KNOWS graph.
# ----------------------------------------------------------------------
knows = Graph(name="Knows")
for person in snb.vertices("Person"):
    knows.add_vertex(person.vid, "Page")
for e in snb.edges("Knows"):
    knows.add_edge(e.source, e.target, "LinkTo")
    knows.add_edge(e.target, e.source, "LinkTo")

scores = pagerank(knows, "Page", "LinkTo", max_change=1e-6, max_iteration=100)
top = sorted(scores.items(), key=lambda kv: -kv[1])[:5]
print("Most central people by PageRank (Figure 4's query):")
for vid, score in top:
    person = snb.vertex(vid)
    print(f"  {person['firstName']} {person['lastName']:<8} score={score:.3f}")

components = weakly_connected_components(snb)
sizes = {}
for label in components.values():
    sizes[label] = sizes.get(label, 0) + 1
largest = max(sizes.values())
print(f"\nWeakly connected components: {len(sizes)} "
      f"(largest spans {largest} of {snb.num_vertices} vertices)")

triangles = triangle_count(snb, "Person", "Knows")
print(f"Friendship triangles: {triangles}")
