#!/usr/bin/env python
"""The paper's opening scenario (Example 1 / Figure 1): joining a
relational HR table with a professional-network graph.

Company ACME keeps employees in an RDBMS table and has access to the
"LinkedIn" graph.  The query finds the employees who made the most
LinkedIn connections *outside the company* since a given year — a FROM
clause mixing a table scan with an undirected-edge graph pattern, plus
SQL-style GROUP BY aggregation of the matches.
"""

import random

from repro.core.values import Table
from repro.graph import Graph, GraphSchema
from repro.gsql import parse_query, print_query

# ----------------------------------------------------------------------
# The LinkedIn-like graph: persons linked by undirected Connected edges.
# ----------------------------------------------------------------------
rng = random.Random(7)
schema = (
    GraphSchema("LinkedIn")
    .vertex("Person", email="STRING", employer="STRING")
    .undirected_edge("Connected", "Person", "Person", since="INT")
)
graph = Graph(schema)

employers = ["acme", "globex", "initech", "umbrella"]
people = []
for i in range(120):
    email = f"user{i}@{rng.choice(employers)}.example"
    employer = email.split("@")[1].split(".")[0]
    graph.add_vertex(f"p{i}", "Person", email=email, employer=employer)
    people.append(f"p{i}")
for _ in range(500):
    a, b = rng.sample(people, 2)
    graph.add_edge(a, b, "Connected", since=rng.randint(2010, 2023))

# ----------------------------------------------------------------------
# The relational HR table (what the paper's Employee table stands for).
# ----------------------------------------------------------------------
employees = Table("Employee", ["email", "name", "department"])
for i in range(120):
    email = graph.vertex(f"p{i}")["email"]
    if email.endswith("@acme.example"):
        employees.append((email, f"Employee {i}", rng.choice(["R&D", "Sales"])))

print(f"graph: {graph.num_vertices} persons, {graph.num_edges} connections; "
      f"HR table: {len(employees)} ACME employees\n")

# ----------------------------------------------------------------------
# Figure 1's query: table conjunct + graph pattern + GROUP BY count.
# ----------------------------------------------------------------------
query = parse_query("""
CREATE QUERY MostOutsideConnections(int sinceYear, int topK) FOR GRAPH LinkedIn {
  SELECT e.name AS name, e.department AS department,
         count(*) AS outsideConnections INTO Leaders
  FROM Employee:e, Person:p -(Connected:c)- Person:outsider
  WHERE e.email == p.email
    AND outsider.employer != 'acme'
    AND c.since >= sinceYear
  GROUP BY e.name, e.department
  ORDER BY count(*) DESC, e.name ASC
  LIMIT topK;
  RETURN Leaders;
}
""")

result = query.run(graph, tables={"Employee": employees}, sinceYear=2016, topK=5)
print("Most outside connections since 2016:")
for name, dept, n in result.returned.rows:
    print(f"  {name:<14} ({dept:<5}): {n} connections")

# The compiled query round-trips through the pretty-printer:
print("\nThe query as the engine re-renders it:\n")
print(print_query(query))
