#!/usr/bin/env python
"""Sales analytics: the paper's SalesGraph scenario (Examples 3-5, 12-13).

Demonstrates what Section 3 calls "single-pass multi-aggregation by
distinct grouping criteria":

* Figure 2's query — revenue per toy, per customer, and total, computed
  in ONE traversal of the Bought edges via three accumulators;
* Example 5's multi-output SELECT — the same pass routed into separate
  result tables;
* Example 12 — simulating SQL GROUP BY / GROUPING SETS with a
  GroupByAccum, and the comparison against the true SQL-style engine.
"""

from repro.graph.builders import sales_graph
from repro.gsql import parse_query
from repro.sqlstyle import Aggregate, MatchTable, group_by, grouping_sets

graph = sales_graph()
print(f"SalesGraph: {graph.num_vertices} vertices, {graph.num_edges} purchases\n")

# ----------------------------------------------------------------------
# Figure 2: three-way aggregation in a single pass.
# ----------------------------------------------------------------------
figure2 = parse_query("""
CREATE QUERY ToyRevenue() FOR GRAPH SalesGraph {
  SumAccum<float> @@totalRevenue;
  SumAccum<float> @revenuePerToy, @revenuePerCust;

  S = SELECT c
  FROM   Customer:c -(Bought>:b)- Product:p
  WHERE  p.category == 'toy'
  ACCUM  FLOAT salesPrice = b.quantity * p.price * (1.0 - b.discount),
         c.@revenuePerCust += salesPrice,
         p.@revenuePerToy += salesPrice,
         @@totalRevenue += salesPrice;

  SELECT c.name, c.@revenuePerCust INTO PerCust;
         t.name, t.@revenuePerToy INTO PerToy;
         @@totalRevenue AS rev INTO Total
  FROM Customer:c -(Bought>)- Product:t
  WHERE t.category == 'toy';
}
""")
result = figure2.run(graph)

print("Toy revenue per customer (vertex accumulators):")
for name, revenue in sorted(result.tables["PerCust"].rows):
    print(f"  {name:>6}: ${revenue:7.2f}")
print("Toy revenue per product:")
for name, revenue in sorted(result.tables["PerToy"].rows):
    print(f"  {name:>10}: ${revenue:7.2f}")
(total,) = result.tables["Total"].rows[0]
print(f"Total toy revenue (global accumulator): ${total:.2f}\n")

# ----------------------------------------------------------------------
# Example 12/13: GROUPING SETS via accumulators vs SQL-style.
# Each grouping set gets ONLY its wanted aggregate with accumulators;
# the SQL GROUPING SETS baseline computes every aggregate per set.
# ----------------------------------------------------------------------
multi_grouping = parse_query("""
CREATE QUERY PerGroupingSet() FOR GRAPH SalesGraph {
  GroupByAccum<string cat, SumAccum<int>> @@unitsPerCategory;
  GroupByAccum<string cust, MaxAccum<float>> @@biggestPurchase;

  S = SELECT c
  FROM  Customer:c -(Bought>:b)- Product:p
  ACCUM @@unitsPerCategory += (p.category -> b.quantity),
        @@biggestPurchase += (c.name -> b.quantity * p.price);
}
""")
acc_result = multi_grouping.run(graph)
print("Units per category (GroupByAccum, only the wanted aggregate):")
for (category,), (units,) in sorted(acc_result.global_accum("unitsPerCategory").items()):
    print(f"  {category:>8}: {units} units")
print("Biggest single purchase per customer:")
for (cust,), (amount,) in sorted(acc_result.global_accum("biggestPurchase").items()):
    print(f"  {cust:>6}: ${amount:.2f}")

# The conventional road: materialize the match table, run GROUPING SETS
# (which computes BOTH aggregates for BOTH sets), then separate.
rows = MatchTable()
for e in graph.edges("Bought"):
    product = graph.vertex(e.target)
    customer = graph.vertex(e.source)
    rows.append(
        {
            "cat": product["category"],
            "cust": customer["name"],
            "units": e["quantity"],
            "amount": e["quantity"] * product["price"],
        }
    )
unioned = grouping_sets(
    rows,
    [["cat"], ["cust"]],
    [Aggregate("sum", "units", "units"), Aggregate("max", "amount", "biggest")],
)
print("\nSQL GROUPING SETS union table (note the unwanted aggregate in "
      "every row, and the NULL-padded keys):")
for row in list(unioned)[:4]:
    print(f"  {row}")
print("  ...")

check = group_by(rows, ["cat"], [Aggregate("sum", "units", "units")])
accumulated = {k[0]: v[0] for k, v in acc_result.global_accum("unitsPerCategory").items()}
assert all(accumulated[r["cat"]] == r["units"] for r in check)
print("\nAccumulator and SQL-style results agree — the difference is the "
      "work performed, not the answer (Appendix B quantifies it).")
