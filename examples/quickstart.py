#!/usr/bin/env python
"""Quickstart: build a graph, write a GSQL query with accumulators, run it.

Covers the library's core loop in ~60 lines:
  1. declare a schema and load a property graph;
  2. express an aggregation query in GSQL text (vertex + global
     accumulators, ACCUM clause);
  3. run it and read the results (tables, accumulator values);
  4. count paths under all-shortest-paths semantics — the tractable
     default this library reproduces from the paper.
"""

from repro.graph import Graph, GraphSchema
from repro.gsql import parse_query

# 1. A schema-checked property graph: people following each other.
schema = (
    GraphSchema("Micro")
    .vertex("Person", name="STRING", age="INT")
    .edge("Follows", "Person", "Person")
)
graph = Graph(schema)
people = [("a", "ann", 30), ("b", "ben", 25), ("c", "cam", 41), ("d", "deb", 35)]
for vid, name, age in people:
    graph.add_vertex(vid, "Person", name=name, age=age)
for src, dst in [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c"), ("d", "c")]:
    graph.add_edge(src, dst, "Follows")

# 2. A GSQL query: for every person, count followers and sum their ages;
#    track the global maximum follower count.  One pass, three aggregates.
query = parse_query("""
CREATE QUERY FollowerStats() FOR GRAPH Micro {
  SumAccum<int>   @followers;
  SumAccum<float> @followerAge;
  MaxAccum<int>   @@mostFollowed;

  S = SELECT p
      FROM Person:p -(<Follows)- Person:f
      ACCUM p.@followers += 1,
            p.@followerAge += f.age
      POST_ACCUM @@mostFollowed += p.@followers;

  SELECT p.name AS name, p.@followers AS followers,
         p.@followerAge / p.@followers AS avgFollowerAge INTO Stats
  FROM Person:p
  WHERE p.@followers > 0
  ORDER BY p.@followers DESC;

  PRINT @@mostFollowed;
}
""")

# 3. Run and inspect.
result = query.run(graph)
print("Follower stats:")
for row in result.tables["Stats"].dicts():
    print(f"  {row['name']:>4}: {row['followers']} followers, "
          f"avg age {row['avgFollowerAge']:.1f}")
print(f"Most followed has {result.printed[0]['mostFollowed']} followers")

# 4. Path counting under all-shortest-paths semantics (Theorem 6.1):
#    polynomial even when the count itself is astronomical.
from repro.darpe import CompiledDarpe
from repro.graph.builders import diamond_chain
from repro.paths import single_pair_sdmc

chain = diamond_chain(40)  # 2^40 ≈ 1.1e12 shortest paths v0 -> v40
sdmc = single_pair_sdmc(chain, "v0", "v40", CompiledDarpe.parse("E>*"))
print(f"\nDiamond chain n=40: {sdmc.count:,} shortest paths "
      f"of length {sdmc.distance}, counted without materializing any")
