#!/usr/bin/env python
"""A tour of path-legality semantics (Section 6 of the paper).

Walks through Examples 8-11 live: the same pattern, four different match
multiplicities — and the tractability cliff between counting shortest
paths (polynomial) and enumerating legal paths (exponential).
"""

import time

from repro.darpe import CompiledDarpe
from repro.enumeration import match_counts
from repro.graph.builders import (
    diamond_chain,
    example9_graph,
    example10_graph,
    fixed_length_cycle_graph,
)
from repro.paths import PathSemantics, single_pair_sdmc

E_STAR = CompiledDarpe.parse("E>*")

# ----------------------------------------------------------------------
# Example 9: one pattern, four multiplicities on graph G1.
# ----------------------------------------------------------------------
g1 = example9_graph()
print("Example 9 — pattern :s -(E>*)- :t on G1, binding (1, 5):")
for semantics, note in [
    (PathSemantics.NO_REPEATED_VERTEX, "Gremlin tutorial style"),
    (PathSemantics.NO_REPEATED_EDGE, "Cypher/Neo4j default"),
    (PathSemantics.ALL_SHORTEST, "GSQL/TigerGraph default"),
    (PathSemantics.EXISTENCE, "SparQL 1.1"),
]:
    count = match_counts(g1, 1, E_STAR, semantics, targets={5}).get(5, 0)
    print(f"  {semantics.value:<22} multiplicity {count}   ({note})")

# ----------------------------------------------------------------------
# Example 10: shortest-path semantics can match where BOTH non-repeating
# semantics find nothing.
# ----------------------------------------------------------------------
g2 = example10_graph()
darpe = CompiledDarpe.parse("E>*.F>.E>*")
print("\nExample 10 — E>*.F>.E>* on G2, from 1 to 4:")
asp = single_pair_sdmc(g2, 1, 4, darpe)
print(f"  all-shortest-paths: {asp.count} match (length {asp.distance}, "
      f"repeats vertices 2,3 and their edge)")
for semantics in (PathSemantics.NO_REPEATED_VERTEX, PathSemantics.NO_REPEATED_EDGE):
    count = match_counts(g2, 1, darpe, semantics, targets={4})
    print(f"  {semantics.value:<22} {len(count)} matches")

# ----------------------------------------------------------------------
# Section 6.1: fixed-unique-length patterns — all-shortest-paths equals
# unrestricted semantics, even around cycles.
# ----------------------------------------------------------------------
cycle = fixed_length_cycle_graph()
fixed = CompiledDarpe.parse("A>.(B>|D>)._>.A>")
print("\nFixed-unique-length pattern A>.(B>|D>)._>.A> on the 3-cycle:")
print(f"  all-shortest-paths: {single_pair_sdmc(cycle, 'v', 'u', fixed)}")
print(f"  non-repeated-edge:  "
      f"{match_counts(cycle, 'v', fixed, PathSemantics.NO_REPEATED_EDGE, targets={'u'})}")

# ----------------------------------------------------------------------
# Example 11 + Table 1: the tractability cliff on the diamond chain.
# ----------------------------------------------------------------------
print("\nDiamond chain — counting (poly) vs enumeration (exponential):")
print(f"  {'n':>3} {'paths':>12} {'counting':>10} {'enumeration':>12}")
for n in (4, 8, 12, 16, 20):
    g = diamond_chain(n)
    start = time.perf_counter()
    counted = single_pair_sdmc(g, "v0", f"v{n}", E_STAR).count
    t_count = time.perf_counter() - start
    if n <= 16:
        start = time.perf_counter()
        enumerated = match_counts(
            g, "v0", E_STAR, PathSemantics.NO_REPEATED_EDGE, targets={f"v{n}"}
        )[f"v{n}"]
        t_enum = f"{time.perf_counter() - start:9.3f}s"
        assert enumerated == counted
    else:
        t_enum = "   (skipped)"
    print(f"  {n:>3} {counted:>12,} {t_count:9.4f}s {t_enum:>12}")

huge = diamond_chain(100)
start = time.perf_counter()
astronomical = single_pair_sdmc(huge, "v0", "v100", E_STAR).count
elapsed = time.perf_counter() - start
print(f"\nn=100: {astronomical:.3e} shortest paths counted in {elapsed*1000:.1f} ms")
print("Enumeration would outlive the universe; counting is a BFS. "
      "That is Theorem 6.1.")
